//! Matrix multiplication across machine sizes: compile the mini-C `mxm` kernel
//! for 1–16 tiles, simulate, verify against the interpreter, and print the
//! speedup curve (a single row of the paper's Table 3).
//!
//! ```text
//! cargo run --release --example matmul
//! ```

use raw_ir::interp::Interpreter;
use raw_machine::MachineConfig;
use rawcc::{compile, compile_baseline, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16×32 · 32×8 matrix product (a smaller cousin of the paper's 32×64 ·
    // 64×8 so this example runs fast even in debug builds).
    let bench = raw_benchmarks::mxm(16, 32, 8);
    println!(
        "kernel source ({} lines):\n{}",
        bench.lines(),
        bench.source()
    );

    // Sequential baseline.
    let baseline_ir = bench.baseline_program()?;
    let baseline = compile_baseline(&baseline_ir, &MachineConfig::square(1))?;
    let (base_result, base_report) = baseline.run(&baseline_ir)?;
    let golden = Interpreter::new(&baseline_ir).run()?;
    assert!(base_result.state_eq(&golden));
    println!(
        "baseline (1 tile, rolled loops): {} cycles\n",
        base_report.cycles
    );

    println!("{:>6} {:>10} {:>8}  layout", "tiles", "cycles", "speedup");
    for n in [1u32, 2, 4, 8, 16] {
        let program = bench.program(n)?;
        let config = MachineConfig::square(n);
        let compiled = compile(&program, &config, &CompilerOptions::default())?;
        let (result, report) = compiled.run(&program)?;
        // Each machine size gets its own unroll factor, so verify against the
        // interpreter on the same IR.
        let check = Interpreter::new(&program).run()?;
        assert!(result.state_eq(&check), "mismatch at {n} tiles");
        println!(
            "{:>6} {:>10} {:>8.2}  {}x{} mesh",
            n,
            report.cycles,
            base_report.cycles as f64 / report.cycles as f64,
            config.rows,
            config.cols,
        );
    }
    Ok(())
}

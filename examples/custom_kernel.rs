//! Building a kernel two ways: from mini-C source, and directly through the
//! [`ProgramBuilder`] IR API — then compiling both for a 4-tile machine.
//!
//! The kernel is a dot product with a twist: it keeps a running maximum of the
//! partial products (an `if` inside the loop), demonstrating distributed
//! control flow (branch-condition broadcast) alongside static array accesses.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use raw_ir::builder::ProgramBuilder;
use raw_ir::interp::Interpreter;
use raw_ir::{Imm, MemHome, Ty};
use raw_lang::compile_source;
use raw_machine::MachineConfig;
use rawcc::{compile, CompilerOptions};

const N_TILES: u32 = 4;

fn from_source() -> raw_ir::Program {
    let src = "
        int i;
        float A[16];
        float B[16];
        float dot = 0.0;
        float peak = 0.0;
        float p;
        for (i = 0; i < 16; i = i + 1) {
            p = A[i] * B[i];
            dot = dot + p;
            if (peak < p) { peak = p; }
        }
    ";
    let mut program = compile_source("dot-from-source", src, N_TILES).expect("valid kernel");
    // Host-side data.
    for name in ["A", "B"] {
        let id = program.array_by_name(name).unwrap();
        program.arrays[id.index()].init =
            (0..16).map(|k| Imm::F(0.25 * (k as f32 + 1.0))).collect();
    }
    program
}

/// The same kernel expressed directly in IR (one fully unrolled block):
/// useful when embedding the compiler without the mini-C frontend.
fn from_builder() -> raw_ir::Program {
    let mut b = ProgramBuilder::new("dot-from-builder");
    let a = b.array("A", Ty::F32, &[16]);
    let bb = b.array("B", Ty::F32, &[16]);
    b.set_array_init(
        a,
        (0..16).map(|k| Imm::F(0.25 * (k as f32 + 1.0))).collect(),
    );
    b.set_array_init(
        bb,
        (0..16).map(|k| Imm::F(0.25 * (k as f32 + 1.0))).collect(),
    );
    let dot = b.var_f32("dot", 0.0);
    let peak = b.var_f32("peak", 0.0);

    // Products; element k lives on tile k mod N (low-order interleaving), so
    // each access is annotated with its compile-time home residue.
    let mut products = Vec::new();
    for k in 0..16u32 {
        let idx = b.const_i32(k as i32);
        let av = b.load(a, idx, MemHome::Static(k % N_TILES));
        let bv = b.load(bb, idx, MemHome::Static(k % N_TILES));
        products.push(b.mul_f(av, bv));
    }
    // Balanced reduction tree for the dot product.
    let mut layer = products.clone();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|c| {
                if c.len() == 2 {
                    b.add_f(c[0], c[1])
                } else {
                    c[0]
                }
            })
            .collect();
    }
    b.write_var(dot, layer[0]);
    // Maximum via a comparison tree (branch-free in builder form).
    let mut m = products[0];
    for &p in &products[1..] {
        let cond = b.bin(raw_ir::BinOp::FLt, m, p);
        // select(cond, p, m) = m + cond * (p - m) is not expressible without
        // fp<->int tricks; use a tiny diamond instead to show control flow.
        let _ = cond;
        m = {
            // max(m, p) arithmetically: (m + p + |m - p|) / 2
            let diff = b.sub_f(m, p);
            let ad = b.un(raw_ir::UnOp::AbsF, diff);
            let sum = b.add_f(m, p);
            let two = b.const_f32(2.0);
            let top = b.add_f(sum, ad);
            b.div_f(top, two)
        };
    }
    b.write_var(peak, m);
    b.halt();
    b.finish().expect("valid program")
}

fn run(program: &raw_ir::Program) -> Result<(), Box<dyn std::error::Error>> {
    let config = MachineConfig::square(N_TILES);
    let compiled = compile(program, &config, &CompilerOptions::default())?;
    let (result, report) = compiled.run(program)?;
    let golden = Interpreter::new(program).run()?;
    assert!(result.state_eq(&golden), "{}: mismatch", program.name);
    let dot = program.var_by_name("dot").unwrap();
    let peak = program.var_by_name("peak").unwrap();
    println!(
        "{:20} {:6} cycles on {N_TILES} tiles   dot = {}  peak = {}",
        program.name,
        report.cycles,
        result.var_value(dot),
        result.var_value(peak),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(&from_source())?;
    run(&from_builder())?;
    println!("both versions verified bit-exactly against the interpreter");
    Ok(())
}

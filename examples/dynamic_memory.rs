//! The dynamic-network fallback (paper §5.1): a histogram kernel whose store
//! addresses are data-dependent, so no static home tile exists. The compiler
//! classifies the array dynamic, pins its accesses to one issuing tile, and
//! the accesses travel the wormhole-routed dynamic network to per-tile
//! remote-memory handlers.
//!
//! ```text
//! cargo run --release --example dynamic_memory
//! ```

use raw_ir::interp::Interpreter;
use raw_lang::compile_source;
use raw_machine::MachineConfig;
use rawcc::{compile, ArrayClass, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "
        int i;
        int key;
        int DATA[64];
        int HIST[8];
        for (i = 0; i < 64; i = i + 1) {
            key = DATA[i] % 8;
            HIST[key] = HIST[key] + 1;
        }
    ";
    let n_tiles = 4;
    let mut program = compile_source("histogram", src, n_tiles)?;
    let data = program.array_by_name("DATA").unwrap();
    program.arrays[data.index()].init = (0..64)
        .map(|k| raw_ir::Imm::I((k * 7 + 3) % 23)) // arbitrary deterministic keys
        .collect();

    let config = MachineConfig::square(n_tiles);
    let compiled = compile(&program, &config, &CompilerOptions::default())?;

    // DATA[i] is affine in i → static; HIST[key] is data-dependent → dynamic.
    let hist = program.array_by_name("HIST").unwrap();
    println!("array classification:");
    println!("  DATA: {:?}", compiled.layout.class(data));
    println!("  HIST: {:?}", compiled.layout.class(hist));
    assert_eq!(compiled.layout.class(data), ArrayClass::Static);
    assert!(matches!(
        compiled.layout.class(hist),
        ArrayClass::Dynamic { .. }
    ));

    let (result, report) = compiled.run(&program)?;
    let golden = Interpreter::new(&program).run()?;
    assert!(result.state_eq(&golden), "mismatch vs interpreter");

    println!("\nsimulated {} cycles on {n_tiles} tiles", report.cycles);
    println!("histogram: {:?}", result.array_values(hist));
    println!(
        "(dynamic accesses are the slow path — the paper's point is that the \
         compiler keeps statically analyzable references on the fast static \
         network and falls back to the dynamic network only when it must)"
    );
    Ok(())
}

//! Quickstart: walk the paper's Figure-6 example program through every pass of
//! the basic block orchestrater, printing each intermediate result, then
//! simulate the compiled code on a 2×2 Raw machine and check it against the
//! reference interpreter.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use raw_ir::builder::ProgramBuilder;
use raw_ir::interp::Interpreter;
use raw_machine::MachineConfig;
use rawcc::layout::DataLayout;
use rawcc::schedule::TileOp;
use rawcc::taskgraph::{EdgeKind, TaskGraph};
use rawcc::{compile, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The program of paper Figure 6:
    //   y = a + b;  z = a * a;  x = y * a * 5;  y = y * b * 6;
    let mut b = ProgramBuilder::new("figure6");
    let a = b.var_i32("a", 3);
    let bv = b.var_i32("b", 4);
    let x = b.var_i32("x", 0);
    let y = b.var_i32("y", 0);
    let z = b.var_i32("z", 0);

    let va = b.read_var(a);
    b.name_value(va, "a");
    let vb = b.read_var(bv);
    b.name_value(vb, "b");
    let y1 = b.add(va, vb);
    b.name_value(y1, "y_1");
    let z1 = b.mul(va, va);
    b.name_value(z1, "z_1");
    let t1 = b.mul(y1, va);
    b.name_value(t1, "tmp_1");
    let five = b.const_i32(5);
    let x1 = b.mul(t1, five);
    b.name_value(x1, "x_1");
    let t2 = b.mul(y1, vb);
    b.name_value(t2, "tmp_2");
    let six = b.const_i32(6);
    let y2 = b.mul(t2, six);
    b.name_value(y2, "y_2");
    b.write_var(z, z1);
    b.write_var(x, x1);
    b.write_var(y, y2);
    b.halt();
    let program = b.finish()?;

    println!("== (a) initial code transformation: renamed three-operand form ==");
    println!("{program}\n");

    let config = MachineConfig::grid(2, 2);
    let options = CompilerOptions::default();
    let layout = DataLayout::build(&program, &config);

    println!("== (d) data partitioner: home tiles (round-robin) ==");
    for (i, var) in program.vars.iter().enumerate() {
        let id = raw_ir::VarId::from_raw(i as u32);
        println!("  {} -> {}", var.name, layout.var_home(id));
    }
    println!();

    println!("== (b) task graph builder ==");
    let graph = TaskGraph::build(program.block(program.entry), &layout, &config);
    for n in 0..graph.len() {
        let succs: Vec<String> = graph.succs[n]
            .iter()
            .map(|&(s, k)| {
                format!(
                    "{}{}",
                    s,
                    if k == EdgeKind::Order { " (order)" } else { "" }
                )
            })
            .collect();
        println!(
            "  node {n:2} [cost {}] {:30} -> {}",
            graph.costs[n],
            program.fmt_inst(&graph.insts[n]),
            succs.join(", ")
        );
    }
    println!();

    println!("== (c) instruction partitioner: clustering / merging / placement ==");
    let partition = rawcc::partition::partition(&graph, &config, &options);
    println!("  {} clusters", partition.n_clusters);
    for (n, tile) in partition.assignment.iter().enumerate() {
        println!(
            "  node {n:2} {:30} -> {tile}",
            program.fmt_inst(&graph.insts[n])
        );
    }
    println!();

    println!("== (e/f/g) event scheduler: space-time schedule with communication ==");
    let sched = rawcc::schedule::schedule(&graph, &partition, &config, &options);
    for tile in 0..config.n_tiles() as usize {
        println!("  tile{tile} processor:");
        for (t, op) in &sched.proc_ops[tile] {
            let desc = match op {
                TileOp::Comp(n) => program.fmt_inst(&graph.insts[*n]),
                TileOp::Send(v) => format!("send({})", program.value_name(*v)),
                TileOp::Recv(v) => format!("{} = recv()", program.value_name(*v)),
            };
            println!("    cycle {t:3}: {desc}");
        }
        if !sched.switch_ops[tile].is_empty() {
            println!("  tile{tile} switch:");
            for (t, _, pairs) in &sched.switch_ops[tile] {
                println!("    cycle {t:3}: route {pairs:?}");
            }
        }
    }
    println!("  estimated makespan: {} cycles\n", sched.makespan);

    println!("== compile + simulate on the 2x2 machine ==");
    let compiled = compile(&program, &config, &options)?;
    let (result, report) = compiled.run(&program)?;
    let golden = Interpreter::new(&program).run()?;
    assert!(
        result.state_eq(&golden),
        "simulation must match interpreter"
    );
    println!(
        "  simulated {} cycles; results match the interpreter:",
        report.cycles
    );
    for (i, decl) in program.vars.iter().enumerate() {
        println!("    {} = {}", decl.name, result.vars[i]);
    }
    Ok(())
}

//! Golden-snapshot tests: the IR pretty-printer and the generated per-tile
//! assembly are pinned as checked-in text for two small kernels.
//!
//! On mismatch the test fails with a diff hint; regenerate consciously with
//! `UPDATE_GOLDEN=1 cargo test --test golden_snapshots` and review the diff
//! like any other code change.

use raw_repro::cc::{compile, CompilerOptions};
use raw_repro::machine::MachineConfig;
use std::fmt::Write as _;
use std::path::PathBuf;

const DOT_KERNEL: &str = "int i; int s; int A[8]; int B[8];
for (i = 0; i < 8; i = i + 1) A[i] = 2*i + 1;
for (i = 0; i < 8; i = i + 1) B[i] = 3*i;
for (i = 0; i < 8; i = i + 1) s = s + A[i]*B[i];
";

const FP_KERNEL: &str = "float a = 1.5; float b = 2.25; float c; float d;
c = a*b + 0.5;
d = sqrt(abs(c)) + a;
";

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    raw_testkit::check_golden(&path, actual);
}

/// Renders per-tile processor and switch streams (showcode's format).
fn render_asm(program: &raw_repro::ir::Program, config: &MachineConfig) -> String {
    let compiled = compile(program, config, &CompilerOptions::default()).unwrap();
    let mut s = String::new();
    for (t, tile) in compiled.machine_program.tiles.iter().enumerate() {
        writeln!(
            s,
            "=== tile{t} processor ({} instructions) ===",
            tile.proc.len()
        )
        .unwrap();
        for (i, inst) in tile.proc.iter().enumerate() {
            writeln!(s, "{i:5}: {inst}").unwrap();
        }
        writeln!(
            s,
            "=== tile{t} switch ({} instructions) ===",
            tile.switch.len()
        )
        .unwrap();
        for (i, inst) in tile.switch.iter().enumerate() {
            writeln!(s, "{i:5}: {inst}").unwrap();
        }
    }
    s
}

#[test]
fn ir_pretty_printer_is_pinned() {
    let dot = raw_repro::lang::compile_source("dot", DOT_KERNEL, 4).unwrap();
    check_golden("ir_dot_4tiles.txt", &dot.to_string());
    let fp = raw_repro::lang::compile_source("fp", FP_KERNEL, 1).unwrap();
    check_golden("ir_fp_1tile.txt", &fp.to_string());
}

#[test]
fn per_tile_assembly_is_pinned() {
    let dot = raw_repro::lang::compile_source("dot", DOT_KERNEL, 4).unwrap();
    check_golden(
        "asm_dot_2x2.txt",
        &render_asm(&dot, &MachineConfig::grid(2, 2)),
    );
    let fp = raw_repro::lang::compile_source("fp", FP_KERNEL, 2).unwrap();
    check_golden(
        "asm_fp_1x2.txt",
        &render_asm(&fp, &MachineConfig::grid(1, 2)),
    );
}

#[test]
fn golden_snapshots_still_execute_correctly() {
    // The pinned kernels are not just text: they must still compile, run,
    // and agree with the interpreter (guards against pinning broken output).
    use raw_repro::ir::interp::Interpreter;
    for (src, n) in [(DOT_KERNEL, 4u32), (FP_KERNEL, 2)] {
        let program = raw_repro::lang::compile_source("golden", src, n).unwrap();
        let golden = Interpreter::new(&program).run().unwrap();
        let config = MachineConfig::square(n);
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
        let (result, _) = compiled.run(&program).unwrap();
        assert!(result.state_eq(&golden));
    }
}

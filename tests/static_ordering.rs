//! The static ordering property (paper Appendix A): a deadlock-free static
//! schedule produces the same results under *any* timing. We model dynamic
//! events (cache misses, interrupts) by randomly stalling processors and
//! switches, and require bit-identical final state.

use raw_repro::cc::{compile, CompilerOptions};
use raw_repro::ir::interp::Interpreter;
use raw_repro::machine::chaos::ChaosConfig;
use raw_repro::machine::MachineConfig;

fn run_with_chaos(
    bench: &raw_repro::benchmarks::Benchmark,
    n: u32,
    chaos: Option<ChaosConfig>,
) -> raw_repro::ir::interp::ExecResult {
    let program = bench.program(n).unwrap();
    let config = MachineConfig::square(n);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    let mut machine = compiled.instantiate(&program);
    if let Some(c) = chaos {
        machine = machine.with_chaos(c);
    }
    machine
        .run()
        .unwrap_or_else(|e| panic!("{} @{n} chaos={chaos:?}: {e}", bench.name));
    compiled.extract_result(&program, &machine)
}

#[test]
fn random_stalls_do_not_change_results() {
    for bench in [
        raw_repro::benchmarks::jacobi(8, 1),
        raw_repro::benchmarks::mxm(4, 8, 2),
        raw_repro::benchmarks::life(6, 1),
    ] {
        let reference = run_with_chaos(&bench, 4, None);
        let golden = Interpreter::new(&bench.program(4).unwrap()).run().unwrap();
        assert!(reference.state_eq(&golden));
        for seed in 1..=5u64 {
            for stall_percent in [10, 35, 60] {
                let perturbed = run_with_chaos(
                    &bench,
                    4,
                    Some(ChaosConfig {
                        seed,
                        stall_percent,
                    }),
                );
                assert!(
                    perturbed.state_eq(&reference),
                    "{}: timing perturbation changed the result (seed {seed}, {stall_percent}%)",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn chaos_sweep_stall_rates_seeds_and_shapes() {
    // Appendix-A sweep: stall probabilities {1, 5, 20, 50}% × 8 seeds × two
    // mesh shapes. Final memory must be bit-identical to the unperturbed run
    // in every cell of the matrix. The chaos seeds themselves are drawn from
    // the testkit RNG so the sweep is deterministic but not hand-picked.
    let bench = raw_repro::benchmarks::jacobi(8, 1);
    let program = bench.program(4).unwrap();
    let golden = Interpreter::new(&program).run().unwrap();
    let mut seed_rng = raw_testkit::Rng::new(0x000A_110C_8A05);
    let seeds: Vec<u64> = (0..8).map(|_| seed_rng.next_u64()).collect();

    for (rows, cols) in [(2u32, 2), (1, 4)] {
        let config = MachineConfig::grid(rows, cols);
        let compiled = compile(&program, &config, &CompilerOptions::default())
            .unwrap_or_else(|e| panic!("{rows}x{cols}: compile: {e}"));
        let mut reference = compiled.instantiate(&program);
        reference
            .run()
            .unwrap_or_else(|e| panic!("{rows}x{cols}: {e}"));
        let reference = compiled.extract_result(&program, &reference);
        assert!(
            reference.state_eq(&golden),
            "{rows}x{cols}: unperturbed run diverges from interpreter"
        );

        for &seed in &seeds {
            for stall_percent in [1u32, 5, 20, 50] {
                let mut machine = compiled.instantiate(&program).with_chaos(ChaosConfig {
                    seed,
                    stall_percent,
                });
                machine.run().unwrap_or_else(|e| {
                    panic!("{rows}x{cols} seed {seed:#x} {stall_percent}%: {e}")
                });
                let perturbed = compiled.extract_result(&program, &machine);
                assert!(
                    perturbed.state_eq(&reference),
                    "{rows}x{cols}: timing perturbation changed final memory \
                     (seed {seed:#x}, {stall_percent}%)"
                );
            }
        }
    }
}

#[test]
fn chaos_slows_execution_but_terminates() {
    let bench = raw_repro::benchmarks::jacobi(8, 1);
    let program = bench.program(2).unwrap();
    let config = MachineConfig::square(2);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();

    let mut clean = compiled.instantiate(&program);
    let clean_cycles = clean.run().unwrap().cycles;

    let mut noisy = compiled.instantiate(&program).with_chaos(ChaosConfig {
        seed: 99,
        stall_percent: 50,
    });
    let noisy_cycles = noisy.run().unwrap().cycles;
    assert!(
        noisy_cycles > clean_cycles,
        "stalls must cost cycles: {noisy_cycles} vs {clean_cycles}"
    );
}

#[test]
fn dynamic_network_traffic_is_timing_robust_too() {
    // A kernel with data-dependent (dynamic-network) stores.
    let src = "
        int i; int k;
        int D[16];
        int H[4];
        for (i = 0; i < 16; i = i + 1) {
            k = D[i] % 4;
            H[k] = H[k] + 1;
        }
    ";
    let mut program = raw_repro::lang::compile_source("hist", src, 4).unwrap();
    let d = program.array_by_name("D").unwrap();
    program.arrays[d.index()].init = (0..16).map(|k| raw_repro::ir::Imm::I(k * 3)).collect();
    let config = MachineConfig::square(4);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    let golden = Interpreter::new(&program).run().unwrap();

    for seed in [7u64, 13, 21] {
        let mut machine = compiled.instantiate(&program).with_chaos(ChaosConfig {
            seed,
            stall_percent: 30,
        });
        machine.run().unwrap();
        let result = compiled.extract_result(&program, &machine);
        assert!(result.state_eq(&golden), "seed {seed} diverged");
    }
}

//! Differential validation of the tracing subsystem.
//!
//! Tracing claims to be strictly observational: attaching a recording event
//! sink must leave cycle counts, statistics, and final memory bit-identical
//! to an untraced run. This suite asserts that across every `raw-benchmarks`
//! workload and a chaos sweep, and round-trips the Chrome-trace export of
//! matmul on 16 tiles through the in-tree JSON parser.

use raw_repro::cc::{compile, CompiledProgram, CompilerOptions};
use raw_repro::ir::Program;
use raw_repro::machine::chaos::ChaosConfig;
use raw_repro::machine::isa::TileId;
use raw_repro::machine::{MachineConfig, RunReport};
use raw_repro::trace::{chrome, json, RecordingSink, Trace};

/// Snapshot of everything observable about a finished run.
type Observation = (RunReport, Vec<Vec<u32>>);

fn run_untraced(
    compiled: &CompiledProgram,
    program: &Program,
    chaos: Option<ChaosConfig>,
    label: &str,
) -> Observation {
    let mut machine = compiled.instantiate(program);
    if let Some(c) = chaos {
        machine = machine.with_chaos(c);
    }
    let report = machine.run().unwrap_or_else(|e| panic!("{label}: {e}"));
    let n = machine.config().n_tiles();
    let mems = (0..n).map(|t| machine.memory(TileId(t)).to_vec()).collect();
    (report, mems)
}

fn run_traced(
    compiled: &CompiledProgram,
    program: &Program,
    chaos: Option<ChaosConfig>,
    label: &str,
) -> (Observation, Trace) {
    let mut machine = compiled.instantiate_with_sink(program, RecordingSink::new());
    if let Some(c) = chaos {
        machine = machine.with_chaos(c);
    }
    let report = machine
        .run()
        .unwrap_or_else(|e| panic!("{label} (traced): {e}"));
    let n = machine.config().n_tiles();
    let mems = (0..n).map(|t| machine.memory(TileId(t)).to_vec()).collect();
    let trace = Trace::capture(machine, &report);
    ((report, mems), trace)
}

/// Asserts a traced run is bit-identical to an untraced one.
fn assert_trace_transparent(
    compiled: &CompiledProgram,
    program: &Program,
    chaos: Option<ChaosConfig>,
    label: &str,
) {
    let (plain_report, plain_mems) = run_untraced(compiled, program, chaos, label);
    let ((traced_report, traced_mems), trace) = run_traced(compiled, program, chaos, label);
    assert_eq!(
        traced_report.cycles, plain_report.cycles,
        "{label}: cycle count changed by tracing"
    );
    assert_eq!(
        traced_report.stats, plain_report.stats,
        "{label}: stats changed by tracing"
    );
    assert_eq!(
        traced_mems, plain_mems,
        "{label}: final memory changed by tracing"
    );
    assert!(
        !trace.events.is_empty(),
        "{label}: traced run recorded no events"
    );
    assert_eq!(trace.total_cycles, plain_report.cycles, "{label}");
}

#[test]
fn every_workload_traced_matches_untraced() {
    for bench in raw_repro::benchmarks::tiny_suite() {
        let program = bench.program(4).unwrap();
        let config = MachineConfig::square(4);
        let compiled = compile(&program, &config, &CompilerOptions::default())
            .unwrap_or_else(|e| panic!("{}: compile: {e}", bench.name));
        assert_trace_transparent(&compiled, &program, None, bench.name);
    }
}

#[test]
fn chaos_sweep_traced_matches_untraced() {
    // Same sweep shape as the stepper-differential suite: stall rates
    // {1, 5, 20, 50}% × seeds × two mesh shapes. Tracing must not perturb the
    // chaos RNG draw order either.
    let bench = raw_repro::benchmarks::jacobi(8, 1);
    let program = bench.program(4).unwrap();
    let mut seed_rng = raw_testkit::Rng::new(0x0BCE_55E0_77AC);
    let seeds: Vec<u64> = (0..4).map(|_| seed_rng.next_u64()).collect();

    for (rows, cols) in [(2u32, 2), (1, 4)] {
        let config = MachineConfig::grid(rows, cols);
        let compiled = compile(&program, &config, &CompilerOptions::default())
            .unwrap_or_else(|e| panic!("{rows}x{cols}: compile: {e}"));
        for &seed in &seeds {
            for stall_percent in [1u32, 5, 20, 50] {
                assert_trace_transparent(
                    &compiled,
                    &program,
                    Some(ChaosConfig {
                        seed,
                        stall_percent,
                    }),
                    &format!("{rows}x{cols} seed {seed:#x} {stall_percent}%"),
                );
            }
        }
    }
}

#[test]
fn chrome_trace_round_trips_for_matmul_on_16_tiles() {
    let bench = raw_repro::benchmarks::mxm(4, 8, 2);
    let program = bench.program(16).unwrap();
    let config = MachineConfig::square(16);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    let run = raw_repro::trace::run_traced(&compiled, &program).unwrap();

    let doc_text = chrome::chrome_trace(&run.trace);
    let doc = json::parse(&doc_text).expect("chrome export parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // One named track per tile processor and per switch (16 tiles → 32).
    let thread_names = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .count();
    assert_eq!(thread_names, 32);

    // Every duration event stays within the run and on a valid track.
    let mut duration_events = 0usize;
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        duration_events += 1;
        let ts = e.get("ts").and_then(|v| v.as_f64()).unwrap();
        let dur = e.get("dur").and_then(|v| v.as_f64()).unwrap();
        let tid = e.get("tid").and_then(|v| v.as_f64()).unwrap();
        assert!(ts >= 0.0 && dur >= 1.0);
        assert!(ts + dur <= run.report.cycles as f64, "event past run end");
        assert!((tid as usize) < 32, "tid {tid} out of range");
    }
    assert!(duration_events > 0, "no duration events in export");
}

//! End-to-end correctness: every benchmark kernel, compiled at several machine
//! sizes and simulated cycle-accurately, must reproduce the reference
//! interpreter's variables and arrays bit-exactly.

use raw_repro::cc::{compile, compile_baseline, CompilerOptions};
use raw_repro::ir::interp::Interpreter;
use raw_repro::machine::MachineConfig;

fn check(bench: &raw_repro::benchmarks::Benchmark, n: u32) {
    let program = bench.program(n).expect(bench.name);
    let config = MachineConfig::square(n);
    let compiled = compile(&program, &config, &CompilerOptions::default())
        .unwrap_or_else(|e| panic!("{} @{n}: compile: {e}", bench.name));
    let (result, report) = compiled
        .run(&program)
        .unwrap_or_else(|e| panic!("{} @{n}: simulate: {e}", bench.name));
    let golden = Interpreter::new(&program).run().unwrap();
    assert!(
        result.state_eq(&golden),
        "{} @{n}: simulated state diverges from interpreter",
        bench.name
    );
    assert!(report.cycles > 0);
}

#[test]
fn tiny_suite_all_sizes() {
    for bench in raw_repro::benchmarks::tiny_suite() {
        for n in [1u32, 2, 4, 8] {
            check(&bench, n);
        }
    }
}

#[test]
fn baselines_match_interpreter() {
    for bench in raw_repro::benchmarks::tiny_suite() {
        let program = bench.baseline_program().expect(bench.name);
        let compiled = compile_baseline(&program, &MachineConfig::square(1)).unwrap();
        let (result, _) = compiled.run(&program).unwrap();
        let golden = Interpreter::new(&program).run().unwrap();
        assert!(result.state_eq(&golden), "{} baseline diverges", bench.name);
    }
}

#[test]
fn rectangular_meshes_work_too() {
    // Non-square power-of-two meshes (1×2, 2×1, 1×4, 4×2).
    let bench = raw_repro::benchmarks::jacobi(8, 1);
    for (rows, cols) in [(1u32, 2u32), (2, 1), (1, 4), (4, 2)] {
        let n = rows * cols;
        let program = bench.program(n).unwrap();
        let config = MachineConfig::grid(rows, cols);
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
        let (result, _) = compiled
            .run(&program)
            .unwrap_or_else(|e| panic!("{rows}x{cols}: {e}"));
        let golden = Interpreter::new(&program).run().unwrap();
        assert!(result.state_eq(&golden), "{rows}x{cols} diverges");
    }
}

#[test]
fn ablation_configurations_stay_correct() {
    use raw_repro::cc::PriorityScheme;
    let bench = raw_repro::benchmarks::mxm(4, 8, 2);
    let program = bench.program(4).unwrap();
    let config = MachineConfig::square(4);
    let golden = Interpreter::new(&program).run().unwrap();
    let variants = [
        CompilerOptions {
            clustering: false,
            ..Default::default()
        },
        CompilerOptions {
            placement_swap: false,
            ..Default::default()
        },
        CompilerOptions {
            priority: PriorityScheme::LevelOnly,
            ..Default::default()
        },
        CompilerOptions {
            priority: PriorityScheme::SourceOrder,
            ..Default::default()
        },
        CompilerOptions {
            fold_communication: false,
            ..Default::default()
        },
    ];
    for (i, options) in variants.iter().enumerate() {
        let compiled = compile(&program, &config, options).unwrap();
        let (result, _) = compiled.run(&program).unwrap();
        assert!(result.state_eq(&golden), "ablation variant {i} diverges");
    }
}

#[test]
fn machine_variants_stay_correct() {
    // inf-reg and 1-cycle machines (Figure 8 configurations) must compute the
    // same results, just in different cycle counts.
    let bench = raw_repro::benchmarks::fpppp_kernel(raw_repro::benchmarks::FppppShape {
        inputs: 8,
        intermediates: 16,
        outputs: 4,
        seed: 11,
    });
    let program = bench.program(4).unwrap();
    let golden = Interpreter::new(&program).run().unwrap();
    for config in [
        MachineConfig::square(4),
        MachineConfig::square(4).with_infinite_registers(),
        MachineConfig::square(4).with_unit_latency(),
    ] {
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
        let (result, _) = compiled.run(&program).unwrap();
        assert!(result.state_eq(&golden));
    }
}

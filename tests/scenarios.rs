//! Acceptance tests for the adversarial mesh scenarios: faulty-tile-aware
//! compilation, co-residency, and the scenario differential harness.
//!
//! The contract under test (DESIGN.md §12):
//!
//! * compiling with a faulty-tile mask emits **zero** instructions — processor
//!   or switch — on every masked tile;
//! * the generated code is byte-identical across worker-thread counts and
//!   block-cache temperatures;
//! * every scenario kernel is bit-identical between the tracked stepper and
//!   `with_reference_stepper`, with tracing on and off;
//! * two programs linked co-resident produce exactly their solo results.

use raw_repro::cc::{
    compile, compile_with_cache, link_coresident, BlockCache, CompiledProgram, CompilerOptions,
};
use raw_repro::ir::interp::Interpreter;
use raw_repro::ir::Program;
use raw_repro::machine::chaos::ChaosConfig;
use raw_repro::machine::isa::TileId;
use raw_repro::machine::{Machine, MachineConfig, RunReport};
use raw_repro::trace::{run_coresident_traced, run_traced};

/// The scenario mesh: 2×4 with tile 3 reported dead; `mask_to_pow2` pads the
/// mask so four tiles stay live ({0, 1, 2, 4}).
fn faulty_config() -> MachineConfig {
    let base = MachineConfig::grid(2, 4);
    let mask = base.mask_to_pow2(&[TileId::from_raw(3)]);
    base.with_faulty(mask)
}

/// The complementary partition (live exactly where [`faulty_config`] is dead).
fn complement_config() -> MachineConfig {
    let a = faulty_config();
    let dead: Vec<TileId> = (0..a.n_tiles())
        .map(TileId::from_raw)
        .filter(|&t| !a.is_faulty(t))
        .collect();
    let mut mask = raw_repro::machine::TileMask::EMPTY;
    for t in dead {
        mask.insert(t);
    }
    MachineConfig::grid(2, 4).with_faulty(mask)
}

fn observe(mut machine: Machine, label: &str) -> (RunReport, Vec<Vec<u32>>) {
    let report = machine.run().unwrap_or_else(|e| panic!("{label}: {e}"));
    let n = machine.config().n_tiles();
    let mems = (0..n).map(|t| machine.memory(TileId(t)).to_vec()).collect();
    (report, mems)
}

fn assert_steppers_agree(
    compiled: &CompiledProgram,
    program: &Program,
    chaos: Option<ChaosConfig>,
    label: &str,
) {
    let with_chaos = |mut m: Machine| {
        if let Some(c) = chaos {
            m = m.with_chaos(c);
        }
        m
    };
    let tracked = with_chaos(compiled.instantiate(program));
    let reference = with_chaos(compiled.instantiate(program).with_reference_stepper());
    let (t_report, t_mems) = observe(tracked, label);
    let (r_report, r_mems) = observe(reference, label);
    assert_eq!(t_report.cycles, r_report.cycles, "{label}: cycle count");
    assert_eq!(t_report.stats, r_report.stats, "{label}: stats");
    assert_eq!(t_mems, r_mems, "{label}: final memory");
}

#[test]
fn faulty_mask_emits_zero_instructions_on_masked_tiles() {
    let config = faulty_config();
    for bench in raw_repro::benchmarks::scenario_suite() {
        let program = bench.program(config.n_live()).unwrap();
        let compiled = compile(&program, &config, &CompilerOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        for (t, code) in compiled.machine_program.tiles.iter().enumerate() {
            if config.is_faulty(TileId::from_raw(t as u32)) {
                assert!(
                    code.proc.is_empty() && code.switch.is_empty(),
                    "{}: faulty tile {t} carries {} proc / {} switch instructions",
                    bench.name,
                    code.proc.len(),
                    code.switch.len()
                );
            }
        }
        // And the compiled result still computes the right answer.
        let golden = Interpreter::new(&program).run().unwrap();
        let (result, _) = compiled.run(&program).unwrap();
        assert!(
            result.state_eq(&golden),
            "{}: masked compile diverges from the interpreter",
            bench.name
        );
    }
}

#[test]
fn masked_compiles_are_identical_across_threads_and_cache_temperature() {
    let config = faulty_config();
    for bench in raw_repro::benchmarks::scenario_suite() {
        let program = bench.program(config.n_live()).unwrap();
        let opts = |threads: usize| CompilerOptions {
            threads,
            ..CompilerOptions::default()
        };
        let reference = compile_with_cache(&program, &config, &opts(1), &BlockCache::in_memory())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        // Parallel, cold cache.
        let parallel = compile_with_cache(&program, &config, &opts(8), &BlockCache::in_memory())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(
            reference.machine_program, parallel.machine_program,
            "{}: 8-thread compile diverged from serial",
            bench.name
        );
        // Warm cache: compile twice against one cache, the second run must be
        // served from it and still byte-identical.
        let shared = BlockCache::in_memory();
        compile_with_cache(&program, &config, &opts(8), &shared).unwrap();
        let warm = compile_with_cache(&program, &config, &opts(8), &shared)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(
            warm.report.cache.misses, 0,
            "{}: warm recompiled",
            bench.name
        );
        assert_eq!(
            reference.machine_program, warm.machine_program,
            "{}: warm-cache compile diverged",
            bench.name
        );
    }
}

#[test]
fn scenario_suite_matches_reference_stepper_traced_and_untraced() {
    let config = faulty_config();
    for bench in raw_repro::benchmarks::scenario_suite() {
        let program = bench.program(config.n_live()).unwrap();
        let compiled = compile(&program, &config, &CompilerOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        // Untraced: tracked vs reference, clean and under chaos.
        assert_steppers_agree(&compiled, &program, None, bench.name);
        let mut seed_rng = raw_testkit::Rng::new(0x000A_110C_8A05);
        for _ in 0..2 {
            let seed = seed_rng.next_u64();
            for stall_percent in [5u32, 30] {
                assert_steppers_agree(
                    &compiled,
                    &program,
                    Some(ChaosConfig {
                        seed,
                        stall_percent,
                    }),
                    &format!("{} chaos {seed:#x} {stall_percent}%", bench.name),
                );
            }
        }
        // Traced run must be observationally identical to the untraced one.
        let (_, plain) = compiled.run(&program).unwrap();
        let traced = run_traced(&compiled, &program).unwrap();
        assert_eq!(
            traced.report.cycles, plain.cycles,
            "{}: traced cycles",
            bench.name
        );
        assert_eq!(
            traced.report.stats, plain.stats,
            "{}: traced stats",
            bench.name
        );
    }
}

#[test]
fn coresident_programs_are_isolated_and_attributed() {
    let suite = raw_repro::benchmarks::scenario_suite();
    let config_a = faulty_config();
    let config_b = complement_config();
    let prog_a = suite[0].program(config_a.n_live()).unwrap();
    let prog_b = suite[2].program(config_b.n_live()).unwrap();
    let compiled_a = compile(&prog_a, &config_a, &CompilerOptions::default()).unwrap();
    let compiled_b = compile(&prog_b, &config_b, &CompilerOptions::default()).unwrap();
    let solo_a = compiled_a.run(&prog_a).unwrap().0;
    let solo_b = compiled_b.run(&prog_b).unwrap().0;

    let co = link_coresident(&compiled_a, &compiled_b).unwrap();
    let (results, report) = co.run([&prog_a, &prog_b]).unwrap();
    assert!(
        results[0].state_eq(&solo_a),
        "program A's co-resident result differs from its solo run"
    );
    assert!(
        results[1].state_eq(&solo_b),
        "program B's co-resident result differs from its solo run"
    );

    // Traced co-run: same cycle count, and the per-program attribution only
    // counts activity on owned tiles (windows of unowned tiles are excluded).
    let traced = run_coresident_traced(&co, [&prog_a, &prog_b]).unwrap();
    assert_eq!(traced.report.cycles, report.cycles, "traced co-run cycles");
    assert!(traced.results[0].state_eq(&solo_a));
    assert!(traced.results[1].state_eq(&solo_b));
    for (i, acc) in traced.per_program.iter().enumerate() {
        assert!(acc.issues > 0, "program {i} attributed zero issues");
        assert_eq!(
            acc.issues + acc.proc_stall_total(),
            acc.proc_window,
            "program {i}: per-program proc accounting must balance"
        );
    }
    // The merged mesh marks exactly the unowned tiles faulty.
    for t in 0..co.config.n_tiles() {
        let t = TileId::from_raw(t);
        let owned = co.tiles_of(0).contains(&t) || co.tiles_of(1).contains(&t);
        assert_ne!(owned, co.config.is_faulty(t), "tile {} ownership", t.0);
    }
}

#[test]
fn coresident_link_rejects_overlap_and_shape_mismatch() {
    let suite = raw_repro::benchmarks::scenario_suite();
    let config = faulty_config();
    let prog = suite[2].program(config.n_live()).unwrap();
    let compiled = compile(&prog, &config, &CompilerOptions::default()).unwrap();
    // Same partition twice: every live tile overlaps.
    let err = link_coresident(&compiled, &compiled).unwrap_err();
    assert!(
        err.to_string().contains("live in both"),
        "unexpected error: {err}"
    );
    // Different mesh shape.
    let square = MachineConfig::square(4);
    let prog4 = suite[2].program(4).unwrap();
    let other = compile(&prog4, &square, &CompilerOptions::default()).unwrap();
    let err = link_coresident(&compiled, &other).unwrap_err();
    assert!(
        err.to_string().contains("different mesh shapes"),
        "unexpected error: {err}"
    );
}

//! Determinism battery for the parallel compile pipeline and the
//! content-addressed block cache (ISSUE 5 acceptance gate).
//!
//! The contract: thread count and cache state are *performance* knobs — they
//! must never change a single output bit. For every benchmark workload and the
//! chaos-sweep machine shapes, this battery compiles at `threads = 1, 2, 8`,
//! cold and warm cache, memory-only and disk-backed, and asserts byte-identical
//! per-tile asm ([`MachineProgram`] equality covers every instruction),
//! identical `BlockReport`s / `PlacementLog`s / `ProvenanceMap`s, and identical
//! simulated cycle counts.

use raw_repro::benchmarks;
use raw_repro::cc::{
    compile_with_cache, BlockCache, CompiledProgram, CompilerOptions, PlacementAlgorithm,
};
use raw_repro::ir::Program;
use raw_repro::machine::MachineConfig;
use std::sync::atomic::{AtomicU64, Ordering};

fn opts(threads: usize) -> CompilerOptions {
    CompilerOptions {
        threads,
        ..CompilerOptions::default()
    }
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "rawcc-det-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Asserts every output surface of two compiles is identical.
fn assert_identical(reference: &CompiledProgram, candidate: &CompiledProgram, what: &str) {
    assert_eq!(
        reference.machine_program, candidate.machine_program,
        "{what}: per-tile asm diverged"
    );
    assert_eq!(
        reference.report.blocks, candidate.report.blocks,
        "{what}: BlockReports (incl. PlacementLogs) diverged"
    );
    assert_eq!(
        reference.provenance, candidate.provenance,
        "{what}: ProvenanceMap diverged"
    );
    assert_eq!(
        reference.layout, candidate.layout,
        "{what}: layout diverged"
    );
}

/// Compiles `program` serially/cold as the reference, then re-compiles under
/// every (threads, cache temperature, disk) combination and checks identity.
fn check_program(program: &Program, config: &MachineConfig, base: &CompilerOptions, what: &str) {
    let reference = compile_with_cache(program, config, base, &BlockCache::in_memory())
        .unwrap_or_else(|e| panic!("{what}: reference compile failed: {e}"));
    assert_eq!(reference.report.threads, 1, "{what}: reference is serial");

    // Parallel, cold cache.
    for threads in [2usize, 8] {
        let options = CompilerOptions { threads, ..*base };
        let compiled =
            compile_with_cache(program, config, &options, &BlockCache::in_memory()).unwrap();
        assert_identical(&reference, &compiled, &format!("{what} threads={threads}"));
    }

    // Warm in-memory cache: second compile must be 100% hits and identical.
    let shared = BlockCache::in_memory();
    let options = CompilerOptions {
        threads: 8,
        ..*base
    };
    let cold = compile_with_cache(program, config, &options, &shared).unwrap();
    assert_identical(&reference, &cold, &format!("{what} shared/cold"));
    let warm = compile_with_cache(program, config, &options, &shared).unwrap();
    assert_identical(&reference, &warm, &format!("{what} shared/warm"));
    assert_eq!(
        warm.report.cache.misses, 0,
        "{what}: warm compile recompiled a block"
    );
    assert_eq!(
        warm.report.cache.hits,
        program.blocks.len() as u64,
        "{what}: warm compile should hit every block"
    );
    assert!(
        warm.report.block_cached.iter().all(|&c| c),
        "{what}: every block should be cache-served"
    );

    // Disk layer: a fresh cache over the same directory serves every block
    // from disk, bit-identically (verify mode re-checks each hit).
    let dir = unique_dir("disk");
    {
        let disk = BlockCache::with_disk(&dir).expect("disk cache");
        let seeded = compile_with_cache(program, config, &options, &disk).unwrap();
        assert_identical(&reference, &seeded, &format!("{what} disk/cold"));
    }
    {
        let mut disk = BlockCache::with_disk(&dir).expect("disk cache reopen");
        disk.set_verify(true);
        let warm_disk = compile_with_cache(program, config, &options, &disk).unwrap();
        assert_identical(&reference, &warm_disk, &format!("{what} disk/warm"));
        assert_eq!(
            warm_disk.report.cache.misses, 0,
            "{what}: disk-warm compile recompiled a block"
        );
        assert_eq!(disk.disk_rejects(), 0, "{what}: disk entries all validated");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn benchmark_workloads_are_thread_and_cache_invariant() {
    let config = MachineConfig::square(4);
    for bench in benchmarks::tiny_suite() {
        let program = bench.program(4).expect("benchmark lowers");
        check_program(&program, &config, &opts(1), bench.name);
    }
}

#[test]
fn chaos_sweep_shapes_are_thread_and_cache_invariant() {
    // The differential stepper's mesh shapes: square and degenerate-row.
    for (rows, cols) in [(2u32, 2u32), (1, 4)] {
        let config = MachineConfig::grid(rows, cols);
        for bench in [
            benchmarks::tiny_suite().remove(0),
            benchmarks::tiny_suite().remove(6),
        ] {
            let program = bench.program(rows * cols).expect("benchmark lowers");
            check_program(
                &program,
                &config,
                &opts(1),
                &format!("{}@{rows}x{cols}", bench.name),
            );
        }
    }
}

#[test]
fn annealing_placement_is_thread_and_cache_invariant() {
    // The annealer's RNG stream is the part most tempted to depend on compile
    // order; pin it across threads and cache temperature too.
    let config = MachineConfig::square(4);
    let base = CompilerOptions {
        placement: PlacementAlgorithm::Annealing { seed: 0xA11CE },
        threads: 1,
        ..CompilerOptions::default()
    };
    for bench in [
        benchmarks::tiny_suite().remove(0),
        benchmarks::tiny_suite().remove(3),
    ] {
        let program = bench.program(4).expect("benchmark lowers");
        check_program(
            &program,
            &config,
            &base,
            &format!("{}+annealing", bench.name),
        );
    }
}

#[test]
fn simulated_cycles_match_across_thread_counts() {
    // Identical asm implies identical cycles, but run the machine anyway so a
    // regression in any equality above cannot hide behind a stale assert.
    let config = MachineConfig::square(4);
    for bench in benchmarks::tiny_suite().into_iter().take(3) {
        let program = bench.program(4).expect("benchmark lowers");
        let serial = compile_with_cache(&program, &config, &opts(1), &BlockCache::in_memory())
            .unwrap()
            .run(&program)
            .expect("serial-compiled program simulates")
            .1
            .cycles;
        let parallel = compile_with_cache(&program, &config, &opts(8), &BlockCache::in_memory())
            .unwrap()
            .run(&program)
            .expect("parallel-compiled program simulates")
            .1
            .cycles;
        assert_eq!(serial, parallel, "{}: cycle counts diverged", bench.name);
    }
}

#[test]
fn rawcc_threads_env_only_changes_thread_count() {
    // `compile` (the env-driven entry) under whatever RAWCC_THREADS the
    // harness set must equal an explicit serial compile. The CI gate runs the
    // suite under RAWCC_THREADS=1 and =8, so this covers both settings.
    let bench = benchmarks::tiny_suite().remove(1);
    let program = bench.program(4).expect("benchmark lowers");
    let config = MachineConfig::square(4);
    let via_env = raw_repro::cc::compile(&program, &config, &CompilerOptions::default()).unwrap();
    let serial = compile_with_cache(&program, &config, &opts(1), &BlockCache::in_memory()).unwrap();
    assert_identical(&serial, &via_env, "env-threaded compile");
}

//! Observability reports: golden snapshot of the stall-taxonomy occupancy
//! table, and the accounting invariant as a property test.
//!
//! The invariant (see `raw_trace::TileAccount`): within a unit's live window,
//! every cycle is attributed exactly once, so per tile the stall reasons sum
//! to `window − issues` (processors) and `window − routes − controls`
//! (switches) — under both steppers, with and without chaos injection.

use raw_repro::cc::{compile, CompiledProgram, CompilerOptions};
use raw_repro::ir::Program;
use raw_repro::machine::chaos::ChaosConfig;
use raw_repro::machine::MachineConfig;
use raw_repro::trace::annotate::{placement_audit, SourceAnnotation};
use raw_repro::trace::{report, RecordingSink, Trace};
use raw_testkit::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    raw_testkit::check_golden(&path, actual);
}

/// Stepper selector: 0 = tracked (default), 1 = reference, 2 = event-driven.
fn with_stepper(
    compiled: &CompiledProgram,
    program: &Program,
    stepper: u8,
) -> raw_repro::machine::Machine<RecordingSink> {
    let machine = compiled.instantiate_with_sink(program, RecordingSink::new());
    match stepper {
        0 => machine,
        1 => machine.with_reference_stepper(),
        _ => machine.with_event_stepper(),
    }
}

fn capture(
    compiled: &CompiledProgram,
    program: &Program,
    chaos: Option<ChaosConfig>,
    stepper: u8,
) -> Trace {
    let mut machine = with_stepper(compiled, program, stepper);
    if let Some(c) = chaos {
        machine = machine.with_chaos(c);
    }
    let report = machine.run().expect("run completes");
    Trace::capture(machine, &report)
}

#[test]
fn occupancy_table_snapshot_mxm_2x2() {
    // The matmul kernel exercises the interesting taxonomy rows: scoreboard
    // waits on multiply latency and receive-empty waits on operand traffic.
    let bench = raw_repro::benchmarks::mxm(4, 8, 2);
    let program = bench.program(4).unwrap();
    let config = MachineConfig::square(4);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    let trace = capture(&compiled, &program, None, 0);
    let text = format!(
        "{}\n{}",
        report::occupancy_table(&trace),
        report::link_heatmap(&trace)
    );
    check_golden("trace_occupancy_mxm_2x2.txt", &text);
}

#[test]
fn annotated_source_snapshot_mxm_2x2() {
    // Pins the per-source-line hotspot listing and the placement audit log.
    // The listing's totals row also proves attribution conserves the
    // active-window accounting for this workload.
    let bench = raw_repro::benchmarks::mxm(4, 8, 2);
    let program = bench.program(4).unwrap();
    let config = MachineConfig::square(4);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    let trace = capture(&compiled, &program, None, 0);
    let ann = SourceAnnotation::build(&trace, &compiled.provenance);
    ann.selfcheck()
        .expect("attribution conserves window accounting");
    let text = format!(
        "{}\n{}",
        ann.render(bench.source()),
        placement_audit(&trace, &compiled.provenance, &compiled.report, 5)
    );
    check_golden("annotate_mxm_2x2.txt", &text);
}

#[test]
fn critical_path_snapshot_mxm_2x2() {
    let bench = raw_repro::benchmarks::mxm(4, 8, 2);
    let program = bench.program(4).unwrap();
    let config = MachineConfig::square(4);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    let trace = capture(&compiled, &program, None, 0);
    check_golden("critical_path_mxm_2x2.txt", &report::critical_path(&trace));
}

#[test]
fn occupancy_table_identical_across_steppers() {
    // Without chaos both steppers must attribute every cycle identically,
    // so the rendered table (and heatmap) are byte-equal.
    let bench = raw_repro::benchmarks::jacobi(8, 1);
    let program = bench.program(4).unwrap();
    let config = MachineConfig::square(4);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    let tracked = capture(&compiled, &program, None, 0);
    let reference = capture(&compiled, &program, None, 1);
    assert_eq!(
        report::occupancy_table(&tracked),
        report::occupancy_table(&reference)
    );
    assert_eq!(
        report::link_heatmap(&tracked),
        report::link_heatmap(&reference)
    );
}

#[test]
fn event_stepper_emits_identical_event_stream() {
    // Stronger than report equality: the event-driven stepper must emit the
    // *same events in the same order* as the tracked stepper — issue, stall,
    // retroactive stall spans, routes, commits, idles — on every workload.
    // (The reference stepper legitimately differs in idle timing, so this
    // byte-level check is tracked-vs-event only.)
    for (program, compiled) in compiled_suite() {
        let mut tracked = with_stepper(compiled, program, 0);
        let mut event = with_stepper(compiled, program, 2);
        let t_report = tracked.run().expect("tracked completes");
        let e_report = event.run().expect("event completes");
        assert_eq!(t_report.cycles, e_report.cycles);
        let t_events = tracked.into_sink().events;
        let e_events = event.into_sink().events;
        assert_eq!(t_events.len(), e_events.len(), "event stream length");
        for (i, (te, ee)) in t_events.iter().zip(e_events.iter()).enumerate() {
            assert_eq!(te, ee, "event {i} of {}", t_events.len());
        }
    }
}

/// The tiny suite, compiled once for the property test.
fn compiled_suite() -> &'static Vec<(Program, CompiledProgram)> {
    static SUITE: OnceLock<Vec<(Program, CompiledProgram)>> = OnceLock::new();
    SUITE.get_or_init(|| {
        let config = MachineConfig::square(4);
        raw_repro::benchmarks::tiny_suite()
            .iter()
            .map(|b| {
                let program = b.program(4).unwrap();
                let compiled = compile(&program, &config, &CompilerOptions::default())
                    .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
                (program, compiled)
            })
            .collect()
    })
}

proptest! {
    #![cases(12)]

    /// Accounting invariant: stall reasons sum to the unaccounted remainder
    /// of every unit's live window, for random (workload, stepper, chaos)
    /// combinations.
    #[test]
    fn stall_reasons_sum_to_window_remainder(
        bench_idx in 0usize..7,
        stepper in 0u32..3,
        stall_level in 0u32..3,
        seed in 0u64..1_000_000,
    ) {
        let suite = compiled_suite();
        let (program, compiled) = &suite[bench_idx % suite.len()];
        let chaos = match stall_level {
            0 => None,
            1 => Some(ChaosConfig { seed, stall_percent: 5 }),
            _ => Some(ChaosConfig { seed, stall_percent: 30 }),
        };
        let trace = capture(compiled, program, chaos, stepper as u8);
        for (t, a) in trace.accounts().iter().enumerate() {
            prop_assert_eq!(
                a.issues + a.proc_stall_total(),
                a.proc_window,
                "tile {} proc: {} issues + {} stalls != window {}",
                t, a.issues, a.proc_stall_total(), a.proc_window
            );
            prop_assert_eq!(
                a.routes + a.controls + a.switch_stall_total(),
                a.switch_window,
                "tile {} switch: {} routes + {} ctrl + {} stalls != window {}",
                t, a.routes, a.controls, a.switch_stall_total(), a.switch_window
            );
        }
        // Source-level attribution must conserve the same accounting under
        // every stepper and chaos level.
        let ann = SourceAnnotation::build(&trace, &compiled.provenance);
        if let Err((attributed, window)) = ann.selfcheck() {
            prop_assert!(
                false,
                "annotation lost cycles: {} attributed vs {} in windows",
                attributed, window
            );
        }
    }
}

//! Property-based tests: random programs through the whole pipeline.
//!
//! The central invariant of the reproduction — *space-time scheduling
//! preserves sequential semantics* — is checked on randomly generated
//! straight-line dataflow programs, random affine loop nests, and random
//! register-pressure shapes.

use raw_repro::cc::{compile, CompilerOptions};
use raw_repro::ir::builder::ProgramBuilder;
use raw_repro::ir::interp::Interpreter;
use raw_repro::ir::{BinOp, Imm, MemHome, Program, Ty, UnOp, ValueId};
use raw_repro::machine::MachineConfig;
use raw_testkit::prelude::*;

/// One random straight-line op over previously defined values.
#[derive(Clone, Debug)]
enum Op {
    ConstI(i16),
    ConstF(i16),
    IntBin(u8, usize, usize),
    FloatBin(u8, usize, usize),
    FloatUn(u8, usize),
    Load(usize),
    Store(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i16>().prop_map(Op::ConstI),
        any::<i16>().prop_map(Op::ConstF),
        (0u8..6, any::<usize>(), any::<usize>()).prop_map(|(o, a, b)| Op::IntBin(o, a, b)),
        (0u8..4, any::<usize>(), any::<usize>()).prop_map(|(o, a, b)| Op::FloatBin(o, a, b)),
        (0u8..3, any::<usize>()).prop_map(|(o, a)| Op::FloatUn(o, a)),
        any::<usize>().prop_map(Op::Load),
        (any::<usize>(), any::<usize>()).prop_map(|(i, v)| Op::Store(i, v)),
    ]
}

/// Builds a valid straight-line program from a random op tape. Every operand
/// index is taken modulo the values of the right type defined so far, so any
/// tape yields a structurally valid program.
fn build_program(ops: &[Op], n_tiles: u32) -> Program {
    let mut b = ProgramBuilder::new("prop");
    let arr = b.array("M", Ty::I32, &[16]);
    b.set_array_init(arr, (0..16).map(|k| Imm::I(k * 3 - 7)).collect());
    let out_i = b.var_i32("out_i", 0);
    let out_f = b.var_f32("out_f", 0.0);

    let mut ints: Vec<ValueId> = vec![b.const_i32(5)];
    let mut floats: Vec<ValueId> = vec![b.const_f32(1.5)];

    for op in ops {
        match op {
            Op::ConstI(v) => ints.push(b.const_i32(*v as i32)),
            Op::ConstF(v) => floats.push(b.const_f32(*v as f32 / 64.0)),
            Op::IntBin(o, x, y) => {
                let l = ints[x % ints.len()];
                let r = ints[y % ints.len()];
                let op = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::And,
                    BinOp::Xor,
                    BinOp::Slt,
                ][*o as usize % 6];
                ints.push(b.bin(op, l, r));
            }
            Op::FloatBin(o, x, y) => {
                let l = floats[x % floats.len()];
                let r = floats[y % floats.len()];
                let op = [BinOp::AddF, BinOp::SubF, BinOp::MulF, BinOp::MulF][*o as usize % 4];
                floats.push(b.bin(op, l, r));
            }
            Op::FloatUn(o, x) => {
                let s = floats[x % floats.len()];
                let op = [UnOp::NegF, UnOp::AbsF, UnOp::Mov][*o as usize % 3];
                floats.push(b.un(op, s));
            }
            Op::Load(i) => {
                // In-bounds masked index with a compile-time-known residue so
                // the access is static.
                let k = (i % 16) as u32;
                let idx = b.const_i32(k as i32);
                ints.push(b.load(arr, idx, MemHome::Static(k % n_tiles)));
            }
            Op::Store(i, v) => {
                let k = (i % 16) as u32;
                let idx = b.const_i32(k as i32);
                let val = ints[v % ints.len()];
                b.store(arr, idx, val, MemHome::Static(k % n_tiles));
            }
        }
    }
    let vi = *ints.last().unwrap();
    let vf = *floats.last().unwrap();
    b.write_var(out_i, vi);
    b.write_var(out_f, vf);
    b.halt();
    b.finish().expect("generated program is valid")
}

proptest! {
    #![cases(24)]

    /// Random straight-line dataflow programs compile, simulate without
    /// deadlock, and match the interpreter bit-exactly on 1, 2, and 4 tiles.
    #[test]
    fn random_dag_programs_roundtrip(ops in vec(op_strategy(), 1..60)) {
        for n in [1u32, 2, 4] {
            let program = build_program(&ops, n);
            let golden = Interpreter::new(&program).run().unwrap();
            let config = MachineConfig::square(n);
            let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
            let (result, _) = compiled.run(&program).unwrap();
            prop_assert!(result.state_eq(&golden), "diverged at {} tiles", n);
        }
    }

    /// Random affine loop kernels: the unrolled/staticized program computes
    /// the same array contents as the rolled original, and the compiled code
    /// matches its interpreter.
    #[test]
    fn random_affine_loops_roundtrip(
        stride in 1i64..4,
        offset in 0i64..8,
        trip in 1i64..12,
        mulk in 1i64..5,
    ) {
        // for (i = 0; i < trip; i++) A[stride*i + offset] = mulk*i + A[...];
        let max_index = stride * (trip - 1) + offset;
        let len = (max_index + 1).max(1);
        let src = format!(
            "int i; int A[{len}];
             for (i = 0; i < {trip}; i = i + 1)
               A[{stride}*i + {offset}] = A[{stride}*i + {offset}] + {mulk}*i;"
        );
        let rolled = raw_repro::lang::compile_source_with(
            "rolled", &src, 1,
            raw_repro::lang::UnrollOptions { ilp_factor: 1, reassociate: false },
        ).unwrap();
        let golden = Interpreter::new(&rolled).run().unwrap();
        let a_ref = rolled.array_by_name("A").unwrap();

        for n in [2u32, 4] {
            let program = raw_repro::lang::compile_source("unrolled", &src, n).unwrap();
            let check = Interpreter::new(&program).run().unwrap();
            let a = program.array_by_name("A").unwrap();
            prop_assert_eq!(
                check.array_values(a),
                golden.array_values(a_ref),
                "unrolling changed semantics at {} tiles", n
            );
            let config = MachineConfig::square(n);
            let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
            let (result, _) = compiled.run(&program).unwrap();
            prop_assert!(result.state_eq(&check), "compiled diverged at {} tiles", n);
        }
    }

    /// Register pressure: the same program compiled under tight and abundant
    /// register budgets must agree (spilling preserves semantics end to end).
    #[test]
    fn register_budgets_agree(ops in vec(op_strategy(), 30..80)) {
        let program = build_program(&ops, 2);
        let golden = Interpreter::new(&program).run().unwrap();
        for gprs in [4u32, 8, 32, 1 << 12] {
            let mut config = MachineConfig::square(2);
            config.gprs = gprs;
            let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
            let (result, _) = compiled.run(&program).unwrap();
            prop_assert!(result.state_eq(&golden), "diverged with {} registers", gprs);
        }
    }
}

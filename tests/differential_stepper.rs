//! Differential validation of the activity-tracked and event-driven steppers.
//!
//! The tracked stepper skips sleeping components and commits only dirty
//! channels; the event-driven stepper goes further and visits only components
//! with a scheduled wake event (calendar queue, DESIGN.md §13). Both claim to
//! be *observationally identical* to the original step-everything path (kept
//! as `Machine::with_reference_stepper`). This suite runs every
//! `raw-benchmarks` workload — and a chaos sweep over stall rates, seeds, and
//! mesh shapes — through all three steppers and asserts bit-identical cycle
//! counts, statistics, and final memory, plus a truncation property: when
//! `run()` ends early (step limit) while components are still asleep, the
//! lazily-deferred stall debt must settle to exactly the reference statistics.

use raw_repro::cc::{compile, CompiledProgram, CompilerOptions};
use raw_repro::ir::Program;
use raw_repro::machine::chaos::ChaosConfig;
use raw_repro::machine::isa::TileId;
use raw_repro::machine::{Machine, MachineConfig, RunReport};
use std::sync::OnceLock;

/// Runs `machine` to completion and snapshots everything observable.
fn observe(mut machine: Machine, label: &str) -> (RunReport, Vec<Vec<u32>>) {
    let report = machine.run().unwrap_or_else(|e| panic!("{label}: {e}"));
    let n = machine.config().n_tiles();
    let mems = (0..n).map(|t| machine.memory(TileId(t)).to_vec()).collect();
    (report, mems)
}

/// Asserts all three steppers agree on cycles, stats, and memory.
fn assert_equivalent(
    compiled: &CompiledProgram,
    program: &Program,
    chaos: Option<ChaosConfig>,
    label: &str,
) {
    let with_chaos = |mut m: Machine| {
        if let Some(c) = chaos {
            m = m.with_chaos(c);
        }
        m
    };
    let tracked = with_chaos(compiled.instantiate(program));
    let reference = with_chaos(compiled.instantiate(program).with_reference_stepper());
    let event = with_chaos(compiled.instantiate(program).with_event_stepper());
    let (t_report, t_mems) = observe(tracked, label);
    let (r_report, r_mems) = observe(reference, label);
    let (e_report, e_mems) = observe(event, label);
    assert_eq!(t_report.cycles, r_report.cycles, "{label}: cycle count");
    assert_eq!(t_report.stats, r_report.stats, "{label}: stats");
    assert_eq!(t_mems, r_mems, "{label}: final memory");
    assert_eq!(
        e_report.cycles, t_report.cycles,
        "{label}: event cycle count"
    );
    assert_eq!(e_report.stats, t_report.stats, "{label}: event stats");
    assert_eq!(e_mems, t_mems, "{label}: event final memory");
}

#[test]
fn every_workload_matches_reference() {
    for bench in raw_repro::benchmarks::tiny_suite() {
        let program = bench.program(4).unwrap();
        let config = MachineConfig::square(4);
        let compiled = compile(&program, &config, &CompilerOptions::default())
            .unwrap_or_else(|e| panic!("{}: compile: {e}", bench.name));
        assert_equivalent(&compiled, &program, None, bench.name);
    }
}

#[test]
fn chaos_sweep_matches_reference() {
    // Same sweep shape as the Appendix-A static-ordering test: stall rates
    // {1, 5, 20, 50}% × seeds × two mesh shapes. Chaos draws one RNG value per
    // component per cycle in the reference; the tracked stepper must consume
    // the stream in exactly the same order even while components sleep (and
    // the event stepper must preserve it through its tracked fallback).
    let bench = raw_repro::benchmarks::jacobi(8, 1);
    let program = bench.program(4).unwrap();
    let mut seed_rng = raw_testkit::Rng::new(0x000A_110C_8A05);
    let seeds: Vec<u64> = (0..4).map(|_| seed_rng.next_u64()).collect();

    for (rows, cols) in [(2u32, 2), (1, 4)] {
        let config = MachineConfig::grid(rows, cols);
        let compiled = compile(&program, &config, &CompilerOptions::default())
            .unwrap_or_else(|e| panic!("{rows}x{cols}: compile: {e}"));
        assert_equivalent(&compiled, &program, None, &format!("{rows}x{cols} clean"));
        for &seed in &seeds {
            for stall_percent in [1u32, 5, 20, 50] {
                assert_equivalent(
                    &compiled,
                    &program,
                    Some(ChaosConfig {
                        seed,
                        stall_percent,
                    }),
                    &format!("{rows}x{cols} seed {seed:#x} {stall_percent}%"),
                );
            }
        }
    }
}

#[test]
fn near_deadlock_workload_survives_faulty_mask_and_chaos() {
    // Deadlock soundness under a faulty map: the scatter kernel's colliding
    // data-dependent read-modify-writes keep many requests and replies in
    // flight at once — the regime closest to exhausting wormhole buffering.
    // Compiled around a dead tile, every route detours through the BFS tree
    // over live tiles; the run must still terminate and stay bit-identical
    // between steppers under an aggressive chaos sweep.
    let bench = raw_repro::benchmarks::scatter(32, 4);
    let base = MachineConfig::grid(2, 4);
    let mask = base.mask_to_pow2(&[TileId::from_raw(3)]);
    let config = base.with_faulty(mask);
    let program = bench.program(config.n_live()).unwrap();
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    // Masked tiles carry no instructions, so the live partition does all work.
    for (t, code) in compiled.machine_program.tiles.iter().enumerate() {
        if config.is_faulty(TileId::from_raw(t as u32)) {
            assert!(code.proc.is_empty() && code.switch.is_empty(), "tile {t}");
        }
    }
    assert_equivalent(&compiled, &program, None, "scatter faulty clean");
    let mut seed_rng = raw_testkit::Rng::new(0x000A_110C_8A05);
    for _ in 0..3 {
        let seed = seed_rng.next_u64();
        for stall_percent in [5u32, 20, 50] {
            assert_equivalent(
                &compiled,
                &program,
                Some(ChaosConfig {
                    seed,
                    stall_percent,
                }),
                &format!("scatter faulty seed {seed:#x} {stall_percent}%"),
            );
        }
    }
}

#[test]
fn dynamic_network_workload_matches_reference() {
    // Data-dependent addressing exercises the dynamic network and the remote
    // memory handlers — the components the tracked stepper gates hardest.
    let src = "
        int i; int k;
        int D[16];
        int H[4];
        for (i = 0; i < 16; i = i + 1) {
            k = D[i] % 4;
            H[k] = H[k] + 1;
        }
    ";
    let mut program = raw_repro::lang::compile_source("hist", src, 4).unwrap();
    let d = program.array_by_name("D").unwrap();
    program.arrays[d.index()].init = (0..16).map(|k| raw_repro::ir::Imm::I(k * 3)).collect();
    let config = MachineConfig::square(4);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    assert_equivalent(&compiled, &program, None, "hist clean");
    for seed in [7u64, 13, 21] {
        assert_equivalent(
            &compiled,
            &program,
            Some(ChaosConfig {
                seed,
                stall_percent: 30,
            }),
            &format!("hist seed {seed}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Stall-debt settlement at early termination
// ---------------------------------------------------------------------------

/// Precompiled workloads plus each one's clean full-run cycle count, shared
/// across property cases (compilation dominates otherwise).
fn truncation_fixtures() -> &'static Vec<(String, CompiledProgram, Program, u64)> {
    static FIXTURES: OnceLock<Vec<(String, CompiledProgram, Program, u64)>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let config = MachineConfig::square(4);
        raw_repro::benchmarks::tiny_suite()
            .into_iter()
            .map(|bench| {
                let program = bench.program(4).unwrap();
                let compiled = compile(&program, &config, &CompilerOptions::default())
                    .unwrap_or_else(|e| panic!("{}: compile: {e}", bench.name));
                let report = compiled.instantiate(&program).run().unwrap();
                (bench.name.to_string(), compiled, program, report.cycles)
            })
            .collect()
    })
}

/// Runs one stepper with a truncating step limit; returns the termination
/// kind (Ok cycles / limit / deadlock-at-cycle), post-flush stats and memory.
fn observe_truncated(
    fixture: &(String, CompiledProgram, Program, u64),
    limit: u64,
    chaos: Option<ChaosConfig>,
    stepper: u8,
) -> (String, raw_repro::machine::stats::Stats, Vec<Vec<u32>>) {
    let (_, compiled, program, _) = fixture;
    let mut capped = compiled.clone();
    capped.config.step_limit = limit;
    let mut m = capped.instantiate(program);
    m = match stepper {
        0 => m,
        1 => m.with_reference_stepper(),
        _ => m.with_event_stepper(),
    };
    if let Some(c) = chaos {
        m = m.with_chaos(c);
    }
    let outcome = match m.run() {
        Ok(report) => format!("ok@{}", report.cycles),
        Err(e) => format!("err: {e}"),
    };
    let n = m.config().n_tiles();
    let mems = (0..n).map(|t| m.memory(TileId(t)).to_vec()).collect();
    (outcome, m.stats().clone(), mems)
}

raw_testkit::proptest! {
    #![cases(48)]
    #[test]
    fn stall_debt_settles_when_run_is_truncated(
        bench_idx in 0usize..16,
        limit_pct in 1u64..100,
        chaos_pick in 0u32..4,
        chaos_seed in 1u64..1_000_000,
    ) {
        // Truncating run() at an arbitrary cycle frequently lands while
        // processors sit in SleepReg/SleepPort and switches sleep with
        // unsettled stall debt. The flush on the error path must settle that
        // debt *exactly*: all three steppers — which sleep through entirely
        // different cycle subsets — must report identical statistics, and the
        // per-tile counters must conserve (no stall cycle lost or invented).
        let fixtures = truncation_fixtures();
        let fixture = &fixtures[bench_idx % fixtures.len()];
        let (name, _, _, full_cycles) = fixture;
        let limit = (full_cycles * limit_pct / 100).max(1);
        let chaos = match chaos_pick {
            0 => None,
            1 => Some(ChaosConfig { seed: chaos_seed, stall_percent: 5 }),
            2 => Some(ChaosConfig { seed: chaos_seed, stall_percent: 30 }),
            _ => Some(ChaosConfig { seed: chaos_seed, stall_percent: 50 }),
        };
        let label = format!("{name} limit={limit} chaos={chaos:?}");
        let tracked = observe_truncated(fixture, limit, chaos, 0);
        let reference = observe_truncated(fixture, limit, chaos, 1);
        let event = observe_truncated(fixture, limit, chaos, 2);
        raw_testkit::prop_assert_eq!(&tracked, &reference, "{label}: tracked vs reference");
        raw_testkit::prop_assert_eq!(&event, &tracked, "{label}: event vs tracked");
        // Conservation: a tile's processor does exactly one thing per cycle —
        // issue, stall, or sit halted/chaos-stalled — so issues + recorded
        // stalls can never exceed the cycles that elapsed.
        let (_, stats, _) = &tracked;
        for (t, tile) in stats.tiles.iter().enumerate() {
            let busy = tile.proc_insts
                + tile.stall_reg
                + tile.stall_port_in
                + tile.stall_port_out
                + tile.stall_dynamic;
            raw_testkit::prop_assert!(
                busy <= limit,
                "{label}: tile {t} accounts {busy} cycles > limit {limit}"
            );
        }
    }
}

//! Edge cases across the public API: degenerate machine shapes, tight
//! buffering, scheduler variants, and frontend corner cases.

use raw_repro::cc::{compile, CompilerOptions, PlacementAlgorithm, PriorityScheme};
use raw_repro::ir::builder::ProgramBuilder;
use raw_repro::ir::interp::Interpreter;
use raw_repro::ir::Imm;
use raw_repro::lang::compile_source;
use raw_repro::machine::chaos::ChaosConfig;
use raw_repro::machine::MachineConfig;

fn roundtrip(program: &raw_repro::ir::Program, config: MachineConfig) -> u64 {
    let compiled = compile(program, &config, &CompilerOptions::default()).unwrap();
    let (result, report) = compiled.run(program).unwrap();
    let golden = Interpreter::new(program).run().unwrap();
    assert!(result.state_eq(&golden), "{} diverged", program.name);
    report.cycles
}

#[test]
fn single_word_port_buffers_still_work() {
    // Capacity-1 static-network FIFOs: maximal backpressure must not deadlock
    // a scheduled program (the static ordering property holds for any
    // capacity ≥ 1).
    let bench = raw_repro::benchmarks::jacobi(8, 1);
    let program = bench.program(4).unwrap();
    let mut config = MachineConfig::square(4);
    config.port_capacity = 1;
    let cycles_tight = roundtrip(&program, config);
    let cycles_roomy = roundtrip(&program, MachineConfig::square(4));
    assert!(
        cycles_tight >= cycles_roomy,
        "less buffering cannot be faster: {cycles_tight} vs {cycles_roomy}"
    );
}

#[test]
fn tight_buffers_under_chaos_are_still_deterministic() {
    let bench = raw_repro::benchmarks::mxm(4, 8, 2);
    let program = bench.program(4).unwrap();
    let mut config = MachineConfig::square(4);
    config.port_capacity = 1;
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    let golden = Interpreter::new(&program).run().unwrap();
    for seed in [1u64, 2, 3] {
        let mut machine = compiled.instantiate(&program).with_chaos(ChaosConfig {
            seed,
            stall_percent: 40,
        });
        machine.run().unwrap();
        let result = compiled.extract_result(&program, &machine);
        assert!(result.state_eq(&golden), "seed {seed}");
    }
}

#[test]
fn one_by_n_strip_meshes() {
    // Extreme aspect ratio: an 8-tile strip has diameter 7.
    let bench = raw_repro::benchmarks::cholesky(1, 6);
    let program = bench.program(8).unwrap();
    roundtrip(&program, MachineConfig::grid(1, 8));
    roundtrip(&program, MachineConfig::grid(8, 1));
}

#[test]
fn empty_program_compiles_and_halts() {
    let mut b = ProgramBuilder::new("empty");
    b.halt();
    let program = b.finish().unwrap();
    let cycles = roundtrip(&program, MachineConfig::square(4));
    assert!(
        cycles < 10,
        "an empty program should halt almost immediately"
    );
}

#[test]
fn zero_trip_loops_and_empty_branches() {
    let src = "
        int i; int x = 5;
        for (i = 9; i < 3; i = i + 1) { x = 0; }
        if (x > 100) { x = 1; } else { }
        while (x < 0) { x = x - 1; }
    ";
    let program = compile_source("degenerate", src, 2).unwrap();
    let compiled = compile(
        &program,
        &MachineConfig::square(2),
        &CompilerOptions::default(),
    )
    .unwrap();
    let (result, _) = compiled.run(&program).unwrap();
    let x = program.var_by_name("x").unwrap();
    assert_eq!(result.var_value(x), Imm::I(5));
    // The induction variable keeps C semantics: i = init when the body never runs.
    let i = program.var_by_name("i").unwrap();
    assert_eq!(result.var_value(i), Imm::I(9));
}

#[test]
fn all_priority_schemes_agree_on_results() {
    let bench = raw_repro::benchmarks::tomcatv(8, 1);
    let program = bench.program(4).unwrap();
    let golden = Interpreter::new(&program).run().unwrap();
    for priority in [
        PriorityScheme::LevelFertility,
        PriorityScheme::LevelOnly,
        PriorityScheme::SourceOrder,
    ] {
        let options = CompilerOptions {
            priority,
            ..Default::default()
        };
        let compiled = compile(&program, &MachineConfig::square(4), &options).unwrap();
        let (result, _) = compiled.run(&program).unwrap();
        assert!(result.state_eq(&golden), "{priority:?} diverged");
    }
}

#[test]
fn annealing_placement_end_to_end() {
    let bench = raw_repro::benchmarks::fpppp_kernel(raw_repro::benchmarks::FppppShape {
        inputs: 10,
        intermediates: 24,
        outputs: 6,
        seed: 17,
    });
    let program = bench.program(8).unwrap();
    let golden = Interpreter::new(&program).run().unwrap();
    let options = CompilerOptions {
        placement: PlacementAlgorithm::Annealing { seed: 1234 },
        ..Default::default()
    };
    let compiled = compile(&program, &MachineConfig::square(8), &options).unwrap();
    let (result, _) = compiled.run(&program).unwrap();
    assert!(result.state_eq(&golden));
}

#[test]
fn deep_branch_nesting_broadcasts_correctly() {
    // Chained conditionals so every block's branch condition originates on a
    // potentially different tile.
    let src = "
        int a = 3; int b = 7; int c = 0;
        if (a < b) {
            if (a + a < b) {
                if (b - a == 4) { c = 1; } else { c = 2; }
            } else { c = 3; }
        } else { c = 4; }
    ";
    let program = compile_source("nest", src, 8).unwrap();
    let compiled = compile(
        &program,
        &MachineConfig::square(8),
        &CompilerOptions::default(),
    )
    .unwrap();
    let (result, _) = compiled.run(&program).unwrap();
    let c = program.var_by_name("c").unwrap();
    assert_eq!(result.var_value(c), Imm::I(1));
}

#[test]
fn frontend_rejects_malformed_kernels_gracefully() {
    for (src, what) in [
        ("int x; x = ;", "empty expression"),
        ("float y; y = 1.5 %% 2.0;", "bad operator"),
        ("int A[0]; A[0] = 1;", "zero-size array"),
        (
            "int i; for (i = 0; i > 3; i = i + 1) i = 0;",
            "loop assigns induction var? no: wrong cond op is fine; body assigns i",
        ),
        ("int x x = 1;", "missing semicolon"),
    ] {
        let result = compile_source("bad", src, 2);
        // The fourth case is actually legal-ish; accept either outcome there.
        if what.starts_with("loop assigns") {
            continue;
        }
        assert!(result.is_err(), "{what} should be rejected: {src}");
        let err = result.unwrap_err();
        assert!(err.span.line >= 1, "error must carry a position");
    }
}

#[test]
fn interpreter_and_machine_agree_on_integer_edge_values() {
    let mut b = ProgramBuilder::new("edges");
    let out = b.var_i32("out", 0);
    let min = b.const_i32(i32::MIN);
    let neg1 = b.const_i32(-1);
    // i32::MIN / -1 overflows in hardware; both models must agree on a value.
    let q = b.div(min, neg1);
    let r = b.bin(raw_repro::ir::BinOp::Rem, min, neg1);
    let s = b.add(q, r);
    b.write_var(out, s);
    b.halt();
    let program = b.finish().unwrap();
    roundtrip(&program, MachineConfig::square(2));
}

#[test]
fn large_immediates_and_negative_indices_are_handled() {
    let mut b = ProgramBuilder::new("imm");
    let out = b.var_i32("out", 0);
    let big = b.const_i32(i32::MAX);
    let one = b.const_i32(1);
    let wrapped = b.add(big, one); // wraps to i32::MIN
    b.write_var(out, wrapped);
    b.halt();
    let program = b.finish().unwrap();
    let compiled = compile(
        &program,
        &MachineConfig::square(1),
        &CompilerOptions::default(),
    )
    .unwrap();
    let (result, _) = compiled.run(&program).unwrap();
    assert_eq!(
        result.var_value(program.var_by_name("out").unwrap()),
        Imm::I(i32::MIN)
    );
}

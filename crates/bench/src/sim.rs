//! `raw-bench sim` — event-driven stepper scaling and differential smoke.
//!
//! The event-driven core (DESIGN.md §13) claims per-cycle cost proportional
//! to *scheduled events* rather than *tiles*. This subcommand makes that
//! claim measurable and falsifiable on big meshes:
//!
//! * a suite of **sparse hand-written workloads** — a handful of active tiles
//!   on an otherwise idle mesh, the regime where a 32×32 machine spends most
//!   of its tiles dead or asleep — built directly from assembly so mesh size
//!   is decoupled from compiler scaling;
//! * `--selfcheck` runs every workload through all three steppers (tracked,
//!   reference, event) and fails unless cycle counts, the full statistics
//!   block, and final memories are bit-identical, clean and under a chaos
//!   sweep;
//! * a compiled benchmark (`jacobi`) joins the differential at sizes the
//!   compiler targets (≤ 64 tiles), so the smoke also covers compiler-shaped
//!   code and honours `RAWCC_THREADS`;
//! * without `--selfcheck` the subcommand just times tracked vs event
//!   stepping and prints one greppable speedup line per workload (the
//!   statistically careful version lives in `benches/sim_scale.rs`).

use crate::args::{require_power_of_two, FlagParser};
use raw_ir::Imm;
use raw_machine::asm::{ProcAsm, SwitchAsm};
use raw_machine::chaos::ChaosConfig;
use raw_machine::isa::{Dir, Dst, MachineProgram, PInst, SDst, SInst, SSrc, Src, TileCode};
use raw_machine::{Machine, MachineConfig, TileId};
use std::fmt::Write as _;
use std::time::Instant;

/// Arguments of the `sim` subcommand.
#[derive(Debug)]
pub struct SimArgs {
    /// Machine size in tiles (power of two).
    pub tiles: u32,
    /// Restrict to one workload by name.
    pub bench: Option<String>,
    /// Smaller iteration counts and chaos sweep (CI-friendly).
    pub quick: bool,
    /// Differentially validate all three steppers instead of timing.
    pub selfcheck: bool,
}

impl SimArgs {
    /// Parses the argument list following the `sim` subcommand word.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or missing values.
    pub fn parse(args: &[String]) -> Result<SimArgs, String> {
        let mut out = SimArgs {
            tiles: 64,
            bench: None,
            quick: false,
            selfcheck: false,
        };
        let mut p = FlagParser::new("sim", args);
        while let Some(flag) = p.next_flag() {
            match flag {
                "--tiles" => out.tiles = p.value_parsed("an integer")?,
                "--bench" => out.bench = Some(p.value()?.clone()),
                "--quick" => out.quick = true,
                "--selfcheck" => out.selfcheck = true,
                _ => return Err(p.unknown()),
            }
        }
        require_power_of_two(out.tiles)?;
        if out.tiles < 2 {
            return Err("sim needs at least 2 tiles".to_string());
        }
        Ok(out)
    }
}

/// A hand-written workload that keeps a few tiles busy on an arbitrarily
/// large mesh. `init` words are poked before the run; `check` is the
/// (tile, address, expected word) the run must produce.
pub struct SparseWorkload {
    /// Workload name (`spin`, `pingpong`, `remote`).
    pub name: &'static str,
    /// Tiles that carry real code (the rest halt at cycle 0).
    pub active_tiles: usize,
    /// The assembled program, sized to the config's mesh.
    pub program: MachineProgram,
    /// Memory words to poke before the run.
    pub init: Vec<(TileId, u32, u32)>,
    /// Functional check: (tile, address, expected value).
    pub check: (TileId, u32, u32),
}

/// Pads `tiles` with halt-only code up to the mesh size.
fn pad(mut tiles: Vec<TileCode>, n: u32) -> MachineProgram {
    while tiles.len() < n as usize {
        tiles.push(TileCode {
            proc: vec![PInst::Halt],
            switch: vec![SInst::Halt],
        });
    }
    MachineProgram { tiles }
}

/// One active tile spinning through a countdown loop: the pure
/// events-vs-tiles regime (no network traffic at all).
fn spin(config: &MachineConfig, iters: i32) -> SparseWorkload {
    let mut p = ProcAsm::new();
    p.li(Dst::Reg(1), Imm::I(iters));
    let top = p.new_label();
    p.bind(top);
    p.addi(Dst::Reg(1), Src::Reg(1), -1);
    p.bnez(Src::Reg(1), top);
    p.store_imm_addr(Src::Imm(Imm::I(iters)), 0);
    p.halt();
    let tiles = vec![TileCode {
        proc: p.finish(),
        switch: vec![SInst::Halt],
    }];
    SparseWorkload {
        name: "spin",
        active_tiles: 1,
        program: pad(tiles, config.n_tiles()),
        init: vec![],
        check: (TileId::from_raw(0), 0, iters as u32),
    }
}

/// Two neighbouring tiles bouncing a word over the static network: every
/// round trip sleeps and wakes both processors and both switches, so the
/// event core's port-wake path dominates.
fn pingpong(config: &MachineConfig, iters: i32) -> SparseWorkload {
    // Tile 0: send the counter, receive it incremented, repeat.
    let mut p0 = ProcAsm::new();
    p0.li(Dst::Reg(1), Imm::I(iters));
    p0.li(Dst::Reg(2), Imm::I(0));
    let top0 = p0.new_label();
    p0.bind(top0);
    p0.send(Src::Reg(2));
    p0.recv(Dst::Reg(2));
    p0.addi(Dst::Reg(1), Src::Reg(1), -1);
    p0.bnez(Src::Reg(1), top0);
    p0.store_imm_addr(Src::Reg(2), 0);
    p0.halt();
    // Tile 1: receive, increment, return.
    let mut p1 = ProcAsm::new();
    p1.li(Dst::Reg(1), Imm::I(iters));
    let top1 = p1.new_label();
    p1.bind(top1);
    p1.recv(Dst::Reg(2));
    p1.addi(Dst::PortOut, Src::Reg(2), 1);
    p1.addi(Dst::Reg(1), Src::Reg(1), -1);
    p1.bnez(Src::Reg(1), top1);
    p1.halt();
    // Switches: unrolled route pairs (switch code is cheap; unrolling keeps
    // the workload self-contained without switch-register loop counters).
    let mut s0 = SwitchAsm::new();
    let mut s1 = SwitchAsm::new();
    for _ in 0..iters {
        s0.route(&[(SSrc::Proc, SDst::Dir(Dir::East))]);
        s0.route(&[(SSrc::Dir(Dir::East), SDst::Proc)]);
        s1.route(&[(SSrc::Dir(Dir::West), SDst::Proc)]);
        s1.route(&[(SSrc::Proc, SDst::Dir(Dir::West))]);
    }
    s0.halt();
    s1.halt();
    let tiles = vec![
        TileCode {
            proc: p0.finish(),
            switch: s0.finish(),
        },
        TileCode {
            proc: p1.finish(),
            switch: s1.finish(),
        },
    ];
    SparseWorkload {
        name: "pingpong",
        active_tiles: 2,
        program: pad(tiles, config.n_tiles()),
        init: vec![],
        check: (TileId::from_raw(0), 0, iters as u32),
    }
}

/// Corner-to-corner remote loads over the dynamic network: tile 0 reads a
/// word homed on the far corner in a dependent loop, exercising wormhole
/// routing, the remote-memory handler, and the event core's dynamic-network
/// drain phase at full mesh diameter.
fn remote(config: &MachineConfig, iters: i32) -> SparseWorkload {
    let far = TileId::from_raw(config.n_tiles() - 1);
    let gaddr = config.make_gaddr(far, 7);
    let mut p = ProcAsm::new();
    p.li(Dst::Reg(1), Imm::I(iters));
    p.li(Dst::Reg(3), Imm::I(0));
    let top = p.new_label();
    p.bind(top);
    p.dload(Dst::Reg(2), Src::Imm(Imm::I(gaddr as i32)));
    p.bin(raw_ir::BinOp::Add, Dst::Reg(3), Src::Reg(3), Src::Reg(2));
    p.addi(Dst::Reg(1), Src::Reg(1), -1);
    p.bnez(Src::Reg(1), top);
    p.store_imm_addr(Src::Reg(3), 0);
    p.halt();
    let tiles = vec![TileCode {
        proc: p.finish(),
        switch: vec![SInst::Halt],
    }];
    SparseWorkload {
        name: "remote",
        active_tiles: 1,
        program: pad(tiles, config.n_tiles()),
        init: vec![(far, 7, 77)],
        check: (TileId::from_raw(0), 0, 77 * iters as u32),
    }
}

/// The sparse suite for one mesh. `quick` shrinks iteration counts so a CI
/// smoke over three steppers and a chaos sweep stays fast.
#[must_use]
pub fn sparse_suite(config: &MachineConfig, quick: bool) -> Vec<SparseWorkload> {
    let scale = if quick { 8 } else { 1 };
    vec![
        spin(config, 8192 / scale),
        pingpong(config, 512 / scale),
        remote(config, 64 / scale.min(4)),
    ]
}

/// Instantiates one stepper over a sparse workload.
/// 0 = tracked, 1 = reference, 2 = event.
fn machine(
    config: &MachineConfig,
    w: &SparseWorkload,
    stepper: u8,
    chaos: Option<ChaosConfig>,
) -> Machine {
    let mut m = Machine::new(config.clone(), &w.program);
    m = match stepper {
        0 => m,
        1 => m.with_reference_stepper(),
        _ => m.with_event_stepper(),
    };
    if let Some(c) = chaos {
        m = m.with_chaos(c);
    }
    for &(tile, addr, value) in &w.init {
        m.set_mem_word(tile, addr, value);
    }
    m
}

/// Runs to completion, verifying the workload's functional check.
fn observe(mut m: Machine, w: &SparseWorkload, label: &str) -> Result<RunSnapshot, String> {
    let report = m.run().map_err(|e| format!("{label}: {e}"))?;
    let (tile, addr, expected) = w.check;
    let got = m.mem_word(tile, addr);
    if got != expected {
        return Err(format!(
            "{label}: tile {} mem[{addr}] = {got}, expected {expected}",
            tile.0
        ));
    }
    let n = m.config().n_tiles();
    Ok(RunSnapshot {
        cycles: report.cycles,
        stats: format!("{:?}", report.stats),
        mems: (0..n).map(|t| m.memory(TileId(t)).to_vec()).collect(),
    })
}

/// Everything the differential compares.
struct RunSnapshot {
    cycles: u64,
    stats: String,
    mems: Vec<Vec<u32>>,
}

/// Asserts all three steppers agree on one (workload, chaos) point.
fn check_three_way(
    config: &MachineConfig,
    w: &SparseWorkload,
    chaos: Option<ChaosConfig>,
    label: &str,
) -> Result<u64, String> {
    let tracked = observe(machine(config, w, 0, chaos), w, label)?;
    let reference = observe(machine(config, w, 1, chaos), w, label)?;
    let event = observe(machine(config, w, 2, chaos), w, label)?;
    for (name, other) in [("reference", &reference), ("event", &event)] {
        if other.cycles != tracked.cycles {
            return Err(format!(
                "{label}: {name} stepper disagrees on cycles ({} vs {})",
                other.cycles, tracked.cycles
            ));
        }
        if other.stats != tracked.stats {
            return Err(format!("{label}: {name} stepper disagrees on statistics"));
        }
        if other.mems != tracked.mems {
            return Err(format!("{label}: {name} stepper disagrees on final memory"));
        }
    }
    Ok(tracked.cycles)
}

/// The chaos sweep for the smoke: fixed testkit stream, so every run
/// exercises identical chaos points.
fn chaos_points(quick: bool) -> Vec<ChaosConfig> {
    let mut rng = raw_testkit::Rng::new(0x513C_41E0);
    let seeds: Vec<u64> = (0..if quick { 1 } else { 2 })
        .map(|_| rng.next_u64())
        .collect();
    let rates: &[u32] = if quick { &[20] } else { &[5, 30] };
    let mut points = Vec::new();
    for &seed in &seeds {
        for &stall_percent in rates {
            points.push(ChaosConfig {
                seed,
                stall_percent,
            });
        }
    }
    points
}

/// Differential check of a *compiled* benchmark (jacobi) at this mesh size:
/// covers compiler-shaped code (real schedules, multi-tile control flow) and
/// makes the smoke sensitive to `RAWCC_THREADS`.
fn check_compiled(config: &MachineConfig, quick: bool, out: &mut String) -> Result<(), String> {
    use rawcc::{compile, CompilerOptions};
    let bench = raw_benchmarks::jacobi(if quick { 8 } else { 16 }, 1);
    let program = bench
        .program(config.n_live())
        .map_err(|e| format!("jacobi: source compile failed: {e}"))?;
    let compiled = compile(&program, config, &CompilerOptions::default())
        .map_err(|e| format!("jacobi: compile failed: {e}"))?;
    let run = |stepper: u8, chaos: Option<ChaosConfig>| -> Result<RunSnapshot, String> {
        let mut m = compiled.instantiate(&program);
        m = match stepper {
            0 => m,
            1 => m.with_reference_stepper(),
            _ => m.with_event_stepper(),
        };
        if let Some(c) = chaos {
            m = m.with_chaos(c);
        }
        let report = m.run().map_err(|e| format!("jacobi: {e}"))?;
        let n = m.config().n_tiles();
        Ok(RunSnapshot {
            cycles: report.cycles,
            stats: format!("{:?}", report.stats),
            mems: (0..n).map(|t| m.memory(TileId(t)).to_vec()).collect(),
        })
    };
    let mut points: Vec<Option<ChaosConfig>> = vec![None];
    points.extend(chaos_points(quick).into_iter().map(Some));
    for chaos in points {
        let label = match chaos {
            None => "jacobi clean".to_string(),
            Some(c) => format!("jacobi chaos seed={:#x} stall={}%", c.seed, c.stall_percent),
        };
        let tracked = run(0, chaos)?;
        let reference = run(1, chaos)?;
        let event = run(2, chaos)?;
        for (name, other) in [("reference", &reference), ("event", &event)] {
            if (other.cycles, &other.stats, &other.mems)
                != (tracked.cycles, &tracked.stats, &tracked.mems)
            {
                return Err(format!("{label}: {name} stepper diverges"));
            }
        }
        let _ = writeln!(
            out,
            "sim jacobi tiles={} cycles={} {label}: ok",
            config.n_tiles(),
            tracked.cycles
        );
    }
    Ok(())
}

/// Times one full run (construction and memory inspection excluded) and
/// returns (cycles, seconds).
fn time_run(config: &MachineConfig, w: &SparseWorkload, stepper: u8) -> Result<(u64, f64), String> {
    let mut m = machine(config, w, stepper, None);
    let label = format!("{} timing", w.name);
    let start = Instant::now();
    let report = m.run().map_err(|e| format!("{label}: {e}"))?;
    let secs = start.elapsed().as_secs_f64();
    let (tile, addr, expected) = w.check;
    let got = m.mem_word(tile, addr);
    if got != expected {
        return Err(format!(
            "{label}: tile {} mem[{addr}] = {got}, expected {expected}",
            tile.0
        ));
    }
    Ok((report.cycles, secs))
}

/// Runs the `sim` subcommand and renders its report.
///
/// # Errors
///
/// Returns an error if a workload fails functionally, a stepper diverges, or
/// an unknown `--bench` name is given.
pub fn sim_command(args: &SimArgs) -> Result<String, String> {
    let config = MachineConfig::square(args.tiles);
    let suite = sparse_suite(&config, args.quick);
    let selected: Vec<&SparseWorkload> = suite
        .iter()
        .filter(|w| args.bench.as_deref().is_none_or(|b| b == w.name))
        .collect();
    let wants_jacobi = args.bench.as_deref().is_none_or(|b| b == "jacobi");
    if selected.is_empty() && !wants_jacobi {
        let names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        return Err(format!(
            "unknown sim workload '{}' (expected one of {}, jacobi)",
            args.bench.as_deref().unwrap_or(""),
            names.join(", ")
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sim mesh {}x{} ({} tiles), {} mode",
        config.rows,
        config.cols,
        config.n_tiles(),
        if args.selfcheck {
            "selfcheck"
        } else {
            "timing"
        }
    );
    for w in &selected {
        if args.selfcheck {
            let cycles = check_three_way(&config, w, None, &format!("{} clean", w.name))?;
            let _ = writeln!(
                out,
                "sim {} tiles={} active={} cycles={cycles} clean: ok",
                w.name,
                config.n_tiles(),
                w.active_tiles
            );
            for chaos in chaos_points(args.quick) {
                let label = format!(
                    "{} chaos seed={:#x} stall={}%",
                    w.name, chaos.seed, chaos.stall_percent
                );
                let cycles = check_three_way(&config, w, Some(chaos), &label)?;
                let _ = writeln!(
                    out,
                    "sim {} tiles={} cycles={cycles} {label}: ok",
                    w.name,
                    config.n_tiles()
                );
            }
        } else {
            let (t_cycles, t_secs) = time_run(&config, w, 0)?;
            let (e_cycles, e_secs) = time_run(&config, w, 2)?;
            if e_cycles != t_cycles {
                return Err(format!(
                    "{}: event stepper disagrees on cycles ({e_cycles} vs {t_cycles})",
                    w.name
                ));
            }
            let _ = writeln!(
                out,
                "sim {} tiles={} active={} cycles={} tracked_ms={:.2} event_ms={:.2} speedup={:.1}x",
                w.name,
                config.n_tiles(),
                w.active_tiles,
                t_cycles,
                t_secs * 1e3,
                e_secs * 1e3,
                t_secs / e_secs.max(1e-9)
            );
        }
    }
    // Compiler-shaped code joins the differential at sizes rawcc targets.
    if args.selfcheck && wants_jacobi && config.n_tiles() <= 64 {
        check_compiled(&config, args.quick, &mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let d = SimArgs::parse(&[]).unwrap();
        assert_eq!((d.tiles, d.quick, d.selfcheck), (64, false, false));
        let p = SimArgs::parse(&s(&[
            "--tiles",
            "256",
            "--bench",
            "spin",
            "--quick",
            "--selfcheck",
        ]))
        .unwrap();
        assert_eq!(p.tiles, 256);
        assert_eq!(p.bench.as_deref(), Some("spin"));
        assert!(p.quick && p.selfcheck);
        assert!(SimArgs::parse(&s(&["--tiles", "3"]))
            .unwrap_err()
            .contains("power of two"));
        assert!(SimArgs::parse(&s(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown sim flag"));
    }

    #[test]
    fn sparse_workloads_pass_their_own_checks() {
        let config = MachineConfig::square(16);
        for w in sparse_suite(&config, true) {
            let label = format!("{} smoke", w.name);
            observe(machine(&config, &w, 0, None), &w, &label).unwrap();
        }
    }

    #[test]
    fn selfcheck_smoke_on_a_small_mesh() {
        let args = SimArgs::parse(&s(&["--tiles", "16", "--quick", "--selfcheck"])).unwrap();
        let text = sim_command(&args).unwrap();
        assert!(text.contains("sim spin tiles=16"), "{text}");
        assert!(text.contains("clean: ok"), "{text}");
        assert!(text.contains("sim jacobi tiles=16"), "{text}");
    }

    #[test]
    fn timing_mode_reports_speedup_lines() {
        let args = SimArgs::parse(&s(&["--tiles", "64", "--quick", "--bench", "spin"])).unwrap();
        let text = sim_command(&args).unwrap();
        assert!(text.contains("speedup="), "{text}");
    }
}

//! `raw-bench compile` — compile-time measurement for the parallel pipeline
//! and the content-addressed block cache.
//!
//! Per-workload output is one greppable line:
//!
//! ```text
//! mxm tiles=16 threads=8 blocks=12 wall_ms=41.3 cache_hits=0 cache_misses=12 cache_evictions=0 asm_hash=0x91b2...
//! ```
//!
//! `--table` instead sweeps threads ∈ {1, 4, 8} cold plus an 8-thread warm
//! re-compile and prints the speedup table recorded in `EXPERIMENTS.md`.

use crate::args::{require_power_of_two, FlagParser};
use raw_benchmarks::Benchmark;
use raw_testkit::hash64;
use rawcc::{compile_with_cache, BlockCache, CompiledProgram, CompilerOptions, PlacementAlgorithm};

/// Arguments of the `compile` subcommand.
pub struct CompileArgs {
    /// Machine size in tiles (power of two).
    pub tiles: u32,
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Use the scaled-down suite.
    pub quick: bool,
    /// Restrict to one benchmark.
    pub bench: Option<String>,
    /// Annealing placement with this seed (heavier, placement-dominated
    /// compiles — the regime the cache and the worker pool are for).
    pub anneal: Option<u64>,
    /// Disk cache directory (cold in-memory cache when absent).
    pub cache_dir: Option<String>,
    /// Print the threads × cache-temperature sweep table.
    pub table: bool,
    /// Recompile each workload single-threaded on a cold cache and fail on
    /// any asm-hash drift (determinism self-check).
    pub selfcheck: bool,
}

impl CompileArgs {
    /// Parses the argument list following the `compile` subcommand word.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or missing values.
    pub fn parse(args: &[String]) -> Result<CompileArgs, String> {
        let mut out = CompileArgs {
            tiles: 16,
            threads: 0,
            quick: false,
            bench: None,
            anneal: None,
            cache_dir: None,
            table: false,
            selfcheck: false,
        };
        // Context left empty: `compile` predates subcommand contexts and its
        // callers match on the short "unknown flag" wording.
        let mut p = FlagParser::new("", args);
        while let Some(flag) = p.next_flag() {
            match flag {
                "--tiles" => out.tiles = p.value_parsed("an integer")?,
                "--threads" => out.threads = p.value_parsed("an integer")?,
                "--bench" => out.bench = Some(p.value()?.clone()),
                "--anneal" => out.anneal = Some(p.value_parsed("an integer seed")?),
                "--cache-dir" => out.cache_dir = Some(p.value()?.clone()),
                "--quick" => out.quick = true,
                "--table" => out.table = true,
                "--selfcheck" => out.selfcheck = true,
                _ => return Err(p.unknown()),
            }
        }
        require_power_of_two(out.tiles)?;
        Ok(out)
    }

    fn options(&self, threads: usize) -> CompilerOptions {
        let mut options = CompilerOptions {
            threads,
            ..CompilerOptions::default()
        };
        if let Some(seed) = self.anneal {
            options.placement = PlacementAlgorithm::Annealing { seed };
        }
        options
    }

    fn suite(&self) -> Result<Vec<Benchmark>, String> {
        let mut suite = if self.quick {
            raw_benchmarks::tiny_suite()
        } else {
            raw_benchmarks::suite()
        };
        if let Some(name) = &self.bench {
            suite.retain(|b| b.name == name);
            if suite.is_empty() {
                // Fall back to the scenario kernels so they can be measured too.
                suite.extend(
                    raw_benchmarks::scenario_suite()
                        .into_iter()
                        .filter(|b| b.name == name),
                );
            }
            if suite.is_empty() {
                return Err(format!("unknown benchmark '{name}'"));
            }
        }
        Ok(suite)
    }
}

/// FNV over the full per-tile instruction streams: equal hash ⇔ equal asm for
/// all practical purposes, and a one-token summary for scripts to diff.
fn asm_hash(compiled: &CompiledProgram) -> u64 {
    hash64(format!("{:?}", compiled.machine_program).as_bytes())
}

fn stat_line(name: &str, tiles: u32, compiled: &CompiledProgram) -> String {
    let r = &compiled.report;
    format!(
        "{name} tiles={tiles} threads={} blocks={} wall_ms={:.1} cache_hits={} \
         cache_misses={} cache_evictions={} cache_evicted_bytes={} asm_hash={:#018x}",
        r.threads,
        r.blocks.len(),
        r.wall.as_secs_f64() * 1e3,
        r.cache.hits,
        r.cache.misses,
        r.cache.evictions,
        r.cache.evicted_bytes,
        asm_hash(compiled),
    )
}

/// Runs the `compile` subcommand and returns its stdout text.
///
/// # Errors
///
/// Returns a message on unknown benchmarks, unusable cache directories, or
/// compile failures.
pub fn compile_command(args: &CompileArgs) -> Result<String, String> {
    let suite = args.suite()?;
    let config = raw_machine::MachineConfig::square(args.tiles);
    let mut out = String::new();
    if args.table {
        return table_command(args, &suite, &config);
    }
    let cache = match &args.cache_dir {
        Some(dir) => {
            BlockCache::with_disk(dir).map_err(|e| format!("cache dir '{dir}' unusable: {e}"))?
        }
        None => BlockCache::in_memory(),
    };
    for bench in &suite {
        let program = bench
            .program(args.tiles)
            .map_err(|e| format!("{}: {e}", bench.name))?;
        let compiled = compile_with_cache(&program, &config, &args.options(args.threads), &cache)
            .map_err(|e| format!("{}: {e}", bench.name))?;
        if args.selfcheck {
            // Determinism oracle: a single-threaded cold-cache compile must
            // produce byte-identical code, whatever the measured run's thread
            // count or cache temperature.
            let reference = compile_with_cache(
                &program,
                &config,
                &args.options(1),
                &BlockCache::in_memory(),
            )
            .map_err(|e| format!("{}: selfcheck compile: {e}", bench.name))?;
            if asm_hash(&compiled) != asm_hash(&reference) {
                return Err(format!(
                    "{}: selfcheck failed: asm hash {:#018x} differs from \
                     single-threaded cold-cache reference {:#018x}",
                    bench.name,
                    asm_hash(&compiled),
                    asm_hash(&reference)
                ));
            }
        }
        out.push_str(&stat_line(bench.name, args.tiles, &compiled));
        out.push('\n');
    }
    if args.selfcheck {
        out.push_str("selfcheck: all asm hashes match the single-threaded cold-cache reference\n");
    }
    Ok(out)
}

/// The threads × cache-temperature sweep behind the EXPERIMENTS.md table.
fn table_command(
    args: &CompileArgs,
    suite: &[Benchmark],
    config: &raw_machine::MachineConfig,
) -> Result<String, String> {
    let mut out = String::new();
    out.push_str(&format!(
        "compile-time sweep: {} tiles, placement={}\n",
        args.tiles,
        if args.anneal.is_some() {
            "annealing"
        } else {
            "greedy-swap"
        },
    ));
    out.push_str(
        "benchmark        blocks   serial_ms    t4_ms    t8_ms  warm8_ms   t8_speedup  warm_hit%\n",
    );
    let mut tot = [0.0f64; 4];
    for bench in suite {
        let program = bench
            .program(args.tiles)
            .map_err(|e| format!("{}: {e}", bench.name))?;
        let mut wall = [0.0f64; 3];
        let mut blocks = 0;
        for (slot, threads) in [1usize, 4, 8].into_iter().enumerate() {
            // Fresh cold cache per run: measures compilation, not caching.
            let compiled = compile_with_cache(
                &program,
                config,
                &args.options(threads),
                &BlockCache::in_memory(),
            )
            .map_err(|e| format!("{}: {e}", bench.name))?;
            wall[slot] = compiled.report.wall.as_secs_f64() * 1e3;
            blocks = compiled.report.blocks.len();
        }
        let shared = BlockCache::in_memory();
        let options = args.options(8);
        compile_with_cache(&program, config, &options, &shared)
            .map_err(|e| format!("{}: {e}", bench.name))?;
        let warm = compile_with_cache(&program, config, &options, &shared)
            .map_err(|e| format!("{}: {e}", bench.name))?;
        let warm_ms = warm.report.wall.as_secs_f64() * 1e3;
        let hits = warm.report.cache.hits as f64;
        let lookups = hits + warm.report.cache.misses as f64;
        out.push_str(&format!(
            "{:<16} {:>6} {:>11.1} {:>8.1} {:>8.1} {:>9.2} {:>11.2}x {:>9.0}\n",
            bench.name,
            blocks,
            wall[0],
            wall[1],
            wall[2],
            warm_ms,
            wall[0] / wall[2].max(1e-9),
            100.0 * hits / lookups.max(1.0),
        ));
        tot[0] += wall[0];
        tot[1] += wall[1];
        tot[2] += wall[2];
        tot[3] += warm_ms;
    }
    out.push_str(&format!(
        "{:<16} {:>6} {:>11.1} {:>8.1} {:>8.1} {:>9.2} {:>11.2}x\n",
        "total",
        "",
        tot[0],
        tot[1],
        tot[2],
        tot[3],
        tot[0] / tot[2].max(1e-9),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let d = CompileArgs::parse(&[]).unwrap();
        assert_eq!(
            (d.tiles, d.threads, d.quick, d.table),
            (16, 0, false, false)
        );
        let p = CompileArgs::parse(&s(&[
            "--tiles",
            "4",
            "--threads",
            "2",
            "--quick",
            "--bench",
            "mxm",
            "--anneal",
            "7",
            "--table",
        ]))
        .unwrap();
        assert_eq!(p.tiles, 4);
        assert_eq!(p.threads, 2);
        assert!(p.quick && p.table);
        assert_eq!(p.bench.as_deref(), Some("mxm"));
        assert_eq!(p.anneal, Some(7));
        assert!(CompileArgs::parse(&s(&["--tiles", "3"])).is_err());
        assert!(CompileArgs::parse(&s(&["--frobnicate"])).is_err());
    }

    #[test]
    fn compile_lines_are_greppable_and_cache_aware() {
        let args = CompileArgs::parse(&s(&[
            "--tiles",
            "4",
            "--quick",
            "--bench",
            "mxm",
            "--selfcheck",
        ]))
        .unwrap();
        let text = compile_command(&args).unwrap();
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("mxm tiles=4 "), "line: {line}");
        for field in [
            "threads=",
            "blocks=",
            "wall_ms=",
            "cache_hits=0",
            "cache_misses=",
            "cache_evictions=",
            "cache_evicted_bytes=",
            "asm_hash=0x",
        ] {
            assert!(line.contains(field), "missing '{field}' in: {line}");
        }
        assert!(text.contains("selfcheck: all asm hashes match"), "{text}");
    }

    #[test]
    fn scenario_kernels_compile_by_name() {
        let args = CompileArgs::parse(&s(&["--tiles", "4", "--bench", "pointer-chase"])).unwrap();
        let text = compile_command(&args).unwrap();
        assert!(text.starts_with("pointer-chase tiles=4 "), "{text}");
    }

    #[test]
    fn warm_disk_cache_hits_everything_and_preserves_asm_hash() {
        let dir = std::env::temp_dir().join(format!("raw-bench-ct-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = CompileArgs::parse(&s(&[
            "--tiles",
            "4",
            "--quick",
            "--bench",
            "mxm",
            "--cache-dir",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let cold = compile_command(&args).unwrap();
        let warm = compile_command(&args).unwrap();
        let hash = |t: &str| t.split("asm_hash=").nth(1).unwrap().trim().to_string();
        assert_eq!(hash(&cold), hash(&warm), "cache changed the asm");
        assert!(
            warm.contains("cache_misses=0"),
            "warm run recompiled: {warm}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§6) on the simulated Raw prototype.
//!
//! * **Table 1** — operation latencies (machine configuration check).
//! * **Figure 4** — 4-cycle end-to-end neighbour message latency.
//! * **Table 2** — benchmark characteristics (lines, array sizes, sequential
//!   run time in cycles under the baseline compiler).
//! * **Table 3** — speedup of RAWCC-compiled code over the sequential
//!   baseline for machines of 1–32 tiles.
//! * **Figure 8** — fpppp-kernel speedup under `base`, `inf-reg`, and
//!   `1-cycle` machine configurations.
//! * **Ablations** — the design choices DESIGN.md calls out: clustering,
//!   placement (greedy swap vs. simulated annealing vs. none), the scheduler
//!   priority scheme, and send/receive folding.
//!
//! Every measured run is checked bit-exactly against the reference
//! interpreter before its cycle count is reported.

pub mod args;
pub mod compiletime;
pub mod observe;
pub mod scenario;
pub mod sim;

use raw_benchmarks::Benchmark;
use raw_ir::interp::Interpreter;
use raw_ir::Program;
use raw_machine::{MachineConfig, TileId};
use rawcc::{compile, compile_baseline, CompilerOptions};
use std::fmt::Write as _;

/// Which machine variant to measure (Figure 8's three configurations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MachineVariant {
    /// 32 registers, Table-1 latencies.
    #[default]
    Base,
    /// Effectively unlimited registers.
    InfReg,
    /// Single-cycle compute operations.
    OneCycle,
}

impl MachineVariant {
    /// Builds the machine configuration for `n_tiles` under this variant.
    pub fn config(self, n_tiles: u32) -> MachineConfig {
        let base = MachineConfig::square(n_tiles);
        match self {
            MachineVariant::Base => base,
            MachineVariant::InfReg => base.with_infinite_registers(),
            MachineVariant::OneCycle => base.with_unit_latency(),
        }
    }

    /// Display name matching Figure 8.
    pub fn name(self) -> &'static str {
        match self {
            MachineVariant::Base => "base",
            MachineVariant::InfReg => "inf-reg",
            MachineVariant::OneCycle => "1-cycle",
        }
    }
}

/// A measured run: cycle count plus compiler metrics.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Simulated cycles to completion.
    pub cycles: u64,
    /// Spilled virtual registers (whole program).
    pub spills: usize,
    /// Largest basic block compiled (task-graph nodes).
    pub max_block: usize,
}

/// Runs a program on the machine described by `config` after compiling it
/// with the full orchestrater, verifying the result against the interpreter.
///
/// # Panics
///
/// Panics if compilation fails, simulation deadlocks, or the simulated result
/// differs from the interpreter (any of these is a harness bug worth a loud
/// failure, not a silent data point).
pub fn measure(
    program: &Program,
    config: &MachineConfig,
    options: &CompilerOptions,
) -> Measurement {
    let compiled = compile(program, config, options)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", program.name));
    let (result, report) = compiled
        .run(program)
        .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", program.name));
    let golden = Interpreter::new(program)
        .run()
        .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", program.name));
    assert!(
        result.state_eq(&golden),
        "{}: simulated result diverges from the interpreter",
        program.name
    );
    Measurement {
        cycles: report.cycles,
        spills: compiled.report.total_spills(),
        max_block: compiled.report.max_block_nodes(),
    }
}

/// Compiles and runs the sequential baseline, returning its cycle count.
///
/// # Panics
///
/// Panics on compile/simulation/verification failure (see [`measure`]).
pub fn measure_baseline(program: &Program) -> u64 {
    let config = MachineConfig::square(1);
    let compiled = compile_baseline(program, &config)
        .unwrap_or_else(|e| panic!("{}: baseline compile failed: {e}", program.name));
    let (result, report) = compiled
        .run(program)
        .unwrap_or_else(|e| panic!("{}: baseline simulation failed: {e}", program.name));
    let golden = Interpreter::new(program).run().unwrap();
    assert!(
        result.state_eq(&golden),
        "{}: baseline result diverges from the interpreter",
        program.name
    );
    report.cycles
}

/// One row of Table 3: a benchmark's speedups across machine sizes.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline (sequential) cycles.
    pub seq_cycles: u64,
    /// `(n_tiles, parallel cycles, speedup)` per machine size.
    pub points: Vec<(u32, u64, f64)>,
}

/// Measures one benchmark across `sizes`, under `variant`.
pub fn speedup_row(
    bench: &Benchmark,
    sizes: &[u32],
    variant: MachineVariant,
    options: &CompilerOptions,
) -> SpeedupRow {
    let baseline = bench.baseline_program().expect("baseline compiles");
    let seq_cycles = measure_baseline(&baseline);
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let program = bench.program(n).expect("program compiles");
        let config = variant.config(n);
        let m = measure(&program, &config, options);
        points.push((n, m.cycles, seq_cycles as f64 / m.cycles as f64));
    }
    SpeedupRow {
        name: bench.name.to_string(),
        seq_cycles,
        points,
    }
}

/// Renders Table 1 (operation latencies as configured).
pub fn table1_text() -> String {
    use raw_ir::{BinOp, UnOp};
    let mut s = String::new();
    writeln!(s, "Table 1: Latency of common operations (cycles)").unwrap();
    writeln!(s, "  Int Op   Cycles    Fp Op    Cycles").unwrap();
    let rows = [
        ("ADD", BinOp::Add, "ADDF", BinOp::AddF),
        ("SUB", BinOp::Sub, "SUBF", BinOp::SubF),
        ("MUL", BinOp::Mul, "MULF", BinOp::MulF),
        ("DIV", BinOp::Div, "DIVF", BinOp::DivF),
    ];
    for (iname, iop, fname, fop) in rows {
        writeln!(
            s,
            "  {iname:<8} {:<9} {fname:<8} {}",
            iop.latency(),
            fop.latency()
        )
        .unwrap();
    }
    writeln!(
        s,
        "  (extensions: SQRTF {}  ABSF {}  load 2 — see DESIGN.md)",
        UnOp::SqrtF.latency(),
        UnOp::AbsF.latency(),
    )
    .unwrap();
    s
}

/// Measures and renders Figure 4: the end-to-end latency of a single-word
/// message between neighbouring tiles.
pub fn figure4_text() -> String {
    use raw_ir::{BinOp, Imm};
    use raw_machine::asm::{ProcAsm, SwitchAsm};
    use raw_machine::isa::{Dir, Dst, MachineProgram, SDst, SSrc, Src, TileCode};
    use raw_machine::Machine;

    // Tile 0: send(x+y); tile 1: z = w + recv().
    let mut p0 = ProcAsm::new();
    p0.bin(
        BinOp::Add,
        Dst::PortOut,
        Src::Imm(Imm::I(1)),
        Src::Imm(Imm::I(2)),
    );
    p0.halt();
    let mut s0 = SwitchAsm::new();
    s0.route(&[(SSrc::Proc, SDst::Dir(Dir::East))]);
    s0.halt();
    let mut s1 = SwitchAsm::new();
    s1.route(&[(SSrc::Dir(Dir::West), SDst::Proc)]);
    s1.halt();
    let mut p1 = ProcAsm::new();
    p1.bin(BinOp::Add, Dst::Reg(1), Src::Imm(Imm::I(10)), Src::PortIn);
    p1.store_imm_addr(Src::Reg(1), 0);
    p1.halt();
    let program = MachineProgram {
        tiles: vec![
            TileCode {
                proc: p0.finish(),
                switch: s0.finish(),
            },
            TileCode {
                proc: p1.finish(),
                switch: s1.finish(),
            },
        ],
    };
    let mut machine = Machine::new(MachineConfig::grid(1, 2), &program);
    let mut recv_cycle = None;
    for _ in 0..32 {
        let before = machine.stats().tiles[1].proc_insts;
        machine.step();
        if recv_cycle.is_none() && machine.stats().tiles[1].proc_insts > before {
            recv_cycle = Some(machine.cycle() - 1);
        }
        if machine.finished() {
            break;
        }
    }
    let latency = recv_cycle.expect("message delivered") + 1;
    assert_eq!(machine.mem_word(TileId::from_raw(1), 0), 13);
    let mut s = String::new();
    writeln!(
        s,
        "Figure 4: neighbour message — send issues cycle 0, receive-side add \
         executes cycle {}, end-to-end latency {} cycles (paper: 4)",
        latency - 1,
        latency
    )
    .unwrap();
    s
}

/// Measures and renders Table 2 for the given suite.
pub fn table2_text(suite: &[Benchmark]) -> String {
    let mut s = String::new();
    writeln!(s, "Table 2: Benchmark characteristics").unwrap();
    writeln!(
        s,
        "  {:<14} {:>6} {:>12} {:>12}  Description",
        "Benchmark", "Lines", "Array size", "Seq. RT"
    )
    .unwrap();
    for b in suite {
        let baseline = b.baseline_program().expect("baseline compiles");
        let cycles = measure_baseline(&baseline);
        writeln!(
            s,
            "  {:<14} {:>6} {:>12} {:>12}  {}",
            b.name,
            b.lines(),
            b.array_size,
            cycles,
            b.description
        )
        .unwrap();
    }
    s
}

/// Measures and renders Table 3 for the given suite and machine sizes.
pub fn table3_text(suite: &[Benchmark], sizes: &[u32]) -> String {
    let options = CompilerOptions::default();
    let mut s = String::new();
    writeln!(s, "Table 3: Benchmark speedup vs. sequential baseline").unwrap();
    write!(s, "  {:<14}", "Benchmark").unwrap();
    for n in sizes {
        write!(s, " {:>8}", format!("N={n}")).unwrap();
    }
    writeln!(s).unwrap();
    for b in suite {
        let row = speedup_row(b, sizes, MachineVariant::Base, &options);
        write!(s, "  {:<14}", row.name).unwrap();
        for (_, _, speedup) in &row.points {
            write!(s, " {speedup:>8.2}").unwrap();
        }
        writeln!(s).unwrap();
    }
    s
}

/// Measures and renders Figure 8: fpppp-kernel speedups under the three
/// machine variants.
pub fn figure8_text(bench: &Benchmark, sizes: &[u32]) -> String {
    let options = CompilerOptions::default();
    let mut s = String::new();
    writeln!(s, "Figure 8: {} under machine variants", bench.name).unwrap();
    write!(s, "  {:<8}", "variant").unwrap();
    for n in sizes {
        write!(s, " {:>8}", format!("N={n}")).unwrap();
    }
    writeln!(s, " {:>12}", "seq cycles").unwrap();
    for variant in [
        MachineVariant::Base,
        MachineVariant::InfReg,
        MachineVariant::OneCycle,
    ] {
        let row = speedup_row(bench, sizes, variant, &options);
        write!(s, "  {:<8}", variant.name()).unwrap();
        for (_, _, speedup) in &row.points {
            write!(s, " {speedup:>8.2}").unwrap();
        }
        writeln!(s, " {:>12}", row.seq_cycles).unwrap();
    }
    s
}

/// Ablation study: each compiler feature toggled off, measured per benchmark.
pub fn ablation_text(suite: &[Benchmark], sizes: &[u32]) -> String {
    let variants: Vec<(&str, CompilerOptions)> = vec![
        ("full", CompilerOptions::default()),
        (
            "no-cluster",
            CompilerOptions {
                clustering: false,
                ..Default::default()
            },
        ),
        (
            "no-place",
            CompilerOptions {
                placement_swap: false,
                ..Default::default()
            },
        ),
        (
            "level-only",
            CompilerOptions {
                priority: rawcc::PriorityScheme::LevelOnly,
                ..Default::default()
            },
        ),
        (
            "annealing",
            CompilerOptions {
                placement: rawcc::PlacementAlgorithm::Annealing { seed: 42 },
                ..Default::default()
            },
        ),
        (
            "no-fold",
            CompilerOptions {
                fold_communication: false,
                ..Default::default()
            },
        ),
    ];
    let mut s = String::new();
    writeln!(s, "Ablations: speedup with compiler features disabled").unwrap();
    for b in suite {
        writeln!(s, "  {}:", b.name).unwrap();
        for (name, options) in &variants {
            let row = speedup_row(b, sizes, MachineVariant::Base, options);
            write!(s, "    {name:<12}").unwrap();
            for (n, _, speedup) in &row.points {
                write!(s, " N={n}:{speedup:>6.2}").unwrap();
            }
            writeln!(s).unwrap();
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1_text();
        assert!(t.contains("MUL      12"));
        assert!(t.contains("DIVF     12"));
    }

    #[test]
    fn figure4_reports_four_cycles() {
        let t = figure4_text();
        assert!(t.contains("latency 4 cycles"), "{t}");
    }

    #[test]
    fn speedup_row_on_tiny_benchmark() {
        let bench = raw_benchmarks::mxm(4, 8, 2);
        let row = speedup_row(
            &bench,
            &[1, 2],
            MachineVariant::Base,
            &CompilerOptions::default(),
        );
        assert_eq!(row.points.len(), 2);
        assert!(row.seq_cycles > 0);
        assert!(row.points.iter().all(|(_, c, _)| *c > 0));
    }

    #[test]
    fn variants_build_expected_configs() {
        let c = MachineVariant::InfReg.config(4);
        assert!(c.gprs > 1000);
        let c = MachineVariant::OneCycle.config(4);
        assert_eq!(c.latency, raw_machine::LatencyModel::Unit);
        assert_eq!(MachineVariant::Base.name(), "base");
    }
}

//! `raw-bench scenario` — the adversarial mesh scenario harness.
//!
//! Each scenario kernel (see [`raw_benchmarks::scenario_suite`]) is
//! dynamic-network-heavy: every address is data-dependent, so the run leans on
//! the wormhole routers and remote-memory handlers rather than the static
//! schedule. The harness compiles each kernel **around a faulty tile map** on
//! a 2×4 mesh and differentially validates the result:
//!
//! * masked tiles must carry **zero** instructions (processor or switch);
//! * the simulated result must match the reference interpreter bit-exactly;
//! * the activity-tracked stepper must match `with_reference_stepper`
//!   (cycles, statistics, final memory) clean **and** under a chaos sweep;
//! * a traced run must be bit-identical to an untraced one;
//! * the two complementary partitions must run **co-resident** on one mesh
//!   with each program's final state identical to its solo run (isolation).
//!
//! Per-scenario output is one greppable stats line plus a steady-state
//! occupancy table; the closing table is the one recorded in EXPERIMENTS.md.

use crate::args::FlagParser;
use raw_ir::interp::Interpreter;
use raw_ir::Program;
use raw_machine::chaos::ChaosConfig;
use raw_machine::{Machine, MachineConfig, RunReport, TileId, TileMask};
use raw_trace::{report, run_coresident_traced, run_traced};
use rawcc::{compile, link_coresident, CompiledProgram, CompilerOptions};
use std::fmt::Write as _;

/// Arguments of the `scenario` subcommand.
pub struct ScenarioArgs {
    /// Use a reduced chaos sweep (CI-friendly).
    pub quick: bool,
    /// Restrict to one scenario kernel.
    pub bench: Option<String>,
}

impl ScenarioArgs {
    /// Parses the argument list following the `scenario` subcommand word.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or missing values.
    pub fn parse(args: &[String]) -> Result<ScenarioArgs, String> {
        let mut out = ScenarioArgs {
            quick: false,
            bench: None,
        };
        let mut p = FlagParser::new("scenario", args);
        while let Some(flag) = p.next_flag() {
            match flag {
                "--quick" => out.quick = true,
                "--bench" => out.bench = Some(p.value()?.clone()),
                _ => return Err(p.unknown()),
            }
        }
        Ok(out)
    }
}

/// The scenario mesh: 2×4, with tile 3 dead. `mask_to_pow2` pads the mask to
/// a power-of-two live count, leaving partition A = {0, 1, 2, 4}.
fn partition_a() -> MachineConfig {
    let base = MachineConfig::grid(2, 4);
    let mask = base.mask_to_pow2(&[TileId::from_raw(3)]);
    base.with_faulty(mask)
}

/// Partition B is A's complement: live exactly where A is faulty.
fn partition_b() -> MachineConfig {
    let a = partition_a();
    let mut mask = TileMask::EMPTY;
    for t in 0..a.n_tiles() {
        let t = TileId::from_raw(t);
        if !a.is_faulty(t) {
            mask.insert(t);
        }
    }
    MachineConfig::grid(2, 4).with_faulty(mask)
}

fn mask_list(config: &MachineConfig) -> String {
    let dead: Vec<String> = (0..config.n_tiles())
        .map(TileId::from_raw)
        .filter(|&t| config.is_faulty(t))
        .map(|t| t.0.to_string())
        .collect();
    dead.join(",")
}

/// Runs `machine` to completion and snapshots everything observable.
fn observe(mut machine: Machine, label: &str) -> Result<(RunReport, Vec<Vec<u32>>), String> {
    let report = machine.run().map_err(|e| format!("{label}: {e}"))?;
    let n = machine.config().n_tiles();
    let mems = (0..n).map(|t| machine.memory(TileId(t)).to_vec()).collect();
    Ok((report, mems))
}

/// Asserts the tracked and reference steppers agree on cycles, stats, and
/// final memory for this machine configuration.
fn check_steppers(
    compiled: &CompiledProgram,
    program: &Program,
    chaos: Option<ChaosConfig>,
    label: &str,
) -> Result<(), String> {
    let with_chaos = |mut m: Machine| {
        if let Some(c) = chaos {
            m = m.with_chaos(c);
        }
        m
    };
    let tracked = with_chaos(compiled.instantiate(program));
    let reference = with_chaos(compiled.instantiate(program).with_reference_stepper());
    let (t_report, t_mems) = observe(tracked, label)?;
    let (r_report, r_mems) = observe(reference, label)?;
    if t_report.cycles != r_report.cycles {
        return Err(format!(
            "{label}: steppers disagree on cycles ({} vs {})",
            t_report.cycles, r_report.cycles
        ));
    }
    if t_report.stats != r_report.stats {
        return Err(format!("{label}: steppers disagree on statistics"));
    }
    if t_mems != r_mems {
        return Err(format!("{label}: steppers disagree on final memory"));
    }
    Ok(())
}

/// The chaos sweep: (seed, stall rate) points drawn from the fixed testkit
/// stream so every run of the harness exercises identical chaos.
fn chaos_points(quick: bool) -> Vec<ChaosConfig> {
    let mut rng = raw_testkit::Rng::new(0x000A_110C_8A05);
    let seeds: Vec<u64> = (0..if quick { 1 } else { 3 })
        .map(|_| rng.next_u64())
        .collect();
    let rates: &[u32] = if quick { &[20] } else { &[1, 5, 20, 50] };
    let mut points = Vec::new();
    for &seed in &seeds {
        for &stall_percent in rates {
            points.push(ChaosConfig {
                seed,
                stall_percent,
            });
        }
    }
    points
}

/// Verifies that every masked tile carries zero instructions.
fn check_masked_tiles_empty(compiled: &CompiledProgram, label: &str) -> Result<(), String> {
    for (t, code) in compiled.machine_program.tiles.iter().enumerate() {
        let faulty = compiled.config.is_faulty(TileId::from_raw(t as u32));
        if faulty && (!code.proc.is_empty() || !code.switch.is_empty()) {
            return Err(format!(
                "{label}: faulty tile {t} carries {} proc / {} switch instructions",
                code.proc.len(),
                code.switch.len()
            ));
        }
    }
    Ok(())
}

/// One fully validated scenario: returns the stats line, the occupancy table,
/// and the row for the closing summary table.
fn run_scenario(
    bench: &raw_benchmarks::Benchmark,
    config: &MachineConfig,
    quick: bool,
) -> Result<(String, String, SummaryRow), String> {
    let n_live = config.n_live();
    let program = bench
        .program(n_live)
        .map_err(|e| format!("{}: source compile failed: {e}", bench.name))?;
    let compiled = compile(&program, config, &CompilerOptions::default())
        .map_err(|e| format!("{}: compile failed: {e}", bench.name))?;
    check_masked_tiles_empty(&compiled, bench.name)?;

    // Bit-exact functional check against the reference interpreter.
    let golden = Interpreter::new(&program)
        .run()
        .map_err(|e| format!("{}: interpreter failed: {e}", bench.name))?;
    let (result, run_report) = compiled
        .run(&program)
        .map_err(|e| format!("{}: simulation failed: {e}", bench.name))?;
    if !result.state_eq(&golden) {
        return Err(format!(
            "{}: simulated result diverges from the interpreter",
            bench.name
        ));
    }

    // Differential: tracked vs reference stepper, clean then chaos-swept.
    check_steppers(&compiled, &program, None, &format!("{} clean", bench.name))?;
    for chaos in chaos_points(quick) {
        check_steppers(
            &compiled,
            &program,
            Some(chaos),
            &format!(
                "{} chaos seed={:#x} stall={}%",
                bench.name, chaos.seed, chaos.stall_percent
            ),
        )?;
    }

    // Traced run must be observationally identical to the untraced one.
    let traced = run_traced(&compiled, &program)
        .map_err(|e| format!("{}: traced simulation failed: {e}", bench.name))?;
    if traced.report.cycles != run_report.cycles || traced.report.stats != run_report.stats {
        return Err(format!(
            "{}: traced run diverged from untraced run ({} vs {} cycles)",
            bench.name, traced.report.cycles, run_report.cycles
        ));
    }

    let dyn_cycles = traced.trace.dyn_active_cycles();
    let hash = asm_hash(&compiled);
    let line = format!(
        "scenario {} mesh={}x{} live={} faulty={} cycles={} dyn_cycles={} asm_hash={hash:#018x}",
        bench.name,
        config.rows,
        config.cols,
        n_live,
        mask_list(config),
        run_report.cycles,
        dyn_cycles,
    );
    let occupancy = report::occupancy_table(&traced.trace);
    let row = SummaryRow {
        name: bench.name.to_string(),
        live: n_live,
        cycles: run_report.cycles,
        dyn_cycles,
        hash,
    };
    Ok((line, occupancy, row))
}

struct SummaryRow {
    name: String,
    live: u32,
    cycles: u64,
    dyn_cycles: u64,
    hash: u64,
}

/// FNV over the full per-tile instruction streams (same digest as
/// `raw-bench compile`).
fn asm_hash(compiled: &CompiledProgram) -> u64 {
    raw_testkit::hash64(format!("{:?}", compiled.machine_program).as_bytes())
}

/// Co-residency check: two kernels on complementary partitions of one mesh.
/// Each program's final state must equal its solo run (isolation), and the
/// per-program accounting must attribute activity only to owned tiles.
fn run_coresident(
    bench_a: &raw_benchmarks::Benchmark,
    bench_b: &raw_benchmarks::Benchmark,
) -> Result<String, String> {
    let config_a = partition_a();
    let config_b = partition_b();
    let prog_a = bench_a
        .program(config_a.n_live())
        .map_err(|e| format!("{}: {e}", bench_a.name))?;
    let prog_b = bench_b
        .program(config_b.n_live())
        .map_err(|e| format!("{}: {e}", bench_b.name))?;
    let compiled_a = compile(&prog_a, &config_a, &CompilerOptions::default())
        .map_err(|e| format!("{}: {e}", bench_a.name))?;
    let compiled_b = compile(&prog_b, &config_b, &CompilerOptions::default())
        .map_err(|e| format!("{}: {e}", bench_b.name))?;
    let solo_a = compiled_a
        .run(&prog_a)
        .map_err(|e| format!("{} solo: {e}", bench_a.name))?
        .0;
    let solo_b = compiled_b
        .run(&prog_b)
        .map_err(|e| format!("{} solo: {e}", bench_b.name))?
        .0;

    let co = link_coresident(&compiled_a, &compiled_b).map_err(|e| e.to_string())?;
    check_partitions_disjoint(&co)?;
    let (results, co_report) = co
        .run([&prog_a, &prog_b])
        .map_err(|e| format!("co-resident run: {e}"))?;
    for (i, (solo, name)) in [(&solo_a, bench_a.name), (&solo_b, bench_b.name)]
        .into_iter()
        .enumerate()
    {
        if !results[i].state_eq(solo) {
            return Err(format!(
                "co-residency broke isolation: {name}'s result differs from its solo run"
            ));
        }
    }

    // Per-program attribution over the shared-mesh trace.
    let traced = run_coresident_traced(&co, [&prog_a, &prog_b])
        .map_err(|e| format!("co-resident traced run: {e}"))?;
    if traced.report.cycles != co_report.cycles {
        return Err(format!(
            "co-resident traced run diverged ({} vs {} cycles)",
            traced.report.cycles, co_report.cycles
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "coresident {}+{} cycles={} a_tiles={} b_tiles={}",
        bench_a.name,
        bench_b.name,
        co_report.cycles,
        co.tiles_of(0).len(),
        co.tiles_of(1).len(),
    );
    for (i, name) in [bench_a.name, bench_b.name].into_iter().enumerate() {
        let acc = &traced.per_program[i];
        let _ = writeln!(
            out,
            "coresident   {name}: issues={} routes={} proc_stall={} switch_stall={}",
            acc.issues,
            acc.routes,
            acc.proc_stall_total(),
            acc.switch_stall_total(),
        );
    }
    Ok(out)
}

/// Sanity check on the instantiated co-resident machine: keeps the harness
/// honest that partition tile sets are disjoint and cover only live tiles.
fn check_partitions_disjoint(co: &rawcc::CoResident) -> Result<(), String> {
    let a = co.tiles_of(0);
    let b = co.tiles_of(1);
    for t in &a {
        if b.contains(t) {
            return Err(format!("tile {} owned by both partitions", t.0));
        }
    }
    // The merged config marks exactly the unowned tiles faulty.
    for t in 0..co.config.n_tiles() {
        let t = TileId::from_raw(t);
        let owned = a.contains(&t) || b.contains(&t);
        if owned == co.config.is_faulty(t) {
            return Err(format!(
                "tile {} ownership/faulty disagreement in merged config",
                t.0
            ));
        }
    }
    Ok(())
}

/// Runs the `scenario` subcommand and returns its stdout text.
///
/// # Errors
///
/// Returns a message on compile failures or any differential mismatch; the
/// binary maps this to a nonzero exit code.
pub fn scenario_command(args: &ScenarioArgs) -> Result<String, String> {
    let mut suite = raw_benchmarks::scenario_suite();
    if let Some(name) = &args.bench {
        suite.retain(|b| b.name == name);
        if suite.is_empty() {
            return Err(format!("unknown scenario '{name}'"));
        }
    }
    let config = partition_a();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario suite: {}x{} mesh, faulty tiles {{{}}} -> {} live tiles\n",
        config.rows,
        config.cols,
        mask_list(&config),
        config.n_live(),
    );
    let mut rows = Vec::new();
    for bench in &suite {
        let (line, occupancy, row) = run_scenario(bench, &config, args.quick)?;
        out.push_str(&line);
        out.push('\n');
        out.push_str(&occupancy);
        out.push('\n');
        rows.push(row);
    }

    // Co-residency: pair each kernel with its successor (cyclically) so every
    // kernel runs at least once on each partition shape.
    if suite.len() >= 2 {
        for i in 0..suite.len() {
            let a = &suite[i];
            let b = &suite[(i + 1) % suite.len()];
            out.push_str(&run_coresident(a, b)?);
        }
        out.push('\n');
    }

    out.push_str("| scenario | live | cycles | dyn cycles | asm hash |\n");
    out.push_str("|---|---|---|---|---|\n");
    for r in &rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:#018x} |",
            r.name, r.live, r.cycles, r.dyn_cycles, r.hash
        );
    }
    let _ = writeln!(out, "\nscenario suite: all checks passed");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_flags() {
        let d = ScenarioArgs::parse(&[]).unwrap();
        assert!(!d.quick && d.bench.is_none());
        let p = ScenarioArgs::parse(&s(&["--quick", "--bench", "gather"])).unwrap();
        assert!(p.quick);
        assert_eq!(p.bench.as_deref(), Some("gather"));
        assert!(ScenarioArgs::parse(&s(&["--frobnicate"])).is_err());
        assert!(ScenarioArgs::parse(&s(&["--bench"])).is_err());
    }

    #[test]
    fn partitions_are_complementary() {
        let a = partition_a();
        let b = partition_b();
        assert_eq!(a.n_live(), 4);
        assert_eq!(b.n_live(), 4);
        for t in 0..8u32 {
            let t = TileId::from_raw(t);
            assert_ne!(
                a.is_faulty(t),
                b.is_faulty(t),
                "tile {} not complementary",
                t.0
            );
        }
        assert!(a.live_connected() && b.live_connected());
    }

    #[test]
    fn scenario_gather_passes_quick() {
        let args = ScenarioArgs::parse(&s(&["--quick", "--bench", "gather"])).unwrap();
        let text = scenario_command(&args).unwrap();
        assert!(text.contains("scenario gather "), "{text}");
        assert!(text.contains("asm_hash=0x"), "{text}");
        assert!(text.contains("all checks passed"), "{text}");
    }

    #[test]
    fn coresident_pairing_is_isolated() {
        let suite = raw_benchmarks::scenario_suite();
        let text = run_coresident(&suite[0], &suite[1]).unwrap();
        assert!(text.contains("coresident pointer-chase+scatter"), "{text}");
        let config_a = partition_a();
        let prog = suite[0].program(config_a.n_live()).unwrap();
        let ca = compile(&prog, &config_a, &CompilerOptions::default()).unwrap();
        let config_b = partition_b();
        let prog_b = suite[1].program(config_b.n_live()).unwrap();
        let cb = compile(&prog_b, &config_b, &CompilerOptions::default()).unwrap();
        let co = link_coresident(&ca, &cb).unwrap();
        check_partitions_disjoint(&co).unwrap();
    }
}

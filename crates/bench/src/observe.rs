//! The `raw-bench trace` and `raw-bench annotate` subcommands: compile a
//! benchmark, run it with the recording event sink, and render the
//! observability reports — occupancy table, link heatmap, critical path,
//! predicted-vs-observed, phase timings (`trace`), or the per-source-line
//! hotspot listing and placement audit log (`annotate`) — optionally
//! exporting a provenance-annotated Chrome-trace JSON file.

use crate::args::{require_power_of_two, FlagParser};
use raw_machine::trace::StallReason;
use raw_machine::MachineConfig;
use raw_trace::annotate::{placement_audit, SourceAnnotation};
use raw_trace::{chrome, json, report, run_traced, TraceRun};
use rawcc::{compile, CompiledProgram, CompilerOptions};
use std::fmt::Write as _;

/// Parsed arguments of `raw-bench trace`.
#[derive(Clone, Debug)]
pub struct TraceArgs {
    /// Benchmark name (from the paper suite).
    pub bench: String,
    /// Machine size in tiles (power of two).
    pub tiles: u32,
    /// Write Chrome-trace JSON here.
    pub chrome_out: Option<String>,
    /// Cross-check the traced run against an untraced one.
    pub selfcheck: bool,
    /// Use the scaled-down suite.
    pub quick: bool,
}

impl TraceArgs {
    /// Parses the argument list following the `trace` subcommand word.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or missing values.
    pub fn parse(args: &[String]) -> Result<TraceArgs, String> {
        let mut out = TraceArgs {
            bench: "mxm".to_string(),
            tiles: 4,
            chrome_out: None,
            selfcheck: false,
            quick: false,
        };
        let mut p = FlagParser::new("trace", args);
        while let Some(flag) = p.next_flag() {
            match flag {
                "--bench" => out.bench = p.value()?.clone(),
                "--tiles" => out.tiles = p.value_parsed("an integer")?,
                "--chrome" => out.chrome_out = Some(p.value()?.clone()),
                "--selfcheck" => out.selfcheck = true,
                "--quick" => out.quick = true,
                _ => return Err(p.unknown()),
            }
        }
        require_power_of_two(out.tiles)?;
        Ok(out)
    }
}

/// Compiles `name` from the chosen suite for a `tiles`-tile machine and runs
/// it under the recording sink.
fn compile_and_trace(
    name: &str,
    tiles: u32,
    quick: bool,
) -> Result<
    (
        raw_benchmarks::Benchmark,
        raw_ir::Program,
        CompiledProgram,
        TraceRun,
    ),
    String,
> {
    let suite = if quick {
        raw_benchmarks::tiny_suite()
    } else {
        raw_benchmarks::suite()
    };
    let bench = suite
        .iter()
        .find(|b| b.name == name)
        .cloned()
        .or_else(|| {
            raw_benchmarks::scenario_suite()
                .into_iter()
                .find(|b| b.name == name)
        })
        .ok_or_else(|| {
            let mut names: Vec<&str> = suite.iter().map(|b| b.name).collect();
            names.extend(raw_benchmarks::scenario_suite().iter().map(|b| b.name));
            format!(
                "unknown benchmark '{name}' (available: {})",
                names.join(", ")
            )
        })?;
    let program = bench
        .program(tiles)
        .map_err(|e| format!("{}: source compile failed: {e}", bench.name))?;
    let config = MachineConfig::square(tiles);
    let compiled = compile(&program, &config, &CompilerOptions::default())
        .map_err(|e| format!("{}: compile failed: {e}", bench.name))?;
    let run = run_traced(&compiled, &program)
        .map_err(|e| format!("{}: traced simulation failed: {e}", bench.name))?;
    Ok((bench, program, compiled, run))
}

/// One-line summary of the dominant stall reason across all tiles and units.
fn top_stall_summary(run: &TraceRun) -> String {
    let accounts = run.trace.accounts();
    let mut by_reason = [0u64; 5];
    let mut windows = 0u64;
    for a in &accounts {
        for (i, slot) in by_reason.iter_mut().enumerate() {
            *slot += a.proc_stalls[i] + a.switch_stalls[i];
        }
        windows += a.proc_window + a.switch_window;
    }
    let (top, &cycles) = by_reason
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .expect("five stall reasons");
    if cycles == 0 {
        return "top stall: none (no stall cycles recorded)".to_string();
    }
    let pct = 100.0 * cycles as f64 / windows.max(1) as f64;
    format!(
        "top stall: {} — {cycles} cycles ({pct:.1}% of active windows)",
        StallReason::ALL[top].name()
    )
}

/// Runs the trace subcommand, returning the rendered report text.
///
/// # Errors
///
/// Returns a message on unknown benchmark, compile/simulation failure,
/// self-check divergence, or Chrome-export I/O failure.
pub fn trace_command(args: &TraceArgs) -> Result<String, String> {
    let (bench, program, compiled, run) = compile_and_trace(&args.bench, args.tiles, args.quick)?;
    let config = MachineConfig::square(args.tiles);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} on {} tile(s) ({}x{} mesh), {} cycles, {} events\n",
        bench.name,
        args.tiles,
        config.rows,
        config.cols,
        run.report.cycles,
        run.trace.events.len()
    );
    out.push_str(&report::phase_table(&compiled.report.timings));
    out.push('\n');
    out.push_str(&report::occupancy_table(&run.trace));
    out.push('\n');
    out.push_str(&report::link_heatmap(&run.trace));
    out.push('\n');
    out.push_str(&report::critical_path(&run.trace));
    out.push('\n');
    out.push_str(&report::predicted_vs_observed(&run.trace, &compiled.report));

    if args.selfcheck {
        let (_, plain) = compiled
            .run(&program)
            .map_err(|e| format!("{}: untraced simulation failed: {e}", bench.name))?;
        if plain.cycles != run.report.cycles || plain.stats != run.report.stats {
            return Err(format!(
                "{}: traced run diverged from untraced run ({} vs {} cycles)",
                bench.name, run.report.cycles, plain.cycles
            ));
        }
        let _ = writeln!(
            out,
            "\nselfcheck: traced and untraced runs agree ({} cycles)",
            plain.cycles
        );
    }

    if let Some(path) = &args.chrome_out {
        let doc = chrome::chrome_trace_annotated(&run.trace, Some(&compiled.provenance));
        json::parse(&doc).map_err(|e| format!("chrome export is not valid JSON: {e}"))?;
        std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "\nchrome trace written to {path} ({} bytes); open via chrome://tracing or Perfetto",
            doc.len()
        );
    }
    let _ = writeln!(out, "\n{}", top_stall_summary(&run));
    Ok(out)
}

/// Parsed arguments of `raw-bench annotate`.
#[derive(Clone, Debug)]
pub struct AnnotateArgs {
    /// Benchmark name (from the paper suite).
    pub bench: String,
    /// Machine size in tiles (power of two).
    pub tiles: u32,
    /// Rows per block in the placement audit.
    pub top: usize,
    /// Write a provenance-annotated Chrome-trace JSON file here.
    pub chrome_out: Option<String>,
    /// Use the scaled-down suite.
    pub quick: bool,
}

impl AnnotateArgs {
    /// Parses the argument list following the `annotate` subcommand word.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or missing values.
    pub fn parse(args: &[String]) -> Result<AnnotateArgs, String> {
        let mut out = AnnotateArgs {
            bench: "mxm".to_string(),
            tiles: 16,
            top: 5,
            chrome_out: None,
            quick: false,
        };
        let mut p = FlagParser::new("annotate", args);
        while let Some(flag) = p.next_flag() {
            match flag {
                "--bench" => out.bench = p.value()?.clone(),
                "--tiles" => out.tiles = p.value_parsed("an integer")?,
                "--top" => out.top = p.value_parsed("an integer")?,
                "--chrome" => out.chrome_out = Some(p.value()?.clone()),
                "--quick" => {
                    out.quick = true;
                    // The quick preset targets a small machine unless --tiles
                    // was given explicitly.
                    if !p.mentions("--tiles") {
                        out.tiles = 4;
                    }
                }
                _ => return Err(p.unknown()),
            }
        }
        require_power_of_two(out.tiles)?;
        Ok(out)
    }
}

/// Runs the annotate subcommand: the per-source-line hotspot listing followed
/// by the placement audit log.
///
/// # Errors
///
/// Returns a message on unknown benchmark, compile/simulation failure,
/// attribution that fails to conserve the active-window cycle accounting, or
/// Chrome-export I/O failure.
pub fn annotate_command(args: &AnnotateArgs) -> Result<String, String> {
    let (bench, _, compiled, run) = compile_and_trace(&args.bench, args.tiles, args.quick)?;
    let ann = SourceAnnotation::build(&run.trace, &compiled.provenance);
    let attributed = ann.selfcheck().map_err(|(a, w)| {
        format!(
            "{}: provenance attribution lost cycles: {a} attributed vs {w} in active windows",
            bench.name
        )
    })?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "annotate: {} on {} tile(s), {} cycles, {attributed} attributed cycles\n",
        bench.name, args.tiles, run.report.cycles
    );
    out.push_str(&ann.render(bench.source()));
    out.push('\n');
    out.push_str(&placement_audit(
        &run.trace,
        &compiled.provenance,
        &compiled.report,
        args.top,
    ));
    if let Some(path) = &args.chrome_out {
        let doc = chrome::chrome_trace_annotated(&run.trace, Some(&compiled.provenance));
        json::parse(&doc).map_err(|e| format!("chrome export is not valid JSON: {e}"))?;
        std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "\nchrome trace written to {path} ({} bytes, provenance args included)",
            doc.len()
        );
    }
    let _ = writeln!(out, "\n{}", top_stall_summary(&run));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_full_flag_set() {
        let args: Vec<String> = [
            "--bench",
            "jacobi",
            "--tiles",
            "8",
            "--chrome",
            "/tmp/x.json",
            "--selfcheck",
            "--quick",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let t = TraceArgs::parse(&args).unwrap();
        assert_eq!(t.bench, "jacobi");
        assert_eq!(t.tiles, 8);
        assert_eq!(t.chrome_out.as_deref(), Some("/tmp/x.json"));
        assert!(t.selfcheck && t.quick);
    }

    #[test]
    fn parse_rejects_bad_input() {
        let bad = |list: &[&str]| {
            let v: Vec<String> = list.iter().map(|s| s.to_string()).collect();
            TraceArgs::parse(&v).unwrap_err()
        };
        assert!(bad(&["--tiles", "3"]).contains("power of two"));
        assert!(bad(&["--bench"]).contains("requires a value"));
        assert!(bad(&["--frobnicate"]).contains("unknown trace flag"));
    }

    #[test]
    fn trace_command_runs_quick_benchmark() {
        let args = TraceArgs {
            bench: "mxm".to_string(),
            tiles: 4,
            chrome_out: None,
            selfcheck: true,
            quick: true,
        };
        let text = trace_command(&args).unwrap();
        assert!(text.contains("per-tile occupancy"), "{text}");
        assert!(text.contains("mesh link utilization"), "{text}");
        assert!(text.contains("observed critical path"), "{text}");
        assert!(
            text.contains("selfcheck: traced and untraced runs agree"),
            "{text}"
        );
    }

    #[test]
    fn trace_command_rejects_unknown_benchmark() {
        let args = TraceArgs {
            bench: "nope".to_string(),
            tiles: 2,
            chrome_out: None,
            selfcheck: false,
            quick: true,
        };
        assert!(trace_command(&args)
            .unwrap_err()
            .contains("unknown benchmark"));
    }
}

//! The `raw-bench trace` subcommand: compile a benchmark, run it with the
//! recording event sink, and render the observability reports (occupancy
//! table, link heatmap, critical path, predicted-vs-observed, phase timings),
//! optionally exporting a Chrome-trace JSON file.

use raw_machine::MachineConfig;
use raw_trace::{chrome, json, report, run_traced};
use rawcc::{compile, CompilerOptions};
use std::fmt::Write as _;

/// Parsed arguments of `raw-bench trace`.
#[derive(Clone, Debug)]
pub struct TraceArgs {
    /// Benchmark name (from the paper suite).
    pub bench: String,
    /// Machine size in tiles (power of two).
    pub tiles: u32,
    /// Write Chrome-trace JSON here.
    pub chrome_out: Option<String>,
    /// Cross-check the traced run against an untraced one.
    pub selfcheck: bool,
    /// Use the scaled-down suite.
    pub quick: bool,
}

impl TraceArgs {
    /// Parses the argument list following the `trace` subcommand word.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or missing values.
    pub fn parse(args: &[String]) -> Result<TraceArgs, String> {
        let mut out = TraceArgs {
            bench: "mxm".to_string(),
            tiles: 4,
            chrome_out: None,
            selfcheck: false,
            quick: false,
        };
        let mut i = 0;
        while i < args.len() {
            let need = |i: usize| -> Result<&String, String> {
                args.get(i + 1)
                    .ok_or_else(|| format!("{} requires a value", args[i]))
            };
            match args[i].as_str() {
                "--bench" => {
                    out.bench = need(i)?.clone();
                    i += 2;
                }
                "--tiles" => {
                    out.tiles = need(i)?
                        .parse()
                        .map_err(|_| "--tiles must be an integer".to_string())?;
                    i += 2;
                }
                "--chrome" => {
                    out.chrome_out = Some(need(i)?.clone());
                    i += 2;
                }
                "--selfcheck" => {
                    out.selfcheck = true;
                    i += 1;
                }
                "--quick" => {
                    out.quick = true;
                    i += 1;
                }
                other => return Err(format!("unknown trace flag '{other}'")),
            }
        }
        if !out.tiles.is_power_of_two() {
            return Err(format!("machine size {} is not a power of two", out.tiles));
        }
        Ok(out)
    }
}

/// Runs the trace subcommand, returning the rendered report text.
///
/// # Errors
///
/// Returns a message on unknown benchmark, compile/simulation failure,
/// self-check divergence, or Chrome-export I/O failure.
pub fn trace_command(args: &TraceArgs) -> Result<String, String> {
    let suite = if args.quick {
        raw_benchmarks::tiny_suite()
    } else {
        raw_benchmarks::suite()
    };
    let bench = suite.iter().find(|b| b.name == args.bench).ok_or_else(|| {
        let names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        format!(
            "unknown benchmark '{}' (available: {})",
            args.bench,
            names.join(", ")
        )
    })?;
    let program = bench
        .program(args.tiles)
        .map_err(|e| format!("{}: source compile failed: {e}", bench.name))?;
    let config = MachineConfig::square(args.tiles);
    let compiled = compile(&program, &config, &CompilerOptions::default())
        .map_err(|e| format!("{}: compile failed: {e}", bench.name))?;
    let run = run_traced(&compiled, &program)
        .map_err(|e| format!("{}: traced simulation failed: {e}", bench.name))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} on {} tile(s) ({}x{} mesh), {} cycles, {} events\n",
        bench.name,
        args.tiles,
        config.rows,
        config.cols,
        run.report.cycles,
        run.trace.events.len()
    );
    out.push_str(&report::phase_table(&compiled.report.timings));
    out.push('\n');
    out.push_str(&report::occupancy_table(&run.trace));
    out.push('\n');
    out.push_str(&report::link_heatmap(&run.trace));
    out.push('\n');
    out.push_str(&report::critical_path(&run.trace));
    out.push('\n');
    out.push_str(&report::predicted_vs_observed(&run.trace, &compiled.report));

    if args.selfcheck {
        let (_, plain) = compiled
            .run(&program)
            .map_err(|e| format!("{}: untraced simulation failed: {e}", bench.name))?;
        if plain.cycles != run.report.cycles || plain.stats != run.report.stats {
            return Err(format!(
                "{}: traced run diverged from untraced run ({} vs {} cycles)",
                bench.name, run.report.cycles, plain.cycles
            ));
        }
        let _ = writeln!(
            out,
            "\nselfcheck: traced and untraced runs agree ({} cycles)",
            plain.cycles
        );
    }

    if let Some(path) = &args.chrome_out {
        let doc = chrome::chrome_trace(&run.trace);
        json::parse(&doc).map_err(|e| format!("chrome export is not valid JSON: {e}"))?;
        std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "\nchrome trace written to {path} ({} bytes); open via chrome://tracing or Perfetto",
            doc.len()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_full_flag_set() {
        let args: Vec<String> = [
            "--bench",
            "jacobi",
            "--tiles",
            "8",
            "--chrome",
            "/tmp/x.json",
            "--selfcheck",
            "--quick",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let t = TraceArgs::parse(&args).unwrap();
        assert_eq!(t.bench, "jacobi");
        assert_eq!(t.tiles, 8);
        assert_eq!(t.chrome_out.as_deref(), Some("/tmp/x.json"));
        assert!(t.selfcheck && t.quick);
    }

    #[test]
    fn parse_rejects_bad_input() {
        let bad = |list: &[&str]| {
            let v: Vec<String> = list.iter().map(|s| s.to_string()).collect();
            TraceArgs::parse(&v).unwrap_err()
        };
        assert!(bad(&["--tiles", "3"]).contains("power of two"));
        assert!(bad(&["--bench"]).contains("requires a value"));
        assert!(bad(&["--frobnicate"]).contains("unknown trace flag"));
    }

    #[test]
    fn trace_command_runs_quick_benchmark() {
        let args = TraceArgs {
            bench: "mxm".to_string(),
            tiles: 4,
            chrome_out: None,
            selfcheck: true,
            quick: true,
        };
        let text = trace_command(&args).unwrap();
        assert!(text.contains("per-tile occupancy"), "{text}");
        assert!(text.contains("mesh link utilization"), "{text}");
        assert!(text.contains("observed critical path"), "{text}");
        assert!(
            text.contains("selfcheck: traced and untraced runs agree"),
            "{text}"
        );
    }

    #[test]
    fn trace_command_rejects_unknown_benchmark() {
        let args = TraceArgs {
            bench: "nope".to_string(),
            tiles: 2,
            chrome_out: None,
            selfcheck: false,
            quick: true,
        };
        assert!(trace_command(&args)
            .unwrap_err()
            .contains("unknown benchmark"));
    }
}

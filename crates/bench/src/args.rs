//! Shared flag parsing for the `raw-bench` subcommands.
//!
//! Every subcommand (`trace`, `annotate`, `compile`, `scenario`, `sim`) takes
//! the same shape of argument list — a flat sequence of `--flag` switches and
//! `--flag VALUE` pairs — and used to carry its own copy of the cursor/`need`
//! loop. [`FlagParser`] centralises that walk while keeping each subcommand's
//! error wording intact: missing values report `"<flag> requires a value"`,
//! unparsable values report `"<flag> must be <expected>"`, and unknown flags
//! report `"unknown <context> flag '<flag>'"` (or `"unknown flag '<flag>'"`
//! when the subcommand predates contexts and its callers grep for the short
//! form).

use std::str::FromStr;

/// Cursor over a subcommand's argument list.
///
/// Usage pattern:
///
/// ```
/// # use raw_bench::args::FlagParser;
/// let args: Vec<String> = vec!["--tiles".into(), "16".into(), "--quick".into()];
/// let mut tiles: u32 = 4;
/// let mut quick = false;
/// let mut p = FlagParser::new("sim", &args);
/// while let Some(flag) = p.next_flag() {
///     match flag {
///         "--tiles" => tiles = p.value_parsed("an integer")?,
///         "--quick" => quick = true,
///         _ => return Err(p.unknown()),
///     }
/// }
/// assert_eq!((tiles, quick), (16, true));
/// # Ok::<(), String>(())
/// ```
pub struct FlagParser<'a> {
    /// Subcommand name used in "unknown … flag" errors; empty for the legacy
    /// short form.
    context: &'a str,
    args: &'a [String],
    /// Index of the next unread argument.
    i: usize,
    /// Index of the flag most recently returned by [`Self::next_flag`].
    flag: usize,
}

impl<'a> FlagParser<'a> {
    /// Builds a parser over the arguments following the subcommand word.
    pub fn new(context: &'a str, args: &'a [String]) -> Self {
        FlagParser {
            context,
            args,
            i: 0,
            flag: 0,
        }
    }

    /// Advances to the next flag, or `None` when the list is exhausted.
    pub fn next_flag(&mut self) -> Option<&'a str> {
        let flag = self.args.get(self.i)?;
        self.flag = self.i;
        self.i += 1;
        Some(flag.as_str())
    }

    /// Consumes the current flag's value argument.
    ///
    /// # Errors
    ///
    /// `"<flag> requires a value"` when the list ends before the value.
    pub fn value(&mut self) -> Result<&'a String, String> {
        let v = self
            .args
            .get(self.i)
            .ok_or_else(|| format!("{} requires a value", self.args[self.flag]))?;
        self.i += 1;
        Ok(v)
    }

    /// Consumes and parses the current flag's value argument.
    ///
    /// # Errors
    ///
    /// `"<flag> requires a value"` on a missing value, or
    /// `"<flag> must be <expected>"` when parsing fails (e.g. `expected =
    /// "an integer"`).
    pub fn value_parsed<T: FromStr>(&mut self, expected: &str) -> Result<T, String> {
        let flag = &self.args[self.flag];
        self.value()?
            .parse()
            .map_err(|_| format!("{flag} must be {expected}"))
    }

    /// Error message for an unrecognised flag. Contexts yield
    /// `"unknown trace flag '--x'"`; an empty context yields
    /// `"unknown flag '--x'"`.
    pub fn unknown(&self) -> String {
        let flag = &self.args[self.flag];
        if self.context.is_empty() {
            format!("unknown flag '{flag}'")
        } else {
            format!("unknown {} flag '{flag}'", self.context)
        }
    }

    /// Whether `flag` appears anywhere in the argument list (used for
    /// presets that defer to an explicit flag, e.g. `--quick` vs `--tiles`).
    pub fn mentions(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }
}

/// Validates the mesh-size constraint shared by every sizing flag.
///
/// # Errors
///
/// `"machine size <n> is not a power of two"` otherwise.
pub fn require_power_of_two(tiles: u32) -> Result<(), String> {
    if tiles.is_power_of_two() {
        Ok(())
    } else {
        Err(format!("machine size {tiles} is not a power of two"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    /// A representative subcommand parse loop, reused by the tests below.
    fn demo_parse(context: &str, args: &[String]) -> Result<(u32, Option<String>, bool), String> {
        let (mut tiles, mut bench, mut quick) = (4u32, None, false);
        let mut p = FlagParser::new(context, args);
        while let Some(flag) = p.next_flag() {
            match flag {
                "--tiles" => tiles = p.value_parsed("an integer")?,
                "--bench" => bench = Some(p.value()?.clone()),
                "--quick" => quick = true,
                _ => return Err(p.unknown()),
            }
        }
        require_power_of_two(tiles)?;
        Ok((tiles, bench, quick))
    }

    #[test]
    fn walks_switches_and_valued_flags() {
        let args = s(&["--bench", "mxm", "--quick", "--tiles", "16"]);
        assert_eq!(
            demo_parse("demo", &args).unwrap(),
            (16, Some("mxm".to_string()), true)
        );
        assert_eq!(demo_parse("demo", &[]).unwrap(), (4, None, false));
    }

    #[test]
    fn missing_value_names_the_flag() {
        let err = demo_parse("demo", &s(&["--bench"])).unwrap_err();
        assert_eq!(err, "--bench requires a value");
        let err = demo_parse("demo", &s(&["--quick", "--tiles"])).unwrap_err();
        assert_eq!(err, "--tiles requires a value");
    }

    #[test]
    fn bad_value_names_the_flag_and_expectation() {
        let err = demo_parse("demo", &s(&["--tiles", "many"])).unwrap_err();
        assert_eq!(err, "--tiles must be an integer");
    }

    #[test]
    fn unknown_flag_carries_the_context() {
        let err = demo_parse("demo", &s(&["--frobnicate"])).unwrap_err();
        assert_eq!(err, "unknown demo flag '--frobnicate'");
        let err = demo_parse("", &s(&["--frobnicate"])).unwrap_err();
        assert_eq!(err, "unknown flag '--frobnicate'");
    }

    #[test]
    fn value_is_never_mistaken_for_a_flag() {
        // "--quick" as a *value* must be consumed, not dispatched.
        let args = s(&["--bench", "--quick", "--tiles", "8"]);
        assert_eq!(
            demo_parse("demo", &args).unwrap(),
            (8, Some("--quick".to_string()), false)
        );
    }

    #[test]
    fn mentions_checks_the_whole_list() {
        let args = s(&["--quick", "--tiles", "8"]);
        let p = FlagParser::new("demo", &args);
        assert!(p.mentions("--tiles"));
        assert!(!p.mentions("--bench"));
    }

    #[test]
    fn power_of_two_validation() {
        assert!(require_power_of_two(8).is_ok());
        let err = require_power_of_two(3).unwrap_err();
        assert_eq!(err, "machine size 3 is not a power of two");
    }
}

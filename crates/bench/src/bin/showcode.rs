//! `showcode` — dump the compiled per-tile instruction streams for a
//! benchmark, in execution form (processor and switch code side by side).
//!
//! ```text
//! cargo run --release -p raw-bench --bin showcode -- <benchmark> [n_tiles] [max_insts]
//! ```

use raw_machine::MachineConfig;
use rawcc::{compile, CompilerOptions};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "jacobi".into());
    let n: u32 = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "4".into())
        .parse()
        .expect("n_tiles must be an integer");
    let max: usize = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "60".into())
        .parse()
        .expect("max_insts must be an integer");

    let Some(bench) = raw_benchmarks::by_name(&name) else {
        let names: Vec<&str> = raw_benchmarks::suite().iter().map(|b| b.name).collect();
        eprintln!(
            "unknown benchmark '{name}'; available: {}",
            names.join(", ")
        );
        std::process::exit(2);
    };
    let program = bench.program(n).unwrap();
    let config = MachineConfig::square(n);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();

    for (t, tile) in compiled.machine_program.tiles.iter().enumerate() {
        println!(
            "=== tile{t} processor ({} instructions{}) ===",
            tile.proc.len(),
            if tile.proc.len() > max {
                format!(", first {max}")
            } else {
                String::new()
            }
        );
        for (i, inst) in tile.proc.iter().take(max).enumerate() {
            println!("{i:5}: {inst}");
        }
        println!(
            "=== tile{t} switch ({} instructions{}) ===",
            tile.switch.len(),
            if tile.switch.len() > max {
                format!(", first {max}")
            } else {
                String::new()
            }
        );
        for (i, inst) in tile.switch.iter().take(max).enumerate() {
            println!("{i:5}: {inst}");
        }
    }
}

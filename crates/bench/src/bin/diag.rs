//! `diag` — compiler/simulator diagnostics for one benchmark run.
//!
//! Prints cycle counts, stall breakdowns, network traffic, and the largest
//! compiled blocks: the first tool to reach for when a speedup looks wrong.
//!
//! ```text
//! cargo run --release -p raw-bench --bin diag -- <benchmark> [n_tiles]
//! ```

use raw_machine::MachineConfig;
use rawcc::{compile, CompilerOptions};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mxm".into());
    let n: u32 = match std::env::args()
        .nth(2)
        .unwrap_or_else(|| "16".into())
        .parse()
    {
        Ok(n) => n,
        Err(_) => {
            eprintln!("usage: diag <benchmark> [n_tiles]   (n_tiles must be an integer)");
            std::process::exit(2);
        }
    };
    if !n.is_power_of_two() {
        eprintln!("n_tiles must be a power of two");
        std::process::exit(2);
    }
    let Some(bench) = raw_benchmarks::by_name(&name) else {
        let names: Vec<&str> = raw_benchmarks::suite().iter().map(|b| b.name).collect();
        eprintln!(
            "unknown benchmark '{name}'; available: {}",
            names.join(", ")
        );
        std::process::exit(2);
    };
    let program = bench.program(n).unwrap();
    let config = MachineConfig::square(n);
    let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
    let mut machine = compiled.instantiate(&program);
    let report = match machine.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}\n{}", machine.dump_state());
            std::process::exit(1);
        }
    };
    let stats = machine.stats();

    println!("== {name} @ {n} tiles: {} cycles ==", report.cycles);
    println!(
        "blocks: {}  max block nodes: {}  spills: {}",
        compiled.report.blocks.len(),
        compiled.report.max_block_nodes(),
        compiled.report.total_spills()
    );
    let mut tot = raw_machine::stats::TileStats::default();
    for t in &stats.tiles {
        tot.proc_insts += t.proc_insts;
        tot.stall_reg += t.stall_reg;
        tot.stall_port_in += t.stall_port_in;
        tot.stall_port_out += t.stall_port_out;
        tot.stall_dynamic += t.stall_dynamic;
        tot.switch_routes += t.switch_routes;
        tot.switch_stalls += t.switch_stalls;
    }
    let tile_cycles = (report.cycles * n as u64).max(1);
    let pct = |v: u64| 100.0 * v as f64 / tile_cycles as f64;
    println!(
        "proc insts:    {:>10}  ({:.1}% of tile-cycles)",
        tot.proc_insts,
        pct(tot.proc_insts)
    );
    println!(
        "stall reg:     {:>10}  ({:.1}%)",
        tot.stall_reg,
        pct(tot.stall_reg)
    );
    println!(
        "stall port-in: {:>10}  ({:.1}%)",
        tot.stall_port_in,
        pct(tot.stall_port_in)
    );
    println!(
        "stall port-out:{:>10}  ({:.1}%)",
        tot.stall_port_out,
        pct(tot.stall_port_out)
    );
    println!(
        "stall dynamic: {:>10}  ({:.1}%)",
        tot.stall_dynamic,
        pct(tot.stall_dynamic)
    );
    println!(
        "switch routes: {:>10}  (stall cycles: {})",
        tot.switch_routes, tot.switch_stalls
    );
    println!("static words:  {:>10}", stats.static_words);
    println!("dyn-net active:{:>10} cycles", stats.dyn_active_cycles);

    let mut blocks: Vec<_> = compiled.report.blocks.iter().enumerate().collect();
    blocks.sort_by_key(|(_, b)| std::cmp::Reverse(b.n_nodes));
    println!("largest blocks:");
    for (i, b) in blocks.iter().take(5) {
        println!(
            "  block {i}: nodes={} clusters={} comm-paths={} est-makespan={} spills={}",
            b.n_nodes, b.n_clusters, b.n_comm_paths, b.makespan, b.spills
        );
    }
}

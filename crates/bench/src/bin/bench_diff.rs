//! Compares two `BENCH_*.json` files and fails on median regressions.
//!
//! ```text
//! bench_diff OLD.json NEW.json [--threshold PCT]
//! ```
//!
//! Each file is the JSON-lines output of the `raw-testkit` bench harness (one
//! record per line with `name` and `median_ns` fields). For every target
//! present in both files the median ratio is printed; if any target's median
//! grew by more than the threshold (default 15%), the tool exits non-zero.
//! Targets present in only one file are reported but never fail the run, so a
//! suite can gain or retire targets without breaking CI.
//!
//! Broken inputs are distinct, loud errors (exit code 2), never a silent
//! pass: an unreadable file, a file with no records, a malformed record, and
//! two files with no targets in common each get their own diagnosis.

use std::fmt;
use std::process::ExitCode;

/// One parsed record: target name and median nanoseconds.
struct Entry {
    name: String,
    median_ns: f64,
}

/// Everything that makes a comparison impossible (as opposed to a legitimate
/// regression verdict). Each case exits with code 2.
#[derive(Debug, PartialEq)]
enum DiffError {
    /// A snapshot file could not be read at all.
    Unreadable { path: String, cause: String },
    /// A snapshot file exists but holds no benchmark records.
    Empty { path: String },
    /// A line in a snapshot is not a harness record.
    Malformed {
        path: String,
        line: usize,
        missing: &'static str,
    },
    /// The two snapshots share no target: almost certainly different suites
    /// (e.g. BENCH_simulator.json diffed against BENCH_paper_tables.json).
    SuiteMismatch { old: String, new: String },
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Unreadable { path, cause } => {
                write!(f, "cannot read {path}: {cause}")
            }
            DiffError::Empty { path } => {
                write!(
                    f,
                    "{path}: no benchmark records (empty snapshot — did the \
                     bench run produce output?)"
                )
            }
            DiffError::Malformed {
                path,
                line,
                missing,
            } => {
                write!(f, "{path}:{line}: malformed record (no {missing} field)")
            }
            DiffError::SuiteMismatch { old, new } => {
                write!(
                    f,
                    "{old} and {new} share no benchmark target — these look \
                     like snapshots of different suites"
                )
            }
        }
    }
}

/// Extracts the string value of `"name":"…"` from one JSON line, handling the
/// `\"` and `\\` escapes the harness emits.
fn parse_name(line: &str) -> Option<String> {
    let start = line.find("\"name\":\"")? + "\"name\":\"".len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"median_ns":…` from one JSON line.
fn parse_median(line: &str) -> Option<f64> {
    let start = line.find("\"median_ns\":")? + "\"median_ns\":".len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_file(path: &str) -> Result<Vec<Entry>, DiffError> {
    let text = std::fs::read_to_string(path).map_err(|e| DiffError::Unreadable {
        path: path.to_string(),
        cause: e.to_string(),
    })?;
    let mut entries = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let malformed = |missing| DiffError::Malformed {
            path: path.to_string(),
            line: ln + 1,
            missing,
        };
        let name = parse_name(line).ok_or_else(|| malformed("\"name\""))?;
        let median_ns = parse_median(line).ok_or_else(|| malformed("\"median_ns\""))?;
        entries.push(Entry { name, median_ns });
    }
    if entries.is_empty() {
        return Err(DiffError::Empty {
            path: path.to_string(),
        });
    }
    Ok(entries)
}

fn run(old_path: &str, new_path: &str, threshold_pct: f64) -> Result<bool, DiffError> {
    let old = parse_file(old_path)?;
    let new = parse_file(new_path)?;
    if !new.iter().any(|n| old.iter().any(|o| o.name == n.name)) {
        return Err(DiffError::SuiteMismatch {
            old: old_path.to_string(),
            new: new_path.to_string(),
        });
    }
    let mut ok = true;
    println!(
        "{:<40} {:>12} {:>12} {:>8}",
        "target", "old ns", "new ns", "ratio"
    );
    for n in &new {
        // Last occurrence wins, matching append semantics of the harness.
        let Some(o) = old.iter().rev().find(|o| o.name == n.name) else {
            println!(
                "{:<40} {:>12} {:>12.1} {:>8}",
                n.name, "-", n.median_ns, "new"
            );
            continue;
        };
        let ratio = n.median_ns / o.median_ns.max(f64::MIN_POSITIVE);
        let flag = if ratio > 1.0 + threshold_pct / 100.0 {
            ok = false;
            "  REGRESSION"
        } else {
            ""
        };
        println!(
            "{:<40} {:>12.1} {:>12.1} {:>7.2}x{flag}",
            n.name, o.median_ns, n.median_ns, ratio
        );
    }
    for o in &old {
        if !new.iter().any(|n| n.name == o.name) {
            println!(
                "{:<40} {:>12.1} {:>12} {:>8}",
                o.name, o.median_ns, "-", "gone"
            );
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut threshold = 15.0f64;
    let mut paths = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--threshold" {
            i += 1;
            threshold = match args.get(i).and_then(|v| v.parse().ok()) {
                Some(t) => t,
                None => {
                    eprintln!("bench_diff: --threshold needs a number");
                    return ExitCode::from(2);
                }
            };
        } else {
            paths.push(args[i].clone());
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_diff OLD.json NEW.json [--threshold PCT]");
        return ExitCode::from(2);
    }
    match run(&paths[0], &paths[1], threshold) {
        Ok(true) => {
            println!("bench_diff: no median regression above {threshold}%");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench_diff: median regression above {threshold}% detected");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_harness_lines() {
        let line = "{\"name\":\"table3/mxm/8\",\"samples\":15,\"iters_per_sample\":1,\
                    \"median_ns\":123.5,\"p10_ns\":120.0,\"p90_ns\":130.0,\"mean_ns\":124.0}";
        assert_eq!(parse_name(line).unwrap(), "table3/mxm/8");
        assert_eq!(parse_median(line).unwrap(), 123.5);
    }

    #[test]
    fn parses_escaped_names() {
        let line = "{\"name\":\"odd\\\"quote\\\\slash\",\"median_ns\":1.0}";
        assert_eq!(parse_name(line).unwrap(), "odd\"quote\\slash");
    }

    /// A scratch file removed on drop, unique to this test and process.
    struct Scratch(std::path::PathBuf);

    impl Scratch {
        fn new(tag: &str, content: &str) -> Scratch {
            let path = std::env::temp_dir()
                .join(format!("bench_diff_test_{}_{tag}.json", std::process::id()));
            std::fs::write(&path, content).unwrap();
            Scratch(path)
        }

        fn path(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    const RECORD_A: &str = "{\"name\":\"sim/mxm/4\",\"median_ns\":100.0}\n";
    const RECORD_B: &str = "{\"name\":\"tables/life/8\",\"median_ns\":50.0}\n";

    #[test]
    fn missing_file_is_a_distinct_error() {
        let ok = Scratch::new("missing_ok", RECORD_A);
        let gone = std::env::temp_dir().join(format!(
            "bench_diff_test_{}_does_not_exist.json",
            std::process::id()
        ));
        let err = run(gone.to_str().unwrap(), ok.path(), 15.0).unwrap_err();
        assert!(matches!(err, DiffError::Unreadable { .. }), "got {err:?}");
        assert!(err.to_string().contains("cannot read"), "{err}");
    }

    #[test]
    fn empty_file_is_a_distinct_error() {
        let ok = Scratch::new("empty_ok", RECORD_A);
        let empty = Scratch::new("empty", "\n  \n");
        let err = run(ok.path(), empty.path(), 15.0).unwrap_err();
        assert!(matches!(err, DiffError::Empty { .. }), "got {err:?}");
        assert!(err.to_string().contains("no benchmark records"), "{err}");
    }

    #[test]
    fn suite_mismatch_is_a_distinct_error() {
        let a = Scratch::new("mismatch_a", RECORD_A);
        let b = Scratch::new("mismatch_b", RECORD_B);
        let err = run(a.path(), b.path(), 15.0).unwrap_err();
        assert!(
            matches!(err, DiffError::SuiteMismatch { .. }),
            "got {err:?}"
        );
        assert!(
            err.to_string().contains("share no benchmark target"),
            "{err}"
        );
    }

    #[test]
    fn malformed_record_is_a_distinct_error() {
        let a = Scratch::new("malformed_ok", RECORD_A);
        let bad = Scratch::new("malformed", "{\"median_ns\":1.0}\n");
        let err = run(a.path(), bad.path(), 15.0).unwrap_err();
        assert!(
            matches!(err, DiffError::Malformed { line: 1, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn self_comparison_still_passes() {
        let a = Scratch::new("self", RECORD_A);
        assert_eq!(run(a.path(), a.path(), 15.0), Ok(true));
    }

    #[test]
    fn regression_detected_above_threshold() {
        let old = Scratch::new("reg_old", RECORD_A);
        let new = Scratch::new("reg_new", "{\"name\":\"sim/mxm/4\",\"median_ns\":130.0}\n");
        assert_eq!(run(old.path(), new.path(), 15.0), Ok(false));
        assert_eq!(run(old.path(), new.path(), 50.0), Ok(true));
    }
}

//! Compares two `BENCH_*.json` files and fails on median regressions.
//!
//! ```text
//! bench_diff OLD.json NEW.json [--threshold PCT]
//! ```
//!
//! Each file is the JSON-lines output of the `raw-testkit` bench harness (one
//! record per line with `name` and `median_ns` fields). For every target
//! present in both files the median ratio is printed; if any target's median
//! grew by more than the threshold (default 15%), the tool exits non-zero.
//! Targets present in only one file are reported but never fail the run, so a
//! suite can gain or retire targets without breaking CI.

use std::process::ExitCode;

/// One parsed record: target name and median nanoseconds.
struct Entry {
    name: String,
    median_ns: f64,
}

/// Extracts the string value of `"name":"…"` from one JSON line, handling the
/// `\"` and `\\` escapes the harness emits.
fn parse_name(line: &str) -> Option<String> {
    let start = line.find("\"name\":\"")? + "\"name\":\"".len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"median_ns":…` from one JSON line.
fn parse_median(line: &str) -> Option<f64> {
    let start = line.find("\"median_ns\":")? + "\"median_ns\":".len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_file(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut entries = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let name = parse_name(line).ok_or(format!("{path}:{}: no \"name\" field", ln + 1))?;
        let median_ns =
            parse_median(line).ok_or(format!("{path}:{}: no \"median_ns\" field", ln + 1))?;
        entries.push(Entry { name, median_ns });
    }
    Ok(entries)
}

fn run(old_path: &str, new_path: &str, threshold_pct: f64) -> Result<bool, String> {
    let old = parse_file(old_path)?;
    let new = parse_file(new_path)?;
    let mut ok = true;
    println!(
        "{:<40} {:>12} {:>12} {:>8}",
        "target", "old ns", "new ns", "ratio"
    );
    for n in &new {
        // Last occurrence wins, matching append semantics of the harness.
        let Some(o) = old.iter().rev().find(|o| o.name == n.name) else {
            println!(
                "{:<40} {:>12} {:>12.1} {:>8}",
                n.name, "-", n.median_ns, "new"
            );
            continue;
        };
        let ratio = n.median_ns / o.median_ns.max(f64::MIN_POSITIVE);
        let flag = if ratio > 1.0 + threshold_pct / 100.0 {
            ok = false;
            "  REGRESSION"
        } else {
            ""
        };
        println!(
            "{:<40} {:>12.1} {:>12.1} {:>7.2}x{flag}",
            n.name, o.median_ns, n.median_ns, ratio
        );
    }
    for o in &old {
        if !new.iter().any(|n| n.name == o.name) {
            println!(
                "{:<40} {:>12.1} {:>12} {:>8}",
                o.name, o.median_ns, "-", "gone"
            );
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut threshold = 15.0f64;
    let mut paths = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--threshold" {
            i += 1;
            threshold = match args.get(i).and_then(|v| v.parse().ok()) {
                Some(t) => t,
                None => {
                    eprintln!("bench_diff: --threshold needs a number");
                    return ExitCode::from(2);
                }
            };
        } else {
            paths.push(args[i].clone());
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_diff OLD.json NEW.json [--threshold PCT]");
        return ExitCode::from(2);
    }
    match run(&paths[0], &paths[1], threshold) {
        Ok(true) => {
            println!("bench_diff: no median regression above {threshold}%");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench_diff: median regression above {threshold}% detected");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_harness_lines() {
        let line = "{\"name\":\"table3/mxm/8\",\"samples\":15,\"iters_per_sample\":1,\
                    \"median_ns\":123.5,\"p10_ns\":120.0,\"p90_ns\":130.0,\"mean_ns\":124.0}";
        assert_eq!(parse_name(line).unwrap(), "table3/mxm/8");
        assert_eq!(parse_median(line).unwrap(), 123.5);
    }

    #[test]
    fn parses_escaped_names() {
        let line = "{\"name\":\"odd\\\"quote\\\\slash\",\"median_ns\":1.0}";
        assert_eq!(parse_name(line).unwrap(), "odd\"quote\\slash");
    }
}

fn main() {
    use raw_bench::{measure, measure_baseline, MachineVariant};
    for (ints, outs) in [(90usize, 30usize), (200, 60), (400, 80)] {
        let bench = raw_benchmarks::fpppp_kernel(raw_benchmarks::FppppShape {
            inputs: 40,
            intermediates: ints,
            outputs: outs,
            seed: 0x0f99_9921,
        });
        let base = bench.baseline_program().unwrap();
        let seq = measure_baseline(&base);
        print!("ints={ints}: seq={seq}");
        for n in [8u32, 16, 32] {
            let p = bench.program(n).unwrap();
            let m = measure(&p, &MachineVariant::Base.config(n), &Default::default());
            print!("  @{n}={:.1}x", seq as f64 / m.cycles as f64);
        }
        println!();
    }
}

//! `raw-bench` — regenerate the paper's tables and figures.
//!
//! ```text
//! raw-bench --all                # every experiment at paper sizes
//! raw-bench --table2 --table3    # selected experiments
//! raw-bench --table3 --sizes 1,2,4,8
//! raw-bench --quick              # tiny suite (CI-friendly)
//! raw-bench --bench mxm --table3 # restrict to one benchmark
//! raw-bench trace --bench mxm --tiles 16 --chrome out.json
//! raw-bench annotate --bench mxm --tiles 16
//! raw-bench compile --tiles 16 --threads 8 --cache-dir /tmp/rbc
//! raw-bench compile --tiles 16 --table
//! raw-bench scenario --quick
//! raw-bench sim --tiles 1024 --bench spin
//! raw-bench sim --tiles 64 --selfcheck --quick
//! ```

use raw_bench::{ablation_text, figure4_text, figure8_text, table1_text, table2_text, table3_text};
use std::process::ExitCode;

const USAGE: &str = "\
raw-bench — regenerate the tables and figures of
'Space-Time Scheduling of Instruction-Level Parallelism on a Raw Machine'

USAGE:
    raw-bench [FLAGS]
    raw-bench trace [--bench NAME] [--tiles N] [--chrome PATH] [--selfcheck] [--quick]
    raw-bench annotate [--bench NAME] [--tiles N] [--top K] [--chrome PATH] [--quick]
    raw-bench compile [--tiles N] [--threads T] [--bench NAME] [--anneal SEED]
                      [--cache-dir PATH] [--quick] [--table] [--selfcheck]
    raw-bench scenario [--bench NAME] [--quick]
    raw-bench sim [--tiles N] [--bench NAME] [--selfcheck] [--quick]

SUBCOMMANDS:
    trace           run one benchmark with cycle-accurate tracing and print the
                    occupancy/stall table, link heatmap, critical-path walk,
                    and predicted-vs-observed diff; --chrome exports
                    Chrome-trace JSON (with source-provenance args),
                    --selfcheck re-runs untraced and verifies bit-identical
                    cycle counts
    annotate        run one benchmark traced and print the per-source-line
                    hotspot listing (cycles, stall taxonomy, tile spread) and
                    the placement audit log joining runtime stalls with the
                    placer's accepted moves; fails if attribution does not
                    conserve the active-window cycle accounting
    compile         compile the suite without running it, printing one
                    greppable stats line per workload (wall time, worker
                    threads, block-cache hits/misses, asm hash); --cache-dir
                    persists the content-addressed block cache across runs,
                    --table prints the threads x cache-temperature sweep
                    recorded in EXPERIMENTS.md, --selfcheck recompiles
                    single-threaded on a cold cache and fails on any asm drift
    scenario        run the adversarial mesh scenario suite: dynamic-network
                    kernels compiled around a faulty-tile map, differentially
                    validated (tracked vs reference stepper, traced vs
                    untraced, chaos sweep) plus a co-residency isolation
                    check; prints per-scenario stats lines, occupancy tables,
                    and the EXPERIMENTS.md summary table
    sim             exercise the event-driven stepper on big meshes (default
                    8x8, up to 32x32+) over sparse hand-written workloads;
                    prints tracked-vs-event wall-clock speedup lines, or with
                    --selfcheck differentially validates all three steppers
                    (tracked, reference, event) clean and under a chaos
                    sweep, including a compiled jacobi at sizes <= 64 tiles

FLAGS:
    --table1        operation latencies (Table 1)
    --fig4          neighbour message latency (Figure 4)
    --table2        benchmark characteristics (Table 2)
    --table3        speedups across machine sizes (Table 3)
    --fig8          fpppp-kernel machine variants (Figure 8)
    --ablations     compiler-feature ablations
    --all           everything above
    --quick         use the scaled-down suite (fast)
    --sizes A,B,..  machine sizes for table3/fig8 (default 1,2,4,8,16,32)
    --bench NAME    restrict table2/table3/ablations to one benchmark
    --help          this text
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        let parsed = match raw_bench::observe::TraceArgs::parse(&args[1..]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("raw-bench trace: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match raw_bench::observe::trace_command(&parsed) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("raw-bench trace: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("scenario") {
        let parsed = match raw_bench::scenario::ScenarioArgs::parse(&args[1..]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("raw-bench scenario: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match raw_bench::scenario::scenario_command(&parsed) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("raw-bench scenario: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("sim") {
        let parsed = match raw_bench::sim::SimArgs::parse(&args[1..]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("raw-bench sim: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match raw_bench::sim::sim_command(&parsed) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("raw-bench sim: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("compile") {
        let parsed = match raw_bench::compiletime::CompileArgs::parse(&args[1..]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("raw-bench compile: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match raw_bench::compiletime::compile_command(&parsed) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("raw-bench compile: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("annotate") {
        let parsed = match raw_bench::observe::AnnotateArgs::parse(&args[1..]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("raw-bench annotate: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match raw_bench::observe::annotate_command(&parsed) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("raw-bench annotate: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let has = |f: &str| args.iter().any(|a| a == f);
    let all = has("--all");
    let quick = has("--quick");

    let mut sizes: Vec<u32> = vec![1, 2, 4, 8, 16, 32];
    if let Some(pos) = args.iter().position(|a| a == "--sizes") {
        match args.get(pos + 1) {
            Some(list) => {
                sizes = list
                    .split(',')
                    .map(|t| t.trim().parse::<u32>().expect("size must be an integer"))
                    .collect();
            }
            None => {
                eprintln!("--sizes requires an argument, e.g. --sizes 1,2,4");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(&bad) = sizes.iter().find(|n| !n.is_power_of_two()) {
        eprintln!(
            "machine size {bad} is not a power of two (low-order interleaving \
             requires 2^k tiles); valid sizes: 1,2,4,8,16,32,…"
        );
        return ExitCode::FAILURE;
    }
    if quick {
        sizes.retain(|&n| n <= 4);
        if sizes.is_empty() {
            sizes = vec![1, 2, 4];
        }
    }

    let mut suite = if quick {
        raw_benchmarks::tiny_suite()
    } else {
        raw_benchmarks::suite()
    };
    if let Some(pos) = args.iter().position(|a| a == "--bench") {
        let name = args.get(pos + 1).cloned().unwrap_or_default();
        suite.retain(|b| b.name == name);
        if suite.is_empty() {
            eprintln!("unknown benchmark '{name}'");
            return ExitCode::FAILURE;
        }
    }

    if all || has("--table1") {
        println!("{}", table1_text());
    }
    if all || has("--fig4") {
        println!("{}", figure4_text());
    }
    if all || has("--table2") {
        println!("{}", table2_text(&suite));
    }
    if all || has("--table3") {
        println!("{}", table3_text(&suite, &sizes));
    }
    if all || has("--fig8") {
        let fpppp = suite
            .iter()
            .find(|b| b.name == "fpppp-kernel")
            .cloned()
            .unwrap_or_else(|| raw_benchmarks::fpppp_kernel(Default::default()));
        println!("{}", figure8_text(&fpppp, &sizes));
    }
    if all || has("--ablations") {
        println!("{}", ablation_text(&suite, &sizes));
    }
    ExitCode::SUCCESS
}

//! Microbenchmarks of the machine substrate itself: static-network message
//! cost (Figure 4's event), dynamic-network round trips, and raw simulation
//! throughput — regression tracking for the simulator. Runs on the
//! raw-testkit bench harness and writes `BENCH_simulator.json`.

use raw_ir::{BinOp, Imm};
use raw_machine::asm::{ProcAsm, SwitchAsm};
use raw_machine::isa::{Dir, Dst, MachineProgram, SDst, SSrc, Src, TileCode};
use raw_machine::{Machine, MachineConfig, TileId};
use raw_testkit::bench::Harness;

/// Figure 4's scenario: one word between neighbouring tiles.
fn neighbor_message() -> (MachineConfig, MachineProgram) {
    let mut p0 = ProcAsm::new();
    p0.bin(
        BinOp::Add,
        Dst::PortOut,
        Src::Imm(Imm::I(30)),
        Src::Imm(Imm::I(12)),
    );
    p0.halt();
    let mut s0 = SwitchAsm::new();
    s0.route(&[(SSrc::Proc, SDst::Dir(Dir::East))]);
    s0.halt();
    let mut s1 = SwitchAsm::new();
    s1.route(&[(SSrc::Dir(Dir::West), SDst::Proc)]);
    s1.halt();
    let mut p1 = ProcAsm::new();
    p1.bin(BinOp::Add, Dst::Reg(1), Src::Imm(Imm::I(100)), Src::PortIn);
    p1.store_imm_addr(Src::Reg(1), 0);
    p1.halt();
    (
        MachineConfig::grid(1, 2),
        MachineProgram {
            tiles: vec![
                TileCode {
                    proc: p0.finish(),
                    switch: s0.finish(),
                },
                TileCode {
                    proc: p1.finish(),
                    switch: s1.finish(),
                },
            ],
        },
    )
}

fn fig4_message(h: &mut Harness) {
    let (config, program) = neighbor_message();
    h.bench("simulator/fig4_neighbor_message", || {
        let mut m = Machine::new(config.clone(), &program);
        let report = m.run().unwrap();
        assert_eq!(m.mem_word(TileId::from_raw(1), 0), 142);
        report.cycles
    });
}

fn dynamic_round_trip(h: &mut Harness) {
    // Remote load across a 4x4 mesh corner to corner.
    let config = MachineConfig::grid(4, 4);
    let gaddr = config.make_gaddr(TileId::from_raw(15), 7);
    let mut p0 = ProcAsm::new();
    p0.dload(Dst::Reg(1), Src::Imm(Imm::I(gaddr as i32)));
    p0.store_imm_addr(Src::Reg(1), 0);
    p0.halt();
    let mut tiles = vec![TileCode {
        proc: p0.finish(),
        switch: vec![raw_machine::isa::SInst::Halt],
    }];
    for _ in 1..16 {
        tiles.push(TileCode {
            proc: vec![raw_machine::isa::PInst::Halt],
            switch: vec![raw_machine::isa::SInst::Halt],
        });
    }
    let program = MachineProgram { tiles };
    h.bench("simulator/dynamic_remote_load_4x4", || {
        let mut m = Machine::new(config.clone(), &program);
        m.set_mem_word(TileId::from_raw(15), 7, 4242);
        m.run().unwrap();
        assert_eq!(m.mem_word(TileId::from_raw(0), 0), 4242);
    });
}

fn stepping_throughput(h: &mut Harness) {
    // Cycles/second the simulator sustains on a busy 16-tile machine: every
    // processor spins through an arithmetic loop.
    let config = MachineConfig::grid(4, 4);
    let mut tiles = Vec::new();
    for _ in 0..16 {
        let mut p = ProcAsm::new();
        p.li(Dst::Reg(1), Imm::I(0));
        let top = p.new_label();
        p.bind(top);
        p.addi(Dst::Reg(1), Src::Reg(1), 1);
        p.bin(BinOp::Slt, Dst::Reg(2), Src::Reg(1), Src::Imm(Imm::I(2000)));
        p.bnez(Src::Reg(2), top);
        p.halt();
        tiles.push(TileCode {
            proc: p.finish(),
            switch: vec![raw_machine::isa::SInst::Halt],
        });
    }
    let program = MachineProgram { tiles };
    h.bench("simulator/16_tiles_2k_iterations", || {
        let mut m = Machine::new(config.clone(), &program);
        m.run().unwrap().cycles
    });
    // Same workload through the step-everything reference path: the ratio to
    // the target above is the activity-tracking speedup, tracked per snapshot.
    h.bench("simulator/16_tiles_2k_iterations/reference", || {
        let mut m = Machine::new(config.clone(), &program).with_reference_stepper();
        m.run().unwrap().cycles
    });
}

fn main() {
    let mut h = Harness::new("simulator");
    fig4_message(&mut h);
    dynamic_round_trip(&mut h);
    stepping_throughput(&mut h);
    h.finish();
}

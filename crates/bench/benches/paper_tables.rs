//! Micro-benchmarks mirroring the paper's evaluation artifacts, on the
//! raw-testkit bench harness (`cargo bench -p raw-bench --bench paper_tables`).
//!
//! Each measured target regenerates one *row/point* of a table or figure:
//!
//! * `table2/<bench>` — baseline (sequential) compile + simulate.
//! * `table3/<bench>/N` — RAWCC compile + simulate at N tiles.
//! * `fig8/<variant>` — fpppp-kernel under base / inf-reg / 1-cycle machines.
//!
//! The harness tracks host wall time (useful for regression tracking of the
//! compiler and simulator themselves) and appends one JSON line per target to
//! `BENCH_paper_tables.json`; the *simulated* cycle counts — the paper's
//! actual metric — are printed once per target and collected by
//! `raw-bench`/`EXPERIMENTS.md`.

use raw_bench::{measure, measure_baseline, MachineVariant};
use raw_testkit::bench::Harness;
use rawcc::CompilerOptions;

fn scaled_suite() -> Vec<raw_benchmarks::Benchmark> {
    // Every target runs many times; use reduced shapes.
    vec![
        raw_benchmarks::life(12, 1),
        raw_benchmarks::vpenta(12),
        raw_benchmarks::cholesky(1, 8),
        raw_benchmarks::tomcatv(12, 1),
        raw_benchmarks::fpppp_kernel(raw_benchmarks::FppppShape {
            inputs: 16,
            intermediates: 40,
            outputs: 10,
            seed: 5,
        }),
        raw_benchmarks::mxm(8, 16, 4),
        raw_benchmarks::jacobi(12, 1),
    ]
}

fn table2(h: &mut Harness) {
    for bench in scaled_suite() {
        let program = bench.baseline_program().unwrap();
        let cycles = measure_baseline(&program);
        eprintln!("table2: {} seq cycles = {cycles}", bench.name);
        h.bench(&format!("table2/{}", bench.name), || {
            measure_baseline(&program)
        });
    }
}

fn table3(h: &mut Harness) {
    let options = CompilerOptions::default();
    for bench in scaled_suite() {
        for n in [2u32, 8] {
            let program = bench.program(n).unwrap();
            let config = MachineVariant::Base.config(n);
            let m = measure(&program, &config, &options);
            eprintln!("table3: {} @{n} = {} cycles", bench.name, m.cycles);
            h.bench(&format!("table3/{}/{n}", bench.name), || {
                measure(&program, &config, &options)
            });
        }
    }
    // Past the paper's 32-tile ceiling: one compiled benchmark on an 8x8
    // mesh, the smallest size of the event-core regime (the sparse-workload
    // sweep in benches/sim_scale.rs carries the 16x16 and 32x32 points).
    let bench = raw_benchmarks::jacobi(12, 1);
    let n = 64u32;
    let program = bench.program(n).unwrap();
    let config = MachineVariant::Base.config(n);
    let m = measure(&program, &config, &options);
    eprintln!("table3: {} @{n} = {} cycles", bench.name, m.cycles);
    h.bench(&format!("table3/{}/{n}", bench.name), || {
        measure(&program, &config, &options)
    });
}

fn fig8(h: &mut Harness) {
    let options = CompilerOptions::default();
    let bench = raw_benchmarks::fpppp_kernel(raw_benchmarks::FppppShape {
        inputs: 16,
        intermediates: 40,
        outputs: 10,
        seed: 5,
    });
    for variant in [
        MachineVariant::Base,
        MachineVariant::InfReg,
        MachineVariant::OneCycle,
    ] {
        let program = bench.program(8).unwrap();
        let config = variant.config(8);
        let m = measure(&program, &config, &options);
        eprintln!("fig8: {} = {} cycles", variant.name(), m.cycles);
        h.bench(&format!("fig8/{}", variant.name()), || {
            measure(&program, &config, &options)
        });
    }
}

fn compile_only(h: &mut Harness) {
    // Compiler throughput on the largest-block benchmark (cholesky peels into
    // one straight-line region) — tracks orchestrater scalability.
    let bench = raw_benchmarks::cholesky(1, 10);
    let program = bench.program(8).unwrap();
    let config = MachineVariant::Base.config(8);
    let options = CompilerOptions::default();
    h.bench("compile/cholesky@8", || {
        rawcc::compile(&program, &config, &options).unwrap()
    });
    // Annealing placement dominates compile time at high step counts; this
    // target tracks the incremental Δ-cost move evaluation.
    let annealing = CompilerOptions {
        placement: rawcc::PlacementAlgorithm::Annealing { seed: 7 },
        ..Default::default()
    };
    h.bench("compile/cholesky@8/annealing", || {
        rawcc::compile(&program, &config, &annealing).unwrap()
    });
}

fn main() {
    let mut h = Harness::new("paper_tables");
    table2(&mut h);
    table3(&mut h);
    fig8(&mut h);
    compile_only(&mut h);
    h.finish();
}

//! Criterion benches mirroring the paper's evaluation artifacts.
//!
//! Each measured function regenerates one *row/point* of a table or figure:
//!
//! * `table2/<bench>` — baseline (sequential) compile + simulate.
//! * `table3/<bench>/N` — RAWCC compile + simulate at N tiles.
//! * `fig8/<variant>` — fpppp-kernel under base / inf-reg / 1-cycle machines.
//!
//! Criterion tracks host wall time (useful for regression tracking of the
//! compiler and simulator themselves); the *simulated* cycle counts — the
//! paper's actual metric — are printed once per target and collected by
//! `raw-bench`/`EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raw_bench::{measure, measure_baseline, MachineVariant};
use rawcc::CompilerOptions;

fn scaled_suite() -> Vec<raw_benchmarks::Benchmark> {
    // Criterion runs each target many times; use reduced shapes.
    vec![
        raw_benchmarks::life(12, 1),
        raw_benchmarks::vpenta(12),
        raw_benchmarks::cholesky(1, 8),
        raw_benchmarks::tomcatv(12, 1),
        raw_benchmarks::fpppp_kernel(raw_benchmarks::FppppShape {
            inputs: 16,
            intermediates: 40,
            outputs: 10,
            seed: 5,
        }),
        raw_benchmarks::mxm(8, 16, 4),
        raw_benchmarks::jacobi(12, 1),
    ]
}

fn table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_baseline");
    group.sample_size(10);
    for bench in scaled_suite() {
        let program = bench.baseline_program().unwrap();
        let cycles = measure_baseline(&program);
        eprintln!("table2: {} seq cycles = {cycles}", bench.name);
        group.bench_function(bench.name, |b| {
            b.iter(|| measure_baseline(&program));
        });
    }
    group.finish();
}

fn table3(c: &mut Criterion) {
    let options = CompilerOptions::default();
    let mut group = c.benchmark_group("table3_rawcc");
    group.sample_size(10);
    for bench in scaled_suite() {
        for n in [2u32, 8] {
            let program = bench.program(n).unwrap();
            let config = MachineVariant::Base.config(n);
            let m = measure(&program, &config, &options);
            eprintln!("table3: {} @{n} = {} cycles", bench.name, m.cycles);
            group.bench_with_input(
                BenchmarkId::new(bench.name, n),
                &(program, config),
                |b, (program, config)| {
                    b.iter(|| measure(program, config, &options));
                },
            );
        }
    }
    group.finish();
}

fn fig8(c: &mut Criterion) {
    let options = CompilerOptions::default();
    let bench = raw_benchmarks::fpppp_kernel(raw_benchmarks::FppppShape {
        inputs: 16,
        intermediates: 40,
        outputs: 10,
        seed: 5,
    });
    let mut group = c.benchmark_group("fig8_fpppp");
    group.sample_size(10);
    for variant in [
        MachineVariant::Base,
        MachineVariant::InfReg,
        MachineVariant::OneCycle,
    ] {
        let program = bench.program(8).unwrap();
        let config = variant.config(8);
        let m = measure(&program, &config, &options);
        eprintln!("fig8: {} = {} cycles", variant.name(), m.cycles);
        group.bench_function(variant.name(), |b| {
            b.iter(|| measure(&program, &config, &options));
        });
    }
    group.finish();
}

fn compile_only(c: &mut Criterion) {
    // Compiler throughput on the largest-block benchmark (cholesky peels into
    // one straight-line region) — tracks orchestrater scalability.
    let bench = raw_benchmarks::cholesky(1, 10);
    let program = bench.program(8).unwrap();
    let config = MachineVariant::Base.config(8);
    let options = CompilerOptions::default();
    c.bench_function("compile/cholesky@8", |b| {
        b.iter(|| rawcc::compile(&program, &config, &options).unwrap());
    });
}

criterion_group!(benches, table2, table3, fig8, compile_only);
criterion_main!(benches);

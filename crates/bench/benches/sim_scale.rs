//! Scaling micro-benchmark for the stepping cores: the sparse workload suite
//! (`raw_bench::sim`) across mesh sizes from 4x4 to 32x32, tracked stepper vs
//! the calendar-queue event stepper. The per-target medians in
//! `BENCH_sim_scale.json` make the event core's cost-proportional-to-events
//! claim a tracked regression quantity: for a fixed workload the tracked
//! stepper's time grows with the tile count while the event stepper's stays
//! near-flat, so the `tracked`/`event` ratio at each size is the speedup
//! reported in EXPERIMENTS.md.

use raw_bench::sim::sparse_suite;
use raw_machine::{Machine, MachineConfig};
use raw_testkit::bench::Harness;

fn main() {
    let mut h = Harness::new("sim_scale");
    for &tiles in &[16u32, 64, 256, 1024] {
        let mut config = MachineConfig::square(tiles);
        // The sparse workloads touch only the first few words of each tile
        // memory. The default 64K words/tile would make each iteration memset
        // 256 MB of tile memory at 1024 tiles, drowning the stepping cost
        // this benchmark exists to measure.
        config.mem_words = 1 << 10;
        for w in sparse_suite(&config, true) {
            for (stepper, label) in [(0u8, "tracked"), (2, "event")] {
                let name = format!("sim_scale/{}/{}t/{}", w.name, tiles, label);
                h.bench(&name, || {
                    let mut m = Machine::new(config.clone(), &w.program);
                    if stepper == 2 {
                        m = m.with_event_stepper();
                    }
                    for &(tile, addr, value) in &w.init {
                        m.set_mem_word(tile, addr, value);
                    }
                    let report = m.run().unwrap();
                    let (tile, addr, expected) = w.check;
                    assert_eq!(m.mem_word(tile, addr), expected, "{name}");
                    report.cycles
                });
            }
        }
    }
    h.finish();
}

//! Golden-snapshot helper: compare rendered text against a checked-in file,
//! regenerating consciously with `UPDATE_GOLDEN=1`.
//!
//! Every golden test in the workspace funnels through [`check_golden`], so the
//! update workflow and the mismatch diagnostics are identical everywhere: on
//! mismatch the test panics with the first differing line and both texts; with
//! the `UPDATE_GOLDEN` environment variable set, the snapshot is rewritten
//! instead (review the diff like any other code change).

use std::path::Path;

/// Compares `actual` against the snapshot at `path`.
///
/// With `UPDATE_GOLDEN` set in the environment, writes `actual` to `path`
/// (creating parent directories) instead of comparing.
///
/// # Panics
///
/// Panics when the snapshot is missing (and `UPDATE_GOLDEN` is unset) or when
/// the contents differ, with a hint naming the regeneration command.
pub fn check_golden(path: &Path, actual: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(path, actual).unwrap();
        eprintln!("updated golden {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test",
            path.display()
        )
    });
    if expected != actual {
        let first_diff = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()));
        panic!(
            "golden mismatch for {} (first differing line: {}).\n\
             If the change is intentional, regenerate with \
             UPDATE_GOLDEN=1 cargo test and review the diff.\n\
             --- expected ---\n{expected}\n--- actual ---\n{actual}",
            path.display(),
            first_diff + 1
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("testkit_golden_{}_{name}", std::process::id()))
    }

    #[test]
    fn matching_snapshot_passes() {
        let path = scratch("match.txt");
        std::fs::write(&path, "hello\n").unwrap();
        check_golden(&path, "hello\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatch_panics_with_line_hint() {
        let path = scratch("mismatch.txt");
        std::fs::write(&path, "line one\nline two\n").unwrap();
        let err = std::panic::catch_unwind(|| check_golden(&path, "line one\nline 2\n"))
            .expect_err("must panic");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("first differing line: 2"), "{msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_snapshot_panics_with_hint() {
        let path = scratch("does_not_exist.txt");
        let err = std::panic::catch_unwind(|| check_golden(&path, "x")).expect_err("must panic");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("UPDATE_GOLDEN=1"), "{msg}");
    }
}

//! Miniature property-testing harness (a `proptest` stand-in).
//!
//! Design points, in order of importance:
//!
//! 1. **Determinism.** Every test has a fixed master seed derived from its
//!    name; case *i* runs from a per-case seed derived from the master. The
//!    same binary produces the same cases forever.
//! 2. **Replay.** On failure the harness prints the failing case's seed;
//!    `TESTKIT_SEED=<seed> TESTKIT_CASES=1 cargo test <name>` reruns exactly
//!    that case. `TESTKIT_CASES` alone scales the whole suite up or down.
//! 3. **Shrinking.** Failures are greedily shrunk: the harness walks
//!    [`Strategy::shrink`] candidates, descending into the first one that
//!    still fails, until a fixpoint (or a step cap) is reached.
//!
//! Strategies are composable: integer/float ranges, `any::<T>()`,
//! [`vec()`], tuples, [`Strategy::prop_map`], and [`prop_oneof!`](crate::prop_oneof). The
//! [`proptest!`](crate::proptest) macro mirrors the subset of `proptest`'s surface this
//! workspace uses.

use crate::rng::{Rng, GOLDEN_GAMMA};
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values with optional shrinking.
pub trait Strategy: Clone {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes smaller variants of a failing value, most aggressive first.
    /// The default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`. Mapped strategies do not shrink
    /// (the mapping is not invertible); rely on structural shrinking of the
    /// enclosing collection instead.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> T + Clone,
        T: Clone + Debug,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently-typed strategies of one value
    /// type can share a container (see [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used behind [`BoxedStrategy`].
trait ObjStrategy<T> {
    fn obj_generate(&self, rng: &mut Rng) -> T;
    fn obj_shrink(&self, value: &T) -> Vec<T>;
}

impl<S: Strategy> ObjStrategy<S::Value> for S {
    fn obj_generate(&self, rng: &mut Rng) -> S::Value {
        self.generate(rng)
    }
    fn obj_shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn ObjStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        self.0.obj_generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.obj_shrink(value)
    }
}

// ---------------------------------------------------------------------------
// Scalar strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let lo = self.start;
                let mut out = Vec::new();
                if *v != lo {
                    out.push(lo);
                    let mid = lo + (*v - lo) / 2;
                    if mid != lo && mid != *v {
                        out.push(mid);
                    }
                    let prev = *v - 1;
                    if prev != lo && prev != mid {
                        out.push(prev);
                    }
                }
                out
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let lo = self.start;
                if *v == lo {
                    return Vec::new();
                }
                let mid = lo + (*v - lo) / 2.0;
                if mid == *v { vec![lo] } else { vec![lo, mid] }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Full-range strategy for a primitive (the `any::<T>()` of `proptest`).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates a full-range strategy for `T`. Shrinks toward zero by halving.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                if *v == 0 {
                    return Vec::new();
                }
                let half = *v / 2;
                if half == 0 { vec![0] } else { vec![0, half] }
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut Rng) -> f32 {
        // Finite, sign-symmetric, moderate magnitude: practical test inputs.
        (rng.gen_f32() - 0.5) * 2e6
    }
    fn shrink(&self, v: &f32) -> Vec<f32> {
        if *v == 0.0 {
            return Vec::new();
        }
        vec![0.0, v / 2.0]
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T + Clone,
    T: Clone + Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased strategies (see [`prop_oneof!`](crate::prop_oneof)).
#[derive(Clone)]
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

/// Builds a [`OneOf`] from pre-boxed options.
///
/// # Panics
///
/// Panics if `options` is empty.
#[must_use]
pub fn oneof<T: Clone + Debug>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!options.is_empty(), "oneof requires at least one option");
    OneOf { options }
}

impl<T: Clone + Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Vector of values from an element strategy, with a length range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// `proptest::collection::vec` equivalent: `len` is half-open.
#[must_use]
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let mut out = Vec::new();
        // Structural shrinks first: halve, then drop single elements.
        if v.len() / 2 >= min && v.len() / 2 < v.len() {
            out.push(v[..v.len() / 2].to_vec());
        }
        if v.len() > min {
            for i in (0..v.len()).rev().take(16) {
                let mut smaller = v.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Element-wise shrinks on a bounded prefix.
        for (i, elem) in v.iter().enumerate().take(16) {
            for cand in self.elem.shrink(elem) {
                let mut variant = v.clone();
                variant[i] = cand;
                out.push(variant);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut variant = v.clone();
                        variant.$idx = cand;
                        out.push(variant);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of cases to run (`TESTKIT_CASES` overrides).
    pub cases: u32,
    /// Master seed (`TESTKIT_SEED` overrides; `None` derives from the test
    /// name so every test gets an independent fixed stream).
    pub seed: Option<u64>,
    /// Cap on accepted shrink steps.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 32,
            seed: None,
            max_shrink_steps: 400,
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(e) => panic!("bad {name}={raw}: {e}"),
    }
}

thread_local! {
    static IN_PROP_CASE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that silences panics raised
/// inside a property case — the runner catches them and reports the shrunk
/// counterexample itself. Panics outside property cases behave as before.
fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_PROP_CASE.with(|f| f.get()) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `test` on a case value, capturing any panic as `Err(message)`.
fn run_case<V, F: Fn(V)>(test: &F, value: V) -> Result<(), String> {
    IN_PROP_CASE.with(|f| f.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
    IN_PROP_CASE.with(|f| f.set(false));
    outcome.map_err(|payload| panic_message(payload.as_ref()))
}

/// Runs a property: `config.cases` cases of `strategy`, shrinking and
/// reporting the first failure.
///
/// # Panics
///
/// Panics (failing the enclosing test) when a case fails, after printing the
/// minimal counterexample and its replay seed.
pub fn run<S: Strategy>(name: &str, config: Config, strategy: S, test: impl Fn(S::Value)) {
    install_quiet_hook();
    let master = env_u64("TESTKIT_SEED")
        .or(config.seed)
        .unwrap_or_else(|| crate::hash_str(name));
    let cases = env_u64("TESTKIT_CASES")
        .map(|c| c.max(1) as u32)
        .unwrap_or(config.cases);

    for case in 0..cases {
        // Case 0 runs from the master seed itself so TESTKIT_SEED=<printed
        // seed> TESTKIT_CASES=1 replays a failure exactly.
        let case_seed = master.wrapping_add((case as u64).wrapping_mul(GOLDEN_GAMMA));
        let mut rng = Rng::new(case_seed);
        let value = strategy.generate(&mut rng);

        let Err(first_error) = run_case(&test, value.clone()) else {
            continue;
        };

        // Greedy shrink: descend into the first failing candidate.
        let mut minimal = value;
        let mut last_error = first_error;
        let mut steps = 0u32;
        'shrinking: while steps < config.max_shrink_steps {
            for candidate in strategy.shrink(&minimal) {
                if let Err(e) = run_case(&test, candidate.clone()) {
                    minimal = candidate;
                    last_error = e;
                    steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }

        eprintln!("proptest '{name}' failed at case {case}/{cases} (after {steps} shrink steps)");
        eprintln!("  minimal counterexample: {minimal:?}");
        eprintln!("  replay: TESTKIT_SEED={case_seed:#x} TESTKIT_CASES=1 cargo test {name}");
        eprintln!("  (note: replay reruns the un-shrunk case)");
        panic!("property '{name}' failed: {last_error}");
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Mirrors the `proptest!` surface this workspace
/// uses:
///
/// ```
/// raw_testkit::proptest! {
///     #![cases(16)]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         raw_testkit::prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
///
/// In test code, put `#[test]` in front of each `fn` as usual — the macro
/// passes attributes through.
#[macro_export]
macro_rules! proptest {
    (#![cases($cases:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cases) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::prop::Config::default().cases) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cases:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $crate::prop::Config {
                    cases: $cases,
                    ..$crate::prop::Config::default()
                };
                let strategy = ($($strat,)+);
                $crate::prop::run(
                    stringify!($name),
                    config,
                    strategy,
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::prop::oneof(::std::vec![
            $($crate::prop::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a property; failures are caught, shrunk, and reported by
/// the runner.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Equality assertion inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let strat = vec(0i64..1000, 1..20);
        let gen_all = || -> Vec<Vec<i64>> {
            (0..10)
                .map(|case| {
                    let seed = 1234u64.wrapping_add((case as u64).wrapping_mul(GOLDEN_GAMMA));
                    strat.generate(&mut Rng::new(seed))
                })
                .collect()
        };
        assert_eq!(gen_all(), gen_all());
    }

    #[test]
    fn shrinking_finds_small_counterexample() {
        // Property "no element >= 100" fails; the minimal counterexample is a
        // single-element vector (structural shrink) whose value shrank toward
        // the range floor while still failing (>= 100).
        let strat = vec(0i64..1000, 1..30);
        let mut minimal: Option<Vec<i64>> = None;
        for case in 0..200u32 {
            let seed = 99u64.wrapping_add((case as u64).wrapping_mul(GOLDEN_GAMMA));
            let value = strat.generate(&mut Rng::new(seed));
            let fails = |v: &Vec<i64>| v.iter().any(|&x| x >= 100);
            if !fails(&value) {
                continue;
            }
            let mut current = value;
            'shrinking: loop {
                for cand in strat.shrink(&current) {
                    if fails(&cand) {
                        current = cand;
                        continue 'shrinking;
                    }
                }
                break;
            }
            minimal = Some(current);
            break;
        }
        let minimal = minimal.expect("some case should fail");
        assert_eq!(minimal, std::vec![100]);
    }

    #[test]
    fn oneof_draws_every_option() {
        let strat = crate::prop_oneof![
            (0i64..1).prop_map(|_| "a"),
            (0i64..1).prop_map(|_| "b"),
            (0i64..1).prop_map(|_| "c"),
        ];
        let mut rng = Rng::new(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let strat = (0i64..100, 0i64..100);
        let shrinks = strat.shrink(&(50, 0));
        assert!(shrinks.iter().all(|&(_, b)| b == 0));
        assert!(shrinks.contains(&(0, 0)));
    }

    proptest! {
        #![cases(16)]
        #[test]
        fn harness_passes_true_properties(v in vec(any::<i16>(), 1..50), k in 1usize..8) {
            let doubled: Vec<i32> = v.iter().map(|&x| x as i32 * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
            prop_assert!((1..8).contains(&k));
        }
    }

    #[test]
    fn replay_seed_reproduces_failing_case() {
        // The failure report prints the per-case seed; running with that seed
        // as master (what TESTKIT_SEED does) and one case must regenerate the
        // exact failing value.
        let strat = vec(0i64..1000, 1..30);
        let master = crate::hash_str("replay_demo");
        let fails = |v: &Vec<i64>| v.iter().sum::<i64>() > 2000;
        let (case, value) = (0..100u32)
            .find_map(|case| {
                let seed = master.wrapping_add((case as u64).wrapping_mul(GOLDEN_GAMMA));
                let v = strat.generate(&mut Rng::new(seed));
                fails(&v).then_some((case, v))
            })
            .expect("some case should fail");
        // Replay: master := printed case seed, case 0.
        let printed_seed = master.wrapping_add((case as u64).wrapping_mul(GOLDEN_GAMMA));
        let replayed = strat.generate(&mut Rng::new(printed_seed));
        assert_eq!(replayed, value);
        assert!(fails(&replayed));
    }

    #[test]
    fn failing_property_panics_and_is_quiet_about_it() {
        let result = catch_unwind(|| {
            run(
                "always_fails",
                Config {
                    cases: 4,
                    ..Config::default()
                },
                0i64..10,
                |_| panic!("intentional"),
            );
        });
        assert!(result.is_err());
    }
}

//! Micro-benchmark harness (a `criterion` stand-in).
//!
//! Each target is measured as: warmup runs, then `samples` timed samples.
//! Fast targets are auto-batched so one sample lasts at least ~1 ms. The
//! summary (median / p10 / p90 per iteration) prints to stderr, and one JSON
//! line per target is appended to `BENCH_<suite>.json` in the working
//! directory (override the directory with `BENCH_DIR`), so external tooling
//! can track regressions without parsing human output.
//!
//! Environment knobs: `BENCH_SAMPLES` (default 15), `BENCH_WARMUP`
//! (default 2), `BENCH_DIR` (default `.`).

use std::io::Write as _;
use std::time::Instant;

/// Summary statistics of one benchmark target, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Record {
    /// Target name, e.g. `table3/mxm/8`.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations batched per sample.
    pub iters_per_sample: u64,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 10th percentile.
    pub p10_ns: f64,
    /// 90th percentile.
    pub p90_ns: f64,
    /// Mean.
    pub mean_ns: f64,
}

impl Record {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"samples\":{},\"iters_per_sample\":{},\
             \"median_ns\":{:.1},\"p10_ns\":{:.1},\"p90_ns\":{:.1},\"mean_ns\":{:.1}}}",
            escape(&self.name),
            self.samples,
            self.iters_per_sample,
            self.median_ns,
            self.p10_ns,
            self.p90_ns,
            self.mean_ns,
        )
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// A benchmark suite: measures targets, prints summaries, writes JSON lines.
pub struct Harness {
    suite: String,
    samples: usize,
    warmup: usize,
    records: Vec<Record>,
}

impl Harness {
    /// Creates a harness for suite `name` (the JSON file is
    /// `BENCH_<name>.json`).
    #[must_use]
    pub fn new(name: &str) -> Self {
        Harness {
            suite: name.to_string(),
            samples: env_usize("BENCH_SAMPLES", 15),
            warmup: env_usize("BENCH_WARMUP", 2),
            records: Vec::new(),
        }
    }

    /// Measures one target. `f` is the complete unit of work; its return
    /// value is consumed with [`std::hint::black_box`] so the work is not
    /// optimised away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        // Calibrate batch size so one sample lasts >= ~1 ms.
        let probe = Instant::now();
        std::hint::black_box(f());
        let once_ns = probe.elapsed().as_nanos().max(1);
        let iters = (1_000_000 / once_ns).max(1) as u64;

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));

        let record = Record {
            name: name.to_string(),
            samples: self.samples,
            iters_per_sample: iters,
            median_ns: percentile(&per_iter, 0.5),
            p10_ns: percentile(&per_iter, 0.1),
            p90_ns: percentile(&per_iter, 0.9),
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
        };
        eprintln!(
            "bench {:<40} median {:>12.1} ns  p10 {:>12.1}  p90 {:>12.1}  ({} samples x {} iters)",
            record.name, record.median_ns, record.p10_ns, record.p90_ns, record.samples, iters,
        );
        self.records.push(record);
    }

    /// Records measured so far (for tests and custom reporting).
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Writes `BENCH_<suite>.json` (one JSON object per line, overwriting any
    /// previous run of the same suite) and prints its path.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn finish(self) {
        let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.suite));
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.json());
            out.push('\n');
        }
        let mut file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        file.write_all(out.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!(
            "bench suite '{}': {} records -> {}",
            self.suite,
            self.records.len(),
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_batches_fast_work() {
        let mut h = Harness {
            suite: "selftest".into(),
            samples: 5,
            warmup: 1,
            records: Vec::new(),
        };
        let mut acc = 0u64;
        h.bench("fast/add", || {
            acc = acc.wrapping_add(1);
            acc
        });
        let r = &h.records()[0];
        assert_eq!(r.samples, 5);
        assert!(r.iters_per_sample >= 1);
        assert!(r.median_ns > 0.0);
        assert!(r.p10_ns <= r.median_ns && r.median_ns <= r.p90_ns);
    }

    #[test]
    fn json_line_is_wellformed() {
        let r = Record {
            name: "a\"b\\c".into(),
            samples: 3,
            iters_per_sample: 7,
            median_ns: 1.5,
            p10_ns: 1.0,
            p90_ns: 2.0,
            mean_ns: 1.6,
        };
        let j = r.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\\\"b\\\\c"));
        assert!(j.contains("\"samples\":3"));
    }

    #[test]
    fn finish_writes_jsonl_file() {
        let dir = std::env::temp_dir().join("raw_testkit_bench_selftest");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("BENCH_DIR", &dir);
        let mut h = Harness {
            suite: "selftest_file".into(),
            samples: 2,
            warmup: 0,
            records: Vec::new(),
        };
        h.bench("x", || 1 + 1);
        h.finish();
        std::env::remove_var("BENCH_DIR");
        let text = std::fs::read_to_string(dir.join("BENCH_selftest_file.json")).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"name\":\"x\""));
    }
}

//! Hermetic test and benchmark toolkit.
//!
//! The build environment has no access to crates.io, so the workspace cannot
//! depend on `rand`, `proptest`, or `criterion`. This crate replaces all
//! three with small, deterministic, dependency-free equivalents:
//!
//! * [`Rng`] — a splitmix64-seeded xorshift64\* generator (the same family as
//!   the simulator's chaos source) with `gen_range` / `gen_bool` / `shuffle`,
//!   used by the seeded workload generators in `raw-benchmarks`.
//! * [`prop`] — a miniature property-testing harness: composable strategies,
//!   fixed-seed case generation, greedy shrinking, and seed replay via the
//!   `TESTKIT_SEED` / `TESTKIT_CASES` environment variables.
//! * [`bench`](mod@bench) — a micro-benchmark harness (warmup + timed samples,
//!   median/p10/p90) that appends JSON lines to `BENCH_<suite>.json`.
//! * [`golden`] — the golden-snapshot comparator shared by every pinned-text
//!   test, with `UPDATE_GOLDEN=1` regeneration.
//!
//! Everything is deterministic by construction: the same seed always produces
//! the same stream, the same cases, and the same generated workloads. Golden
//! hashes ([`hash64`]) pin generator output across PRs.

pub mod bench;
pub mod golden;
pub mod prop;
pub mod rng;

pub use golden::check_golden;
pub use rng::Rng;

/// FNV-1a 64-bit hash, used to pin golden output (generated benchmark
/// sources, initial data) so accidental generator drift fails loudly.
#[must_use]
pub fn hash64(bytes: &[u8]) -> u64 {
    hash64_with(0xcbf2_9ce4_8422_2325, bytes)
}

/// FNV-1a 64-bit hash continued from an arbitrary `basis` — chain calls to
/// hash multi-part inputs without concatenating, or pick an independent basis
/// for a second hash (the block cache builds its 128-bit keys this way).
#[must_use]
pub fn hash64_with(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`hash64`] over a string's UTF-8 bytes.
#[must_use]
pub fn hash_str(s: &str) -> u64 {
    hash64(s.as_bytes())
}

/// Prelude for property tests: the macro plus every strategy constructor.
pub mod prelude {
    pub use crate::prop::{any, oneof, vec, Config, Strategy};
    pub use crate::rng::Rng;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable() {
        // Pinned: if FNV-1a changes, every golden hash in the workspace is
        // invalid, so pin the hash function itself.
        assert_eq!(hash_str(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_str("raw"), 0x89f6_c119_60ff_5191);
        assert_ne!(hash_str("a"), hash_str("b"));
    }
}

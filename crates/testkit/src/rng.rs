//! Deterministic pseudo-random number generation.
//!
//! The generator is xorshift64\* (Vigna) seeded through one round of
//! splitmix64 — the same family as the simulator's chaos source
//! (`raw_machine::chaos`). It is *not* cryptographic; it exists so seeded
//! workload generation and property tests are reproducible bit-for-bit on
//! every platform with no external crates.

use std::ops::Range;

/// Golden gamma: the splitmix64 increment, also used to derive per-case
/// seeds in the property harness.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One round of splitmix64: advances `state` and returns a mixed output.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xorshift64\* generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Any seed is valid (including 0: the
    /// state is mixed through splitmix64 and forced nonzero).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = splitmix64(&mut s);
        Rng {
            state: if state == 0 { GOLDEN_GAMMA } else { state },
        }
    }

    /// Creates a generator whose seed is derived from a name — used by the
    /// benchmark suite so each workload gets an independent stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let seed = name.bytes().fold(0xbead_cafe_u64, |acc, b| {
            acc.wrapping_mul(131).wrapping_add(b as u64)
        });
        Rng::new(seed)
    }

    /// Next raw 64-bit value (xorshift64\*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` (24 bits of precision).
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// Integer sampling uses a modulo draw — a bias below 2⁻³² for the spans
    /// used here, which deterministic tests can live with.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, &range)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleRange: Copy + PartialOrd {
    /// Draws one value in `[range.start, range.end)`.
    fn sample(rng: &mut Rng, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: &Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "empty range {}..{}", range.start, range.end
                );
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                let off = rng.next_u64() % span;
                (range.start as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_float {
    ($($t:ty, $gen:ident);* $(;)?) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: &Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "empty range {}..{}", range.start, range.end
                );
                let v = range.start + rng.$gen() * (range.end - range.start);
                // Guard the open end against rounding.
                if v >= range.end { range.start } else { v }
            }
        }
    )*};
}

impl_sample_float!(f32, gen_f32; f64, gen_f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut r = Rng::new(0);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..2000 {
            let v = r.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let f = r.gen_range(0.25f32..1.75);
            assert!((0.25..1.75).contains(&f));
            let d = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut r = Rng::new(11);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_rate_roughly_matches() {
        let mut r = Rng::new(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut r = Rng::new(3);
        for _ in 0..5000 {
            let f = r.gen_f32();
            assert!((0.0..1.0).contains(&f));
            let d = r.gen_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn from_name_streams_differ() {
        let a = Rng::from_name("life").next_u64();
        let b = Rng::from_name("jacobi").next_u64();
        assert_ne!(a, b);
    }
}

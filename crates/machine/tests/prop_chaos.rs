//! Property tests for the chaos source: streams are deterministic per seed
//! and hit their configured stall rate, for random seeds drawn from the
//! testkit RNG.

use raw_machine::chaos::{Chaos, ChaosConfig};
use raw_testkit::prelude::*;

raw_testkit::proptest! {
    /// Any (seed, rate) pair yields a reproducible stream whose empirical
    /// stall rate lands near the configured probability.
    #[test]
    fn chaos_is_deterministic_and_rate_accurate(
        seed in any::<u64>(),
        pct_idx in 0usize..4,
    ) {
        let stall_percent = [5u32, 20, 50, 80][pct_idx];
        let cfg = ChaosConfig { seed, stall_percent };
        let draw = || -> Vec<bool> {
            let mut c = Chaos::new(cfg);
            (0..10_000).map(|_| c.stall()).collect()
        };
        let a = draw();
        prop_assert_eq!(&a, &draw());
        let hits = a.iter().filter(|&&s| s).count();
        let expected = 100 * stall_percent as usize; // out of 10_000
        let slack = 500; // 5 percentage points
        prop_assert!(
            hits + slack > expected && hits < expected + slack,
            "rate {}% produced {} stalls / 10000", stall_percent, hits
        );
    }
}

//! The dynamic network: a dimension-ordered wormhole router per tile plus a
//! remote-memory message handler (paper §3.1 and §5.1).
//!
//! Messages are sequences of word-sized flits: a header (encoding kind, source,
//! destination, and payload length) followed by payload words. Flits move one
//! hop per cycle per link; a message's flits stay contiguous (wormhole), with an
//! output port locked to one input until the current message's tail passes.
//! Routing is X-then-Y dimension ordered, which is deadlock-free on a mesh.
//!
//! Each tile also has a **remote-memory handler**: when a `LoadReq`/`StoreReq`
//! message arrives, the handler performs the local memory access (after the
//! normal memory latency) and sends back a `LoadReply`/`StoreAck`. The handler
//! is modelled as a small autonomous unit so remote traffic does not perturb the
//! tile's statically scheduled processor — the property that makes static
//! schedules robust to dynamic events.

use crate::isa::Word;
use std::collections::VecDeque;

/// The four dynamic message kinds used by the remote-memory protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Request: read one word at a local address. Payload: `[local_addr]`.
    LoadReq,
    /// Response to `LoadReq`. Payload: `[value]`.
    LoadReply,
    /// Request: write one word. Payload: `[local_addr, value]`.
    StoreReq,
    /// Response to `StoreReq`. Payload: `[]`.
    StoreAck,
}

impl MsgKind {
    fn encode(self) -> u32 {
        match self {
            MsgKind::LoadReq => 0,
            MsgKind::LoadReply => 1,
            MsgKind::StoreReq => 2,
            MsgKind::StoreAck => 3,
        }
    }

    fn decode(v: u32) -> MsgKind {
        match v {
            0 => MsgKind::LoadReq,
            1 => MsgKind::LoadReply,
            2 => MsgKind::StoreReq,
            3 => MsgKind::StoreAck,
            other => panic!("bad message kind {other}"),
        }
    }

    /// True for messages consumed by the handler (requests); false for
    /// messages consumed by the processor (responses).
    pub fn for_handler(self) -> bool {
        matches!(self, MsgKind::LoadReq | MsgKind::StoreReq)
    }
}

/// An assembled dynamic-network message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynMsg {
    /// Message kind.
    pub kind: MsgKind,
    /// Source tile index.
    pub src: u32,
    /// Destination tile index.
    pub dest: u32,
    /// Payload words.
    pub payload: Vec<Word>,
}

impl DynMsg {
    /// Encodes into header + payload flits.
    ///
    /// Header layout (most- to least-significant): 2-bit kind, 11-bit source
    /// tile, 11-bit destination tile, 8-bit payload length — sized for the
    /// event-driven core's large-mesh regime (up to 2048 tiles; the original
    /// 8-bit tile fields silently truncated indices past a 16×16 mesh).
    pub fn to_flits(&self) -> Vec<Word> {
        debug_assert!(
            self.src < (1 << 11) && self.dest < (1 << 11),
            "tile index does not fit the 11-bit header field"
        );
        debug_assert!(self.payload.len() < (1 << 8), "payload too long");
        let header = (self.kind.encode() << 30)
            | ((self.src & 0x7ff) << 19)
            | ((self.dest & 0x7ff) << 8)
            | (self.payload.len() as u32 & 0xff);
        let mut flits = Vec::with_capacity(1 + self.payload.len());
        flits.push(header);
        flits.extend_from_slice(&self.payload);
        flits
    }

    /// Decodes a header flit into `(kind, src, dest, payload_len)`.
    pub fn decode_header(header: Word) -> (MsgKind, u32, u32, usize) {
        (
            MsgKind::decode(header >> 30),
            (header >> 19) & 0x7ff,
            (header >> 8) & 0x7ff,
            (header & 0xff) as usize,
        )
    }
}

/// Per-tile interface between the dynamic network and the processor/handler.
#[derive(Debug)]
pub struct DynEndpoint {
    inject: VecDeque<Word>,
    inject_cap: usize,
    /// Assembled responses awaiting the processor.
    pub proc_inbox: VecDeque<DynMsg>,
    /// Assembled requests awaiting the remote-memory handler.
    pub handler_inbox: VecDeque<DynMsg>,
}

impl DynEndpoint {
    /// Creates an endpoint whose injection FIFO holds `inject_cap` flits.
    pub fn new(inject_cap: usize) -> Self {
        DynEndpoint {
            inject: VecDeque::new(),
            inject_cap,
            proc_inbox: VecDeque::new(),
            handler_inbox: VecDeque::new(),
        }
    }

    /// True if a message of `flits` total flits can be injected atomically.
    pub fn can_inject(&self, flits: usize) -> bool {
        self.inject.len() + flits <= self.inject_cap
    }

    /// Injects a whole message (atomically, preserving flit contiguity).
    ///
    /// # Panics
    ///
    /// Panics if there is not enough space; check
    /// [`can_inject`](Self::can_inject) first.
    pub fn inject(&mut self, msg: DynMsg) {
        let flits = msg.to_flits();
        assert!(self.can_inject(flits.len()), "dynamic inject overflow");
        self.inject.extend(flits);
    }

    /// True if nothing is buffered at this endpoint (used for quiescence).
    pub fn is_idle(&self) -> bool {
        self.inject.is_empty() && self.proc_inbox.is_empty() && self.handler_inbox.is_empty()
    }

    /// True while flits await injection into the local router (the router
    /// must stay on the hot worklist until it drains them).
    pub fn inject_backlog(&self) -> bool {
        !self.inject.is_empty()
    }
}

const NUM_PORTS: usize = 5; // N, E, S, W, Local
const LOCAL: usize = 4;

#[derive(Debug, Default)]
struct RouterState {
    /// Input FIFOs: N, E, S, W, Local (fed from the endpoint's inject queue).
    in_q: [VecDeque<Word>; NUM_PORTS],
    /// Per-output wormhole lock: (input port, payload flits remaining).
    out_lock: [Option<(usize, usize)>; NUM_PORTS],
    /// Round-robin arbitration pointer per output.
    rr: [usize; NUM_PORTS],
    /// Eject reassembly buffer.
    reasm: Vec<Word>,
    reasm_need: usize,
}

/// The whole-machine dynamic network: one wormhole router per tile.
///
/// Two stepping entry points share the same per-router logic:
/// [`step`](Self::step) scans every router (the reference stepper's path) and
/// [`step_hot`](Self::step_hot) visits only the hot worklist — routers that
/// hold flits or were [`poke`](Self::poke)d because their endpoint gained
/// injection backlog. The differential suites compare the two bit-for-bit.
#[derive(Debug)]
pub struct DynNet {
    #[allow(dead_code)]
    rows: u32,
    cols: u32,
    fifo_cap: usize,
    routers: Vec<RouterState>,
    /// Membership flags for `work` (dedup guard).
    hot: Vec<bool>,
    /// Routers to visit on the next `step_hot` (unsorted; sorted on drain).
    work: Vec<usize>,
    /// Tiles whose endpoint received a complete message during the last step
    /// (the machine puts their handlers/processors under watch).
    delivered: Vec<usize>,
    /// Per-(tile, input-port) count of flits staged this cycle; persistent to
    /// avoid an O(tiles) allocation per step, reset entry-wise after use.
    staged_count: Vec<[usize; NUM_PORTS]>,
    /// Total flits buffered in router FIFOs and reassembly buffers: an O(1)
    /// [`is_idle`](Self::is_idle) for the per-cycle quiescence check.
    buffered: usize,
}

impl DynNet {
    /// Creates the network for a `rows × cols` mesh with per-link FIFO depth
    /// `fifo_cap`.
    pub fn new(rows: u32, cols: u32, fifo_cap: usize) -> Self {
        let n = (rows * cols) as usize;
        DynNet {
            rows,
            cols,
            fifo_cap,
            routers: (0..n).map(|_| RouterState::default()).collect(),
            hot: vec![false; n],
            work: Vec::new(),
            delivered: Vec::new(),
            staged_count: vec![[0; NUM_PORTS]; n],
            buffered: 0,
        }
    }

    /// Puts router `t` on the hot worklist for the next [`step_hot`](Self::step_hot).
    ///
    /// The machine pokes a router whenever tile `t`'s endpoint may have
    /// gained injection backlog (a processor issued a dynamic access, a
    /// handler injected a reply); all other hotness — buffered flits,
    /// incoming staged transfers — is maintained internally.
    pub fn poke(&mut self, t: usize) {
        if !self.hot[t] {
            self.hot[t] = true;
            self.work.push(t);
        }
    }

    /// Tiles that completed message reassembly during the last step (either
    /// inbox); cleared at the start of every step.
    pub fn delivered(&self) -> &[usize] {
        &self.delivered
    }

    fn coords(&self, t: usize) -> (u32, u32) {
        (t as u32 / self.cols, t as u32 % self.cols)
    }

    /// Output port (0=N,1=E,2=S,3=W,4=eject) for a header destined to `dest`,
    /// X-then-Y dimension ordered.
    fn route_port(&self, here: usize, dest: u32) -> usize {
        let (r, c) = self.coords(here);
        let (dr, dc) = self.coords(dest as usize);
        if dc > c {
            1 // East
        } else if dc < c {
            3 // West
        } else if dr > r {
            2 // South
        } else if dr < r {
            0 // North
        } else {
            LOCAL
        }
    }

    fn neighbor(&self, t: usize, port: usize) -> usize {
        let (r, c) = self.coords(t);
        let (nr, nc) = match port {
            0 => (r - 1, c),
            1 => (r, c + 1),
            2 => (r + 1, c),
            3 => (r, c - 1),
            _ => unreachable!(),
        };
        (nr * self.cols + nc) as usize
    }

    /// True if no flit is buffered anywhere in the network (O(1): the flit
    /// count is maintained by feed and eject).
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.buffered == 0,
            self.routers
                .iter()
                .all(|r| r.in_q.iter().all(|q| q.is_empty()) && r.reasm.is_empty()),
            "buffered-flit counter out of sync"
        );
        self.buffered == 0
    }

    /// Advances the network one cycle by scanning every router (the
    /// reference stepper's path). Returns `true` if any flit moved.
    ///
    /// `endpoints[t]` supplies tile `t`'s injection queue and receives its
    /// ejected messages.
    pub fn step(&mut self, endpoints: &mut [DynEndpoint]) -> bool {
        // The full scan visits everything, so pending hot marks are moot;
        // step_tiles regenerates them from the post-step state.
        for i in 0..self.work.len() {
            self.hot[self.work[i]] = false;
        }
        self.work.clear();
        let all: Vec<usize> = (0..self.routers.len()).collect();
        self.step_tiles(&all, endpoints)
    }

    /// Advances the network one cycle visiting only the hot worklist:
    /// routers holding flits plus routers [`poke`](Self::poke)d since the
    /// last step. Observationally identical to [`step`](Self::step) — a
    /// router that is neither fed nor holds flits cannot move anything — at
    /// cost proportional to live traffic rather than mesh size.
    pub fn step_hot(&mut self, endpoints: &mut [DynEndpoint]) -> bool {
        let mut work = std::mem::take(&mut self.work);
        // Ascending tile order: FIFO-capacity arbitration between routers
        // must resolve exactly as the reference scan's 0..n loop does.
        work.sort_unstable();
        for &t in &work {
            self.hot[t] = false;
        }
        self.step_tiles(&work, endpoints)
    }

    /// One cycle over `tiles` (ascending, deduplicated). Shared between the
    /// full scan and the hot-worklist paths.
    fn step_tiles(&mut self, tiles: &[usize], endpoints: &mut [DynEndpoint]) -> bool {
        let mut progress = false;
        self.delivered.clear();

        // 1. Feed one flit per tile from the endpoint inject queue into the
        //    router's local input port.
        for &t in tiles {
            let router = &mut self.routers[t];
            if router.in_q[LOCAL].len() < self.fifo_cap {
                if let Some(f) = endpoints[t].inject.pop_front() {
                    router.in_q[LOCAL].push_back(f);
                    self.buffered += 1;
                    progress = true;
                }
            }
        }

        // 2. Per router, per output port: move at most one flit. Cross-router
        //    transfers are staged and applied after all routers have decided,
        //    making the step order-independent.
        let mut staged: Vec<(usize, usize, Word)> = Vec::new(); // (tile, port, flit)

        for &t in tiles {
            for out in 0..NUM_PORTS {
                // Which input currently owns this output?
                let owner = match self.routers[t].out_lock[out] {
                    Some((input, _)) => Some(input),
                    None => {
                        // Arbitrate: find an input whose head is a header routed
                        // to this output, round-robin from rr[out].
                        let start = self.routers[t].rr[out];
                        let mut found = None;
                        for k in 0..NUM_PORTS {
                            let input = (start + k) % NUM_PORTS;
                            if let Some(&head) = self.routers[t].in_q[input].front() {
                                // Only a header can claim a free output; inputs
                                // mid-message are owned by some other output.
                                if self.input_is_at_header(t, input)
                                    && self.route_port(t, DynMsg::decode_header(head).2) == out
                                {
                                    found = Some(input);
                                    break;
                                }
                            }
                        }
                        if let Some(input) = found {
                            let head = *self.routers[t].in_q[input].front().unwrap();
                            let (.., len) = DynMsg::decode_header(head);
                            self.routers[t].out_lock[out] = Some((input, len + 1));
                            self.routers[t].rr[out] = (input + 1) % NUM_PORTS;
                        }
                        self.routers[t].out_lock[out].map(|(i, _)| i)
                    }
                };
                let Some(input) = owner else { continue };
                // Try to move one flit from `input` to `out`.
                if self.routers[t].in_q[input].is_empty() {
                    continue;
                }
                let can = if out == LOCAL {
                    true // eject reassembly is unbounded
                } else {
                    let nb = self.neighbor(t, out);
                    let nb_port = opposite(out);
                    self.routers[nb].in_q[nb_port].len() + self.staged_count[nb][nb_port]
                        < self.fifo_cap
                };
                if !can {
                    continue;
                }
                let flit = self.routers[t].in_q[input].pop_front().unwrap();
                progress = true;
                // Update the wormhole lock.
                let (_, remaining) = self.routers[t].out_lock[out].unwrap();
                if remaining == 1 {
                    self.routers[t].out_lock[out] = None;
                } else {
                    self.routers[t].out_lock[out] = Some((input, remaining - 1));
                }
                if out == LOCAL {
                    self.eject(t, flit, endpoints);
                } else {
                    let nb = self.neighbor(t, out);
                    let nb_port = opposite(out);
                    self.staged_count[nb][nb_port] += 1;
                    staged.push((nb, nb_port, flit));
                }
            }
        }

        for &(t, port, _) in &staged {
            self.staged_count[t][port] = 0;
        }
        for (t, port, flit) in staged {
            self.routers[t].in_q[port].push_back(flit);
            // The receiving router has a flit to move next cycle.
            self.poke(t);
        }
        // 3. Re-mark visited routers that still hold flits or whose endpoint
        //    kept injection backlog (e.g. a full local FIFO this cycle).
        for &t in tiles {
            if self.routers[t].in_q.iter().any(|q| !q.is_empty()) || endpoints[t].inject_backlog() {
                self.poke(t);
            }
        }
        progress
    }

    /// True if the head of `input` at router `t` is a message header (i.e. the
    /// input is not in the middle of a message owned by some output lock).
    fn input_is_at_header(&self, t: usize, input: usize) -> bool {
        !self.routers[t]
            .out_lock
            .iter()
            .any(|l| matches!(l, Some((i, _)) if *i == input))
    }

    fn eject(&mut self, t: usize, flit: Word, endpoints: &mut [DynEndpoint]) {
        let r = &mut self.routers[t];
        if r.reasm.is_empty() {
            let (.., len) = DynMsg::decode_header(flit);
            r.reasm_need = len + 1;
        }
        r.reasm.push(flit);
        if r.reasm.len() == r.reasm_need {
            let (kind, src, dest, _) = DynMsg::decode_header(r.reasm[0]);
            let msg = DynMsg {
                kind,
                src,
                dest,
                payload: r.reasm[1..].to_vec(),
            };
            let flits = r.reasm.len();
            r.reasm.clear();
            r.reasm_need = 0;
            debug_assert_eq!(dest as usize, t, "message ejected at wrong tile");
            if kind.for_handler() {
                endpoints[t].handler_inbox.push_back(msg);
            } else {
                endpoints[t].proc_inbox.push_back(msg);
            }
            // The message left the network: drop its flits from the buffered
            // count and report the delivery so the machine can watch tile t.
            self.buffered -= flits;
            self.delivered.push(t);
        }
    }
}

fn opposite(port: usize) -> usize {
    match port {
        0 => 2,
        1 => 3,
        2 => 0,
        3 => 1,
        _ => unreachable!(),
    }
}

/// The per-tile remote-memory handler.
#[derive(Debug, Default)]
pub struct Handler {
    current: Option<(DynMsg, u64)>, // (request, done_at)
}

impl Handler {
    /// Creates an idle handler.
    pub fn new() -> Self {
        Handler::default()
    }

    /// True if no request is in flight.
    pub fn is_idle(&self) -> bool {
        self.current.is_none()
    }

    /// Steps the handler: accepts one request, services it after `mem_latency`
    /// cycles, and injects the response. Returns `true` on progress.
    pub fn step(
        &mut self,
        tile: u32,
        cycle: u64,
        mem_latency: u32,
        mem: &mut [Word],
        ep: &mut DynEndpoint,
    ) -> bool {
        if self.current.is_none() {
            if let Some(req) = ep.handler_inbox.pop_front() {
                self.current = Some((req, cycle + mem_latency as u64));
                return true;
            }
            return false;
        }
        let (req, done_at) = self.current.as_ref().unwrap();
        if cycle < *done_at {
            return false;
        }
        let reply = match req.kind {
            MsgKind::LoadReq => {
                let addr = req.payload[0] as usize;
                let value = mem[addr];
                DynMsg {
                    kind: MsgKind::LoadReply,
                    src: tile,
                    dest: req.src,
                    payload: vec![value],
                }
            }
            MsgKind::StoreReq => {
                let addr = req.payload[0] as usize;
                mem[addr] = req.payload[1];
                DynMsg {
                    kind: MsgKind::StoreAck,
                    src: tile,
                    dest: req.src,
                    payload: vec![],
                }
            }
            other => panic!("handler received non-request {other:?}"),
        };
        if ep.can_inject(reply.to_flits().len()) {
            ep.inject(reply);
            self.current = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let msg = DynMsg {
            kind: MsgKind::StoreReq,
            src: 3,
            dest: 7,
            payload: vec![100, 42],
        };
        let flits = msg.to_flits();
        assert_eq!(flits.len(), 3);
        let (kind, src, dest, len) = DynMsg::decode_header(flits[0]);
        assert_eq!((kind, src, dest, len), (MsgKind::StoreReq, 3, 7, 2));
    }

    #[test]
    fn message_crosses_mesh() {
        // 2x2 mesh: tile 0 sends a LoadReply to tile 3 (1 hop E + 1 hop S).
        let mut net = DynNet::new(2, 2, 4);
        let mut eps: Vec<DynEndpoint> = (0..4).map(|_| DynEndpoint::new(16)).collect();
        eps[0].inject(DynMsg {
            kind: MsgKind::LoadReply,
            src: 0,
            dest: 3,
            payload: vec![99],
        });
        let mut cycles = 0;
        while eps[3].proc_inbox.is_empty() && cycles < 50 {
            net.step(&mut eps);
            cycles += 1;
        }
        let msg = eps[3].proc_inbox.pop_front().expect("message delivered");
        assert_eq!(msg.payload, vec![99]);
        assert!(net.is_idle());
        // Sanity on latency: ~1 cycle injection feed + 2 hops + eject flits.
        assert!(cycles <= 12, "took {cycles} cycles");
    }

    #[test]
    fn request_routes_to_handler_inbox() {
        let mut net = DynNet::new(1, 2, 4);
        let mut eps: Vec<DynEndpoint> = (0..2).map(|_| DynEndpoint::new(16)).collect();
        eps[0].inject(DynMsg {
            kind: MsgKind::LoadReq,
            src: 0,
            dest: 1,
            payload: vec![5],
        });
        for _ in 0..20 {
            net.step(&mut eps);
        }
        assert_eq!(eps[1].handler_inbox.len(), 1);
        assert!(eps[1].proc_inbox.is_empty());
    }

    #[test]
    fn handler_services_load_and_store() {
        let mut ep = DynEndpoint::new(16);
        let mut mem = vec![0u32; 32];
        mem[5] = 77;
        let mut h = Handler::new();
        ep.handler_inbox.push_back(DynMsg {
            kind: MsgKind::LoadReq,
            src: 2,
            dest: 0,
            payload: vec![5],
        });
        let mut cycle = 0;
        while !(h.is_idle() && ep.handler_inbox.is_empty() && !ep.inject.is_empty()) {
            h.step(0, cycle, 2, &mut mem, &mut ep);
            cycle += 1;
            assert!(cycle < 20);
        }
        // Reply flits are in the inject queue: header + value.
        let header = ep.inject[0];
        let (kind, _, dest, _) = DynMsg::decode_header(header);
        assert_eq!(kind, MsgKind::LoadReply);
        assert_eq!(dest, 2);
        assert_eq!(ep.inject[1], 77);

        // Store request.
        let mut ep2 = DynEndpoint::new(16);
        let mut h2 = Handler::new();
        ep2.handler_inbox.push_back(DynMsg {
            kind: MsgKind::StoreReq,
            src: 1,
            dest: 0,
            payload: vec![9, 1234],
        });
        for cycle in 0..20 {
            h2.step(0, cycle, 2, &mut mem, &mut ep2);
        }
        assert_eq!(mem[9], 1234);
        assert!(!ep2.inject.is_empty(), "ack injected");
    }

    #[test]
    fn two_messages_same_link_stay_contiguous() {
        // Tiles 0 and 2 both send 2-payload messages through tile 1 to tile 1?
        // Use 1x3 mesh: 0 -> 2 and a local message 1 -> 2 contending on the
        // link 1->2. Flits of each message must arrive contiguously.
        let mut net = DynNet::new(1, 3, 2);
        let mut eps: Vec<DynEndpoint> = (0..3).map(|_| DynEndpoint::new(16)).collect();
        eps[0].inject(DynMsg {
            kind: MsgKind::StoreReq,
            src: 0,
            dest: 2,
            payload: vec![1, 11],
        });
        eps[1].inject(DynMsg {
            kind: MsgKind::StoreReq,
            src: 1,
            dest: 2,
            payload: vec![2, 22],
        });
        for _ in 0..60 {
            net.step(&mut eps);
        }
        assert_eq!(eps[2].handler_inbox.len(), 2, "both messages delivered");
        for msg in &eps[2].handler_inbox {
            match msg.src {
                0 => assert_eq!(msg.payload, vec![1, 11]),
                1 => assert_eq!(msg.payload, vec![2, 22]),
                other => panic!("unexpected source {other}"),
            }
        }
    }

    /// Injects pending messages as capacity frees, steps until the network
    /// and all endpoints drain, and panics if it fails to settle.
    fn drain(
        net: &mut DynNet,
        eps: &mut [DynEndpoint],
        pending: &mut [VecDeque<DynMsg>],
        limit: u64,
    ) {
        let mut cycles = 0u64;
        loop {
            for (t, q) in pending.iter_mut().enumerate() {
                while let Some(m) = q.front() {
                    if !eps[t].can_inject(m.payload.len() + 1) {
                        break;
                    }
                    let m = q.pop_front().unwrap();
                    eps[t].inject(m);
                }
            }
            net.step(eps);
            cycles += 1;
            assert!(cycles < limit, "network did not drain in {limit} cycles");
            let drained = pending.iter().all(|q| q.is_empty())
                && eps.iter().all(|e| e.inject.is_empty())
                && net.is_idle();
            if drained {
                break;
            }
        }
    }

    #[test]
    fn random_traffic_delivers_every_message_in_flow_order() {
        // Property sweep: random sources, destinations, kinds, and payload
        // sizes on a 4x4 mesh with shallow FIFOs. Every message must arrive
        // exactly once, bit-identical, and messages of one (src → dest) flow
        // must arrive in injection order (single dimension-ordered path +
        // FIFO links ⇒ no overtaking).
        let mut rng = raw_testkit::Rng::new(0x00D1_44E7);
        let n = 16usize;
        let mut net = DynNet::new(4, 4, 2);
        let mut eps: Vec<DynEndpoint> = (0..n).map(|_| DynEndpoint::new(8)).collect();
        let mut pending: Vec<VecDeque<DynMsg>> = vec![VecDeque::new(); n];
        let mut sent: Vec<DynMsg> = Vec::new();
        for id in 0..120i32 {
            let src = rng.gen_range(0..n as i32) as u32;
            let mut dest = rng.gen_range(0..n as i32) as u32;
            if dest == src {
                dest = (dest + 1) % n as u32;
            }
            let kind = match rng.gen_range(0..3) {
                0 => MsgKind::StoreReq,
                1 => MsgKind::LoadReq,
                _ => MsgKind::LoadReply,
            };
            // payload[0] is a unique id; per-flow ids are increasing.
            let mut payload = vec![id as Word];
            for _ in 0..rng.gen_range(0..3) {
                payload.push(rng.gen_range(0..1000) as Word);
            }
            let msg = DynMsg {
                kind,
                src,
                dest,
                payload,
            };
            pending[src as usize].push_back(msg.clone());
            sent.push(msg);
        }
        drain(&mut net, &mut eps, &mut pending, 20_000);

        let mut received: Vec<DynMsg> = Vec::new();
        for (t, ep) in eps.iter().enumerate() {
            for inbox in [&ep.handler_inbox, &ep.proc_inbox] {
                // Per-flow ordering: within one inbox (fixed dest), ids from
                // any one source must be increasing.
                let mut last_per_src = vec![-1i64; n];
                for m in inbox {
                    assert_eq!(m.dest as usize, t, "ejected at the wrong tile");
                    let id = m.payload[0] as i64;
                    assert!(
                        last_per_src[m.src as usize] < id,
                        "flow {} -> {t} reordered: {} after {}",
                        m.src,
                        id,
                        last_per_src[m.src as usize]
                    );
                    last_per_src[m.src as usize] = id;
                    received.push(m.clone());
                }
            }
        }
        assert_eq!(received.len(), sent.len(), "message count mismatch");
        let by_id = |v: &mut Vec<DynMsg>| v.sort_by_key(|m| m.payload[0]);
        by_id(&mut sent);
        by_id(&mut received);
        assert_eq!(received, sent, "delivered messages differ from injected");
    }

    #[test]
    fn converging_bursts_survive_backpressure_without_drops() {
        // Minimum-depth FIFOs (1 flit) and every tile of a 1x4 line bursting
        // at tile 3: maximum backpressure on the shared East links. Wormhole
        // flow control must stall, never drop or tear a message.
        let n = 4usize;
        let mut net = DynNet::new(1, 4, 1);
        let mut eps: Vec<DynEndpoint> = (0..n).map(|_| DynEndpoint::new(3)).collect();
        let mut pending: Vec<VecDeque<DynMsg>> = vec![VecDeque::new(); n];
        let per_tile = 10u32;
        for (t, q) in pending.iter_mut().enumerate().take(3) {
            for seq in 0..per_tile {
                q.push_back(DynMsg {
                    kind: MsgKind::StoreReq,
                    src: t as u32,
                    dest: 3,
                    payload: vec![seq, t as Word],
                });
            }
        }
        drain(&mut net, &mut eps, &mut pending, 20_000);
        let inbox = &eps[3].handler_inbox;
        assert_eq!(
            inbox.len(),
            3 * per_tile as usize,
            "dropped under backpressure"
        );
        let mut next = [0u32; 3];
        for m in inbox {
            let t = m.src as usize;
            assert_eq!(m.payload, vec![next[t], t as Word], "flow {t} reordered");
            next[t] += 1;
        }
        assert_eq!(next, [per_tile; 3]);
    }

    #[test]
    fn reassembly_frames_zero_payload_and_back_to_back_messages() {
        // Header-only messages (StoreAck) complete reassembly on a single
        // flit; a run of them racing a multi-payload message into the same
        // eject port must frame every message exactly — the reassembly buffer
        // may never splice one message's flits into another's.
        let n = 3usize;
        let mut net = DynNet::new(1, 3, 2);
        let mut eps: Vec<DynEndpoint> = (0..n).map(|_| DynEndpoint::new(16)).collect();
        let mut pending: Vec<VecDeque<DynMsg>> = vec![VecDeque::new(); n];
        for _ in 0..3 {
            pending[0].push_back(DynMsg {
                kind: MsgKind::StoreAck,
                src: 0,
                dest: 2,
                payload: vec![],
            });
        }
        for i in 0..2u32 {
            pending[1].push_back(DynMsg {
                kind: MsgKind::StoreReq,
                src: 1,
                dest: 2,
                payload: vec![i, 100 + i],
            });
        }
        drain(&mut net, &mut eps, &mut pending, 1_000);
        assert_eq!(eps[2].proc_inbox.len(), 3);
        for m in &eps[2].proc_inbox {
            assert_eq!((m.kind, m.src, m.payload.len()), (MsgKind::StoreAck, 0, 0));
        }
        assert_eq!(eps[2].handler_inbox.len(), 2);
        for (i, m) in eps[2].handler_inbox.iter().enumerate() {
            assert_eq!(
                m.payload,
                vec![i as Word, 100 + i as Word],
                "spliced payload"
            );
        }
    }

    #[test]
    fn inject_capacity_enforced() {
        let mut ep = DynEndpoint::new(4);
        assert!(ep.can_inject(4));
        assert!(!ep.can_inject(5));
        ep.inject(DynMsg {
            kind: MsgKind::StoreAck,
            src: 0,
            dest: 0,
            payload: vec![],
        });
        assert!(ep.can_inject(3));
        assert!(!ep.can_inject(4));
    }
}

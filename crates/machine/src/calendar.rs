//! Calendar queue (bucketed timing wheel) for the event-driven stepper.
//!
//! Events are `(cycle, component)` pairs hashed into a power-of-two bucket
//! array by `cycle & mask`. Insertion and per-cycle extraction are O(1)
//! amortised: the stepper visits exactly one bucket per cycle and removes the
//! entries whose cycle matches, leaving far-future events (cycle ≡ current
//! mod n_buckets) in place for a later lap of the wheel.
//!
//! The queue deliberately tolerates *stale* events — entries for a component
//! that changed state after the insertion. The stepper filters those on pop by
//! re-checking the component's mode (wake-idempotence, DESIGN.md §13), so the
//! queue never needs random-access deletion.

/// Component address packed into an event payload.
///
/// Bit 0 distinguishes the unit (0 = processor, 1 = switch); the remaining
/// bits are the tile index. Packing keeps bucket entries at 12 bytes and
/// avoids branching on an enum in the drain loop.
pub(crate) const UNIT_PROC: u32 = 0;
pub(crate) const UNIT_SWITCH: u32 = 1;

#[inline]
pub(crate) fn pack(unit: u32, tile: usize) -> u32 {
    ((tile as u32) << 1) | unit
}

/// Bucketed timing wheel keyed on cycle.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    buckets: Vec<Vec<(u64, u32)>>,
    mask: u64,
    len: usize,
}

impl CalendarQueue {
    /// Builds a wheel with at least `min_buckets` buckets (rounded up to a
    /// power of two). Sized past the common wake horizons (scoreboard
    /// latencies, remote-memory round trips) so a bucket visit rarely skips
    /// over a far-future entry.
    pub(crate) fn new(min_buckets: usize) -> Self {
        let n = min_buckets.next_power_of_two().max(2);
        CalendarQueue {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            mask: (n - 1) as u64,
            len: 0,
        }
    }

    /// Number of queued events (including stale ones).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Schedules `comp` (a [`pack`]ed component) to be visited at `cycle`.
    #[inline]
    pub(crate) fn push(&mut self, cycle: u64, comp: u32) {
        self.buckets[(cycle & self.mask) as usize].push((cycle, comp));
        self.len += 1;
    }

    /// Removes every event scheduled for exactly `cycle` and feeds it to `f`.
    ///
    /// Entries in the visited bucket with a different cycle (a later lap of
    /// the wheel) are retained. Extraction order within a cycle is
    /// unspecified; the stepper re-sorts into component order.
    #[inline]
    pub(crate) fn take_due<F: FnMut(u32)>(&mut self, cycle: u64, mut f: F) {
        let bucket = &mut self.buckets[(cycle & self.mask) as usize];
        let mut i = 0;
        while i < bucket.len() {
            if bucket[i].0 == cycle {
                let (_, comp) = bucket.swap_remove(i);
                self.len -= 1;
                f(comp);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_events_pop_exactly_once() {
        let mut q = CalendarQueue::new(4);
        q.push(3, pack(UNIT_PROC, 7));
        q.push(3, pack(UNIT_SWITCH, 2));
        q.push(7, pack(UNIT_PROC, 1)); // same bucket as 3 with 4 buckets
        let mut got = Vec::new();
        q.take_due(3, |c| got.push(c));
        got.sort_unstable();
        assert_eq!(got, vec![pack(UNIT_SWITCH, 2), pack(UNIT_PROC, 7)]);
        assert_eq!(q.len(), 1);
        let mut later = Vec::new();
        q.take_due(7, |c| later.push(c));
        assert_eq!(later, vec![pack(UNIT_PROC, 1)]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn empty_cycles_are_cheap_and_correct() {
        let mut q = CalendarQueue::new(8);
        q.push(100, pack(UNIT_PROC, 0));
        for c in 0..100 {
            q.take_due(c, |_| panic!("nothing due at {c}"));
        }
        let mut got = Vec::new();
        q.take_due(100, |c| got.push(c));
        assert_eq!(got, vec![pack(UNIT_PROC, 0)]);
    }

    #[test]
    fn wheel_wraps_far_future_events() {
        let mut q = CalendarQueue::new(2);
        for cyc in [1u64, 3, 5, 9, 17] {
            q.push(cyc, pack(UNIT_PROC, cyc as usize));
        }
        let mut seen = Vec::new();
        for c in 0..32 {
            q.take_due(c, |comp| seen.push((c, comp >> 1)));
        }
        assert_eq!(
            seen,
            vec![(1, 1), (3, 3), (5, 5), (9, 9), (17, 17)],
            "each event pops at its own cycle despite bucket collisions"
        );
    }
}

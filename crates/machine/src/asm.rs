//! Label-based assemblers for processor and switch instruction streams.
//!
//! Branch targets in [`PInst`]/[`SInst`] are absolute instruction indices; these
//! assemblers let code generators use forward-referencing symbolic labels and
//! patch the indices at [`finish`](ProcAsm::finish) time.

use crate::isa::{AluOp, Dir, Dst, PInst, SDst, SInst, SSrc, Src};
use raw_ir::{BinOp, Imm, UnOp};

/// A symbolic branch target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

const UNRESOLVED: usize = usize::MAX;

#[derive(Debug, Default)]
struct Labels {
    bound: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
}

impl Labels {
    fn new_label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    fn bind(&mut self, label: Label, at: usize) {
        assert!(self.bound[label.0].is_none(), "label bound twice at {at}");
        self.bound[label.0] = Some(at);
    }

    fn record(&mut self, inst: usize, label: Label) {
        self.fixups.push((inst, label));
    }

    fn resolve(&self, label: Label) -> usize {
        self.bound[label.0].expect("unbound label at finish")
    }
}

/// Assembler for a tile processor's instruction stream.
#[derive(Debug, Default)]
pub struct ProcAsm {
    insts: Vec<PInst>,
    labels: Labels,
}

impl ProcAsm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.new_label()
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let at = self.insts.len();
        self.labels.bind(label, at);
    }

    /// Current instruction index.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: PInst) {
        debug_assert!(
            inst.port_reads() <= 1,
            "instruction may read the input port at most once"
        );
        self.insts.push(inst);
    }

    /// Emits an ALU operation.
    pub fn alu(&mut self, op: AluOp, dst: Dst, a: Src, b: Src) {
        self.push(PInst::Alu { op, dst, a, b });
    }

    /// Emits a binary ALU operation.
    pub fn bin(&mut self, op: BinOp, dst: Dst, a: Src, b: Src) {
        self.alu(AluOp::Bin(op), dst, a, b);
    }

    /// Emits a unary ALU operation.
    pub fn un(&mut self, op: UnOp, dst: Dst, a: Src) {
        self.alu(AluOp::Un(op), dst, a, Src::Imm(Imm::I(0)));
    }

    /// Emits `dst = a + imm` (MIPS-style `addi`).
    pub fn addi(&mut self, dst: Dst, a: Src, imm: i32) {
        self.bin(BinOp::Add, dst, a, Src::Imm(Imm::I(imm)));
    }

    /// Emits `dst = imm` (load immediate).
    pub fn li(&mut self, dst: Dst, imm: Imm) {
        self.un(UnOp::Mov, dst, Src::Imm(imm));
    }

    /// Emits a register/port move.
    pub fn mov(&mut self, dst: Dst, src: Src) {
        self.un(UnOp::Mov, dst, src);
    }

    /// Emits a receive: `dst = PortIn`.
    pub fn recv(&mut self, dst: Dst) {
        self.mov(dst, Src::PortIn);
    }

    /// Emits a send: `PortOut = src`.
    pub fn send(&mut self, src: Src) {
        self.mov(Dst::PortOut, src);
    }

    /// Emits a local load.
    pub fn load(&mut self, dst: Dst, addr: Src, offset: i32) {
        self.push(PInst::Load { dst, addr, offset });
    }

    /// Emits a local store.
    pub fn store(&mut self, value: Src, addr: Src, offset: i32) {
        self.push(PInst::Store {
            value,
            addr,
            offset,
        });
    }

    /// Emits a store to a constant local address.
    pub fn store_imm_addr(&mut self, value: Src, addr: u32) {
        self.store(value, Src::Imm(Imm::I(addr as i32)), 0);
    }

    /// Emits a dynamic-network (remote) load.
    pub fn dload(&mut self, dst: Dst, gaddr: Src) {
        self.push(PInst::DLoad { dst, gaddr });
    }

    /// Emits a dynamic-network (remote) store.
    pub fn dstore(&mut self, gaddr: Src, value: Src) {
        self.push(PInst::DStore { gaddr, value });
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) {
        self.labels.record(self.insts.len(), label);
        self.insts.push(PInst::Jump(UNRESOLVED));
    }

    /// Emits a branch-if-non-zero to `label`.
    pub fn bnez(&mut self, cond: Src, label: Label) {
        self.labels.record(self.insts.len(), label);
        self.insts.push(PInst::Bnez {
            cond,
            target: UNRESOLVED,
        });
    }

    /// Emits a branch-if-zero to `label`.
    pub fn beqz(&mut self, cond: Src, label: Label) {
        self.labels.record(self.insts.len(), label);
        self.insts.push(PInst::Beqz {
            cond,
            target: UNRESOLVED,
        });
    }

    /// Emits a halt.
    pub fn halt(&mut self) {
        self.insts.push(PInst::Halt);
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.insts.push(PInst::Nop);
    }

    /// Resolves labels and returns the instruction stream.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(self) -> Vec<PInst> {
        let mut insts = self.insts;
        for (at, label) in &self.labels.fixups {
            let target = self.labels.resolve(*label);
            match &mut insts[*at] {
                PInst::Jump(t) => *t = target,
                PInst::Bnez { target: t, .. } | PInst::Beqz { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        insts
    }
}

/// Assembler for a switch's instruction stream.
#[derive(Debug, Default)]
pub struct SwitchAsm {
    insts: Vec<SInst>,
    labels: Labels,
}

impl SwitchAsm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.new_label()
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let at = self.insts.len();
        self.labels.bind(label, at);
    }

    /// Current instruction index.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Emits a `ROUTE` with the given pairs.
    ///
    /// # Panics
    ///
    /// Panics if two pairs share a destination (an output port can appear in
    /// only one route of a `ROUTE` instruction — paper §3.1).
    pub fn route(&mut self, pairs: &[(SSrc, SDst)]) {
        for (i, (_, d)) in pairs.iter().enumerate() {
            for (_, d2) in &pairs[i + 1..] {
                assert_ne!(d, d2, "duplicate destination in ROUTE");
            }
        }
        self.insts.push(SInst::Route(pairs.to_vec()));
    }

    /// Emits a single-pair route from a direction to the processor.
    pub fn route_in(&mut self, from: Dir) {
        self.route(&[(SSrc::Dir(from), SDst::Proc)]);
    }

    /// Emits a single-pair route from the processor towards a direction.
    pub fn route_out(&mut self, to: Dir) {
        self.route(&[(SSrc::Proc, SDst::Dir(to))]);
    }

    /// Emits a branch-if-non-zero on a switch register.
    pub fn bnez(&mut self, reg: u8, label: Label) {
        self.labels.record(self.insts.len(), label);
        self.insts.push(SInst::Bnez {
            reg,
            target: UNRESOLVED,
        });
    }

    /// Emits a branch-if-zero on a switch register.
    pub fn beqz(&mut self, reg: u8, label: Label) {
        self.labels.record(self.insts.len(), label);
        self.insts.push(SInst::Beqz {
            reg,
            target: UNRESOLVED,
        });
    }

    /// Emits an unconditional jump.
    pub fn jump(&mut self, label: Label) {
        self.labels.record(self.insts.len(), label);
        self.insts.push(SInst::Jump(UNRESOLVED));
    }

    /// Emits a halt.
    pub fn halt(&mut self) {
        self.insts.push(SInst::Halt);
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.insts.push(SInst::Nop);
    }

    /// Resolves labels and returns the instruction stream.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(self) -> Vec<SInst> {
        let mut insts = self.insts;
        for (at, label) in &self.labels.fixups {
            let target = self.labels.resolve(*label);
            match &mut insts[*at] {
                SInst::Jump(t) => *t = target,
                SInst::Bnez { target: t, .. } | SInst::Beqz { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_labels_resolve() {
        let mut a = ProcAsm::new();
        let end = a.new_label();
        a.jump(end);
        a.nop();
        a.bind(end);
        a.halt();
        let code = a.finish();
        assert_eq!(code[0], PInst::Jump(2));
    }

    #[test]
    fn backward_labels_resolve() {
        let mut a = ProcAsm::new();
        let top = a.new_label();
        a.bind(top);
        a.nop();
        a.bnez(Src::Reg(1), top);
        let code = a.finish();
        assert_eq!(
            code[1],
            PInst::Bnez {
                cond: Src::Reg(1),
                target: 0
            }
        );
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = ProcAsm::new();
        let l = a.new_label();
        a.jump(l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "duplicate destination")]
    fn duplicate_route_destination_panics() {
        let mut s = SwitchAsm::new();
        s.route(&[
            (SSrc::Proc, SDst::Dir(Dir::East)),
            (SSrc::Dir(Dir::West), SDst::Dir(Dir::East)),
        ]);
    }

    #[test]
    fn multicast_same_source_allowed() {
        let mut s = SwitchAsm::new();
        s.route(&[
            (SSrc::Proc, SDst::Dir(Dir::East)),
            (SSrc::Proc, SDst::Dir(Dir::West)),
            (SSrc::Proc, SDst::Proc),
        ]);
        let l = s.new_label();
        s.bind(l);
        s.bnez(3, l);
        s.halt();
        let code = s.finish();
        assert_eq!(code.len(), 3);
        assert_eq!(code[1], SInst::Bnez { reg: 3, target: 1 });
    }

    #[test]
    fn sugar_emits_expected_instructions() {
        let mut a = ProcAsm::new();
        a.li(Dst::Reg(1), Imm::I(5));
        a.addi(Dst::Reg(2), Src::Reg(1), 3);
        a.recv(Dst::Reg(3));
        a.send(Src::Reg(2));
        let code = a.finish();
        assert_eq!(code.len(), 4);
        assert!(matches!(code[2], PInst::Alu { a: Src::PortIn, .. }));
        assert!(matches!(
            code[3],
            PInst::Alu {
                dst: Dst::PortOut,
                ..
            }
        ));
    }
}

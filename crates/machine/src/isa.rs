//! Instruction sets of the tile processor and the static switch.
//!
//! The processor ISA is an R2000-like three-operand subset extended with
//! port-register operands (paper §3.1: "communication ports are exported to the
//! software as extensions to the register set"). The switch ISA consists of
//! `ROUTE` instructions — each a set of (source, destination) pairs executed
//! atomically — plus branches so the switch's instruction stream can follow the
//! program's control flow.
//!
//! Branch targets are absolute instruction indices; use the assemblers in
//! [`asm`](crate::asm) to build code with symbolic labels.

use raw_ir::{BinOp, Imm, Ty, UnOp};
use std::fmt;

/// A 32-bit machine word.
pub type Word = u32;

/// Identifies a tile; the raw index is row-major over the mesh.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(pub u32);

impl TileId {
    /// Creates a tile id from a raw row-major index.
    pub fn from_raw(i: u32) -> Self {
        TileId(i)
    }

    /// Raw row-major index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for TileId {
    fn from(i: u32) -> Self {
        TileId(i)
    }
}

impl fmt::Debug for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile{}", self.0)
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile{}", self.0)
    }
}

/// Mesh directions. Row 0 is the top row, so `North` decreases the row index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Towards row − 1.
    North,
    /// Towards col + 1.
    East,
    /// Towards row + 1.
    South,
    /// Towards col − 1.
    West,
}

impl Dir {
    /// All four directions.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Dense index (N=0, E=1, S=2, W=3).
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::East => 1,
            Dir::South => 2,
            Dir::West => 3,
        }
    }
}

/// A source operand of a processor instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Src {
    /// General-purpose register.
    Reg(u16),
    /// Immediate (folded `li`).
    Imm(Imm),
    /// The static-network input port (consuming, blocking read).
    PortIn,
}

impl From<Imm> for Src {
    fn from(i: Imm) -> Self {
        Src::Imm(i)
    }
}

/// A destination operand of a processor instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dst {
    /// General-purpose register.
    Reg(u16),
    /// The static-network output port (blocking write).
    PortOut,
}

/// ALU function: any IR binary or unary operator.
///
/// Reusing the IR operator enums keeps evaluation semantics bit-identical
/// between the golden-model interpreter and the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Two-source operation.
    Bin(BinOp),
    /// One-source operation (second operand ignored).
    Un(UnOp),
}

impl AluOp {
    /// Latency under the Table-1 model (the machine config may override to 1).
    pub fn table1_latency(self) -> u32 {
        match self {
            AluOp::Bin(op) => op.latency(),
            AluOp::Un(op) => op.latency(),
        }
    }

    /// Evaluates on raw words, decoding operands per the operator's type.
    pub fn eval(self, a: Word, b: Word) -> Word {
        match self {
            AluOp::Bin(op) => {
                let ty = op.operand_ty();
                op.eval(Imm::from_bits(a, ty), Imm::from_bits(b, ty))
                    .to_bits()
            }
            AluOp::Un(op) => {
                // Mov is polymorphic on bits; other unaries decode per operand type.
                let ty = op.operand_ty().unwrap_or(Ty::I32);
                if op == UnOp::Mov {
                    a
                } else {
                    op.eval(Imm::from_bits(a, ty)).to_bits()
                }
            }
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AluOp::Bin(op) => write!(f, "{op}"),
            AluOp::Un(op) => write!(f, "{op}"),
        }
    }
}

/// An absolute instruction index (resolved branch target).
pub type Target = usize;

/// Processor instructions.
///
/// Every field is plain data, so the whole instruction is `Copy` — the
/// simulator fetches by value without touching the heap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PInst {
    /// ALU operation: `dst = op(a, b)`. For unary ops `b` is ignored.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: Dst,
        /// First source.
        a: Src,
        /// Second source.
        b: Src,
    },
    /// Local memory load: `dst = mem[addr + offset]` (word addressed).
    Load {
        /// Destination.
        dst: Dst,
        /// Base address source.
        addr: Src,
        /// Word offset.
        offset: i32,
    },
    /// Local memory store: `mem[addr + offset] = value`.
    Store {
        /// Value to store.
        value: Src,
        /// Base address source.
        addr: Src,
        /// Word offset.
        offset: i32,
    },
    /// Remote load over the dynamic network (blocking): `dst = gmem[gaddr]`.
    ///
    /// The global address interleaves the home tile in its low-order bits
    /// (paper Figure 7): home = `gaddr mod n_tiles`, local = `gaddr / n_tiles`.
    DLoad {
        /// Destination.
        dst: Dst,
        /// Global (interleaved) word address.
        gaddr: Src,
    },
    /// Remote store over the dynamic network (blocks until acknowledged).
    DStore {
        /// Global (interleaved) word address.
        gaddr: Src,
        /// Value to store.
        value: Src,
    },
    /// Unconditional jump.
    Jump(Target),
    /// Branch if `cond != 0`.
    Bnez {
        /// Condition source.
        cond: Src,
        /// Branch target.
        target: Target,
    },
    /// Branch if `cond == 0`.
    Beqz {
        /// Condition source.
        cond: Src,
        /// Branch target.
        target: Target,
    },
    /// Stop this processor.
    Halt,
    /// Do nothing for a cycle.
    Nop,
}

impl PInst {
    /// Source operands of the instruction.
    pub fn sources(&self) -> Vec<Src> {
        match self {
            PInst::Alu { op, a, b, .. } => match op {
                AluOp::Un(_) => vec![*a],
                AluOp::Bin(_) => vec![*a, *b],
            },
            PInst::Load { addr, .. } => vec![*addr],
            PInst::Store { value, addr, .. } => vec![*value, *addr],
            PInst::DLoad { gaddr, .. } => vec![*gaddr],
            PInst::DStore { gaddr, value } => vec![*gaddr, *value],
            PInst::Bnez { cond, .. } | PInst::Beqz { cond, .. } => vec![*cond],
            PInst::Jump(_) | PInst::Halt | PInst::Nop => vec![],
        }
    }

    /// Destination operand, if any.
    pub fn dst(&self) -> Option<Dst> {
        match self {
            PInst::Alu { dst, .. } | PInst::Load { dst, .. } | PInst::DLoad { dst, .. } => {
                Some(*dst)
            }
            _ => None,
        }
    }

    /// Number of `PortIn` source operands (at most one is legal).
    pub fn port_reads(&self) -> usize {
        self.sources()
            .iter()
            .filter(|s| matches!(s, Src::PortIn))
            .count()
    }
}

/// A source of a switch route pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SSrc {
    /// Input port from a neighbouring switch.
    Dir(Dir),
    /// Input port from this tile's processor.
    Proc,
    /// A switch register.
    Reg(u8),
}

/// A destination of a switch route pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SDst {
    /// Output port towards a neighbouring switch.
    Dir(Dir),
    /// Output port towards this tile's processor.
    Proc,
    /// A switch register (used e.g. to latch a broadcast branch condition).
    Reg(u8),
}

/// Switch instructions.
#[derive(Clone, Debug, PartialEq)]
pub enum SInst {
    /// Atomically move words along all pairs. The instruction stalls until
    /// every source has a word and every destination can accept one; an input
    /// port listed in several pairs is a multicast and is consumed once.
    Route(Vec<(SSrc, SDst)>),
    /// Branch if switch register `reg` is non-zero.
    Bnez {
        /// Register holding the condition.
        reg: u8,
        /// Branch target.
        target: Target,
    },
    /// Branch if switch register `reg` is zero.
    Beqz {
        /// Register holding the condition.
        reg: u8,
        /// Branch target.
        target: Target,
    },
    /// Unconditional jump.
    Jump(Target),
    /// Stop this switch.
    Halt,
    /// Do nothing for a cycle.
    Nop,
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "r{r}"),
            Src::Imm(i) => write!(f, "{i}"),
            Src::PortIn => write!(f, "$csti"),
        }
    }
}

impl fmt::Display for Dst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dst::Reg(r) => write!(f, "r{r}"),
            Dst::PortOut => write!(f, "$csto"),
        }
    }
}

impl fmt::Display for PInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PInst::Alu { op, dst, a, b } => match op {
                AluOp::Un(u) => write!(f, "{u} {dst}, {a}"),
                AluOp::Bin(_) => write!(f, "{op} {dst}, {a}, {b}"),
            },
            PInst::Load { dst, addr, offset } => write!(f, "lw {dst}, {offset}({addr})"),
            PInst::Store {
                value,
                addr,
                offset,
            } => write!(f, "sw {value}, {offset}({addr})"),
            PInst::DLoad { dst, gaddr } => write!(f, "dlw {dst}, [{gaddr}]"),
            PInst::DStore { gaddr, value } => write!(f, "dsw {value}, [{gaddr}]"),
            PInst::Jump(t) => write!(f, "j {t}"),
            PInst::Bnez { cond, target } => write!(f, "bnez {cond}, {target}"),
            PInst::Beqz { cond, target } => write!(f, "beqz {cond}, {target}"),
            PInst::Halt => write!(f, "halt"),
            PInst::Nop => write!(f, "nop"),
        }
    }
}

impl fmt::Display for SSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SSrc::Dir(Dir::North) => write!(f, "$cNi"),
            SSrc::Dir(Dir::East) => write!(f, "$cEi"),
            SSrc::Dir(Dir::South) => write!(f, "$cSi"),
            SSrc::Dir(Dir::West) => write!(f, "$cWi"),
            SSrc::Proc => write!(f, "$cPi"),
            SSrc::Reg(r) => write!(f, "r{r}"),
        }
    }
}

impl fmt::Display for SDst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SDst::Dir(Dir::North) => write!(f, "$cNo"),
            SDst::Dir(Dir::East) => write!(f, "$cEo"),
            SDst::Dir(Dir::South) => write!(f, "$cSo"),
            SDst::Dir(Dir::West) => write!(f, "$cWo"),
            SDst::Proc => write!(f, "$cPo"),
            SDst::Reg(r) => write!(f, "r{r}"),
        }
    }
}

impl fmt::Display for SInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SInst::Route(pairs) => {
                write!(f, "route ")?;
                for (i, (s, d)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}->{d}")?;
                }
                Ok(())
            }
            SInst::Bnez { reg, target } => write!(f, "bnez r{reg}, {target}"),
            SInst::Beqz { reg, target } => write!(f, "beqz r{reg}, {target}"),
            SInst::Jump(t) => write!(f, "j {t}"),
            SInst::Halt => write!(f, "halt"),
            SInst::Nop => write!(f, "nop"),
        }
    }
}

/// The code loaded onto one tile.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TileCode {
    /// Processor instruction stream.
    pub proc: Vec<PInst>,
    /// Switch instruction stream.
    pub switch: Vec<SInst>,
}

/// A complete program for the machine: one [`TileCode`] per tile, row-major.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MachineProgram {
    /// Per-tile code, indexed by [`TileId`].
    pub tiles: Vec<TileCode>,
}

impl MachineProgram {
    /// An empty program (every tile halts immediately) for `n` tiles.
    pub fn empty(n: usize) -> Self {
        MachineProgram {
            tiles: (0..n)
                .map(|_| TileCode {
                    proc: vec![PInst::Halt],
                    switch: vec![SInst::Halt],
                })
                .collect(),
        }
    }

    /// Total instruction count (processor + switch) across all tiles.
    pub fn num_insts(&self) -> usize {
        self.tiles
            .iter()
            .map(|t| t.proc.len() + t.switch.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_opposites() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
        assert_eq!(Dir::North.opposite(), Dir::South);
        assert_eq!(Dir::East.opposite(), Dir::West);
    }

    #[test]
    fn alu_eval_decodes_types() {
        let add = AluOp::Bin(BinOp::Add);
        assert_eq!(add.eval(5, (-3i32) as u32), 2);
        let addf = AluOp::Bin(BinOp::AddF);
        assert_eq!(
            addf.eval(1.5f32.to_bits(), 2.25f32.to_bits()),
            3.75f32.to_bits()
        );
        let mov = AluOp::Un(UnOp::Mov);
        let nan_bits = f32::NAN.to_bits() | 0x1234;
        assert_eq!(
            mov.eval(nan_bits, 0),
            nan_bits,
            "mov must be bit-transparent"
        );
    }

    #[test]
    fn pinst_sources_and_dst() {
        let i = PInst::Alu {
            op: AluOp::Bin(BinOp::Add),
            dst: Dst::Reg(3),
            a: Src::Reg(1),
            b: Src::PortIn,
        };
        assert_eq!(i.sources().len(), 2);
        assert_eq!(i.dst(), Some(Dst::Reg(3)));
        assert_eq!(i.port_reads(), 1);
        assert_eq!(PInst::Halt.dst(), None);
    }

    #[test]
    fn unary_alu_ignores_second_source() {
        let i = PInst::Alu {
            op: AluOp::Un(UnOp::Neg),
            dst: Dst::Reg(1),
            a: Src::Reg(2),
            b: Src::PortIn, // must NOT count as a port read
        };
        assert_eq!(i.sources(), vec![Src::Reg(2)]);
        assert_eq!(i.port_reads(), 0);
    }

    #[test]
    fn display_renders_assembly_style() {
        let i = PInst::Alu {
            op: AluOp::Bin(BinOp::Add),
            dst: Dst::Reg(3),
            a: Src::Reg(1),
            b: Src::PortIn,
        };
        assert_eq!(i.to_string(), "add r3, r1, $csti");
        let l = PInst::Load {
            dst: Dst::PortOut,
            addr: Src::Reg(5),
            offset: 36,
        };
        assert_eq!(l.to_string(), "lw $csto, 36(r5)");
        let r = SInst::Route(vec![
            (SSrc::Proc, SDst::Dir(Dir::East)),
            (SSrc::Proc, SDst::Reg(0)),
        ]);
        assert_eq!(r.to_string(), "route $cPi->$cEo, $cPi->r0");
        assert_eq!(SInst::Bnez { reg: 0, target: 9 }.to_string(), "bnez r0, 9");
    }

    #[test]
    fn empty_program_halts_everywhere() {
        let p = MachineProgram::empty(4);
        assert_eq!(p.tiles.len(), 4);
        assert_eq!(p.num_insts(), 8);
    }
}

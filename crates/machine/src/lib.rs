//! Cycle-accurate simulator of the MIT Raw prototype (paper §3.1).
//!
//! The simulated machine is a 2-D mesh of identical tiles. Each tile contains:
//!
//! * a **processor**: a simple in-order, single-issue RISC pipeline with 32 GPRs
//!   (configurable), fully bypassed and pipelined functional units with the
//!   Table-1 latencies, and a local data memory with a 2-cycle hit latency;
//! * a **static switch**: a stripped-down sequencer with its own instruction
//!   stream of `ROUTE` instructions (plus branches so the switch can follow the
//!   program's control flow), a small register file, and ports to the processor
//!   and the four neighbouring switches;
//! * a **dynamic router**: a wormhole router used as the fallback path for
//!   memory references whose home tile is not a compile-time constant, plus a
//!   remote-memory handler that services arriving requests (paper §5.1).
//!
//! Communication ports are exposed to software as register-like operands
//! ([`Src::PortIn`](isa::Src::PortIn) / [`Dst::PortOut`](isa::Dst::PortOut))
//! with **blocking semantics**: an instruction that reads an empty input port or
//! writes a full output port stalls, providing the near-neighbour flow control
//! that makes static schedules robust to timing skew (the *static ordering
//! property*, paper Appendix A — tested here by injecting random stalls and
//! checking results are unchanged).
//!
//! The timing model matches the paper's published cost model: one cycle to
//! inject processor→switch, one cycle per switch→switch hop, one cycle
//! switch→processor, so a single-word message between neighbouring processors
//! takes four cycles end to end (Figure 4 — reproduced by an integration test).
//!
//! # Example
//!
//! Run a two-tile program where tile 0 sends `40 + 2` to tile 1 over the static
//! network:
//!
//! ```
//! use raw_machine::asm::{ProcAsm, SwitchAsm};
//! use raw_machine::config::MachineConfig;
//! use raw_machine::isa::{Dir, Dst, MachineProgram, SDst, SSrc, Src, TileCode};
//! use raw_machine::Machine;
//!
//! let config = MachineConfig::grid(1, 2);
//!
//! // Tile 0 processor: send 40 + 2 to the switch, halt.
//! let mut p0 = ProcAsm::new();
//! p0.addi(Dst::PortOut, Src::Imm(40.into()), 2);
//! p0.halt();
//! // Tile 0 switch: route the processor's word east.
//! let mut s0 = SwitchAsm::new();
//! s0.route(&[(SSrc::Proc, SDst::Dir(Dir::East))]);
//! s0.halt();
//!
//! // Tile 1 switch: route the west word to the processor.
//! let mut s1 = SwitchAsm::new();
//! s1.route(&[(SSrc::Dir(Dir::West), SDst::Proc)]);
//! s1.halt();
//! // Tile 1 processor: receive into r2, store to memory address 0, halt.
//! let mut p1 = ProcAsm::new();
//! p1.recv(Dst::Reg(2));
//! p1.store_imm_addr(Src::Reg(2), 0);
//! p1.halt();
//!
//! let program = MachineProgram {
//!     tiles: vec![
//!         TileCode { proc: p0.finish(), switch: s0.finish() },
//!         TileCode { proc: p1.finish(), switch: s1.finish() },
//!     ],
//! };
//! let mut machine = Machine::new(config, &program);
//! let report = machine.run().expect("no deadlock");
//! assert_eq!(machine.mem_word(raw_machine::TileId::from_raw(1), 0), 42);
//! assert!(report.cycles < 20);
//! ```

pub mod asm;
pub(crate) mod calendar;
pub mod channel;
pub mod chaos;
pub mod config;
pub mod dynnet;
pub mod isa;
pub mod machine;
pub mod processor;
pub mod stats;
pub mod switch;
pub mod trace;

pub use config::{LatencyModel, MachineConfig, TileMask};
pub use isa::{MachineProgram, TileCode, TileId};
pub use machine::{Machine, RunReport, SimError};
pub use trace::{ChannelInfo, ChannelRole, EventSink, NullSink, StallReason, Unit};

//! The programmable static switch.
//!
//! Each switch runs its own instruction stream of `ROUTE` instructions plus
//! branches (the prototype's switch is a stripped-down R2000 with its own
//! sequencer and a small register file, paper §3.1). A `ROUTE` stalls as a unit
//! until every source port has a word and every destination port has space —
//! this is the blocking semantics that yields near-neighbour flow control.
//!
//! The actual movement of words between channels is performed by the machine
//! stepper (which owns the channels); this module holds the switch's
//! architectural state and control flow.
//!
//! Because a stalled `ROUTE` mutates nothing, a stalled switch is safe to
//! skip: the tracked and event steppers put it to sleep and wake it when an
//! adjacent channel commits a word (a source may now be ready) *or* has a
//! word consumed (a destination may now have space). Both events are visible
//! to the machine at the channel layer, so the switch itself carries no wake
//! state — [`SwitchOutcome`] is the entire stepping contract.

use crate::isa::{SInst, Word};

/// Result of stepping a switch one cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchOutcome {
    /// The instruction executed.
    Progress,
    /// The route stalled on a port.
    Stalled,
    /// The switch has halted.
    Halted,
}

/// Architectural state of one static switch.
#[derive(Debug)]
pub struct Switch {
    pc: usize,
    halted: bool,
    regs: Vec<Word>,
}

impl Switch {
    /// Creates a switch with `regs` registers, all zero.
    pub fn new(regs: u32) -> Self {
        Switch {
            pc: 0,
            halted: false,
            regs: vec![0; regs as usize],
        }
    }

    /// True once the switch executed `halt` (or ran off its stream).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current program counter (diagnostics).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Reads a switch register.
    pub fn reg(&self, r: u8) -> Word {
        self.regs[r as usize]
    }

    /// Writes a switch register.
    pub fn set_reg(&mut self, r: u8, v: Word) {
        self.regs[r as usize] = v;
    }

    /// Fetches the current instruction, handling halt / end-of-stream.
    ///
    /// Returns `None` if the switch is (now) halted.
    pub fn fetch<'c>(&mut self, code: &'c [SInst]) -> Option<&'c SInst> {
        if self.halted {
            return None;
        }
        match code.get(self.pc) {
            Some(SInst::Halt) | None => {
                self.halted = true;
                None
            }
            Some(inst) => Some(inst),
        }
    }

    /// Executes a non-route instruction (branches, nop). Routes are executed by
    /// the machine stepper; it calls [`advance`](Self::advance) on success.
    ///
    /// # Panics
    ///
    /// Panics if called with a `Route` or `Halt` instruction.
    pub fn exec_control(&mut self, inst: &SInst) -> SwitchOutcome {
        match inst {
            SInst::Bnez { reg, target } => {
                self.pc = if self.regs[*reg as usize] != 0 {
                    *target
                } else {
                    self.pc + 1
                };
                SwitchOutcome::Progress
            }
            SInst::Beqz { reg, target } => {
                self.pc = if self.regs[*reg as usize] == 0 {
                    *target
                } else {
                    self.pc + 1
                };
                SwitchOutcome::Progress
            }
            SInst::Jump(target) => {
                self.pc = *target;
                SwitchOutcome::Progress
            }
            SInst::Nop => {
                self.pc += 1;
                SwitchOutcome::Progress
            }
            SInst::Route(_) | SInst::Halt => unreachable!("route/halt handled by stepper"),
        }
    }

    /// Advances past a successfully executed route.
    pub fn advance(&mut self) {
        self.pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{SDst, SSrc};

    #[test]
    fn fetch_halts_at_end_of_stream() {
        let mut s = Switch::new(8);
        assert!(s.fetch(&[]).is_none());
        assert!(s.halted());
    }

    #[test]
    fn fetch_halts_on_halt() {
        let mut s = Switch::new(8);
        let code = vec![SInst::Halt];
        assert!(s.fetch(&code).is_none());
        assert!(s.halted());
    }

    #[test]
    fn branches_follow_register() {
        let mut s = Switch::new(8);
        s.set_reg(2, 1);
        let bnez = SInst::Bnez { reg: 2, target: 5 };
        s.exec_control(&bnez);
        assert_eq!(s.pc(), 5);
        s.set_reg(2, 0);
        s.exec_control(&bnez);
        assert_eq!(s.pc(), 6);
        s.exec_control(&SInst::Jump(0));
        assert_eq!(s.pc(), 0);
        let beqz = SInst::Beqz { reg: 2, target: 9 };
        s.exec_control(&beqz);
        assert_eq!(s.pc(), 9);
    }

    #[test]
    fn fetch_returns_route_for_stepper() {
        let mut s = Switch::new(8);
        let code = vec![SInst::Route(vec![(SSrc::Proc, SDst::Proc)]), SInst::Halt];
        assert!(matches!(s.fetch(&code), Some(SInst::Route(_))));
        s.advance();
        assert!(s.fetch(&code).is_none());
        assert!(s.halted());
    }
}

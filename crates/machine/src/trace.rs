//! The event-sink interface for cycle-accurate tracing.
//!
//! [`Machine`](crate::Machine) is generic over an [`EventSink`] that receives a
//! stream of per-cycle events: instruction issues, stalls (with a cause
//! taxonomy), switch route firings, static-channel commits, and
//! dynamic-network activity. The default sink is [`NullSink`], whose
//! [`EventSink::ENABLED`] constant is `false`: every emission site is guarded
//! by `if S::ENABLED`, so with the null sink the compiler removes both the
//! calls *and* the construction of their arguments — tracing is zero-cost when
//! disabled.
//!
//! Sinks observe the machine; they must never influence it. The simulator
//! upholds this by construction (sink methods receive copies or shared
//! borrows, never mutable machine state), and the differential test suite
//! asserts that a traced run produces bit-identical cycle counts, statistics,
//! and final memory to an untraced one.
//!
//! The recording sink, trace model, and report renderers live in the
//! `raw-trace` crate; this module only defines the wire between the simulator
//! and any consumer. See `DESIGN.md` ("Event-sink invariants") for the exact
//! per-cycle firing and ordering guarantees.
//!
//! The firing contract is stepper-independent: the reference, tracked, and
//! event stepping cores emit the *same events in the same order* (sleep-span
//! events are settled retroactively on wake, which is why consumers clip at
//! their window boundaries), so a sink can never tell which core produced its
//! stream. Emission sites therefore live only in code shared between the
//! tracked and event paths, or in the reference scan with explicitly matched
//! timing.

use crate::isa::{Dir, SDst, SSrc};
use crate::processor::StallCause;

/// Which half of a tile an event refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Unit {
    /// The tile processor.
    Proc,
    /// The tile's static switch.
    Switch,
}

impl Unit {
    /// Display name (`"proc"` / `"switch"`).
    pub fn name(self) -> &'static str {
        match self {
            Unit::Proc => "proc",
            Unit::Switch => "switch",
        }
    }
}

/// The stall-reason taxonomy used by stall events.
///
/// Processor stalls map one-to-one from [`StallCause`]; switches stall either
/// because a route source has no word yet ([`ReceiveEmpty`](Self::ReceiveEmpty))
/// or because a route destination has no space ([`SendFull`](Self::SendFull)).
/// [`Chaos`](Self::Chaos) marks cycles skipped by random stall injection
/// (cache-miss/interrupt modelling, see [`crate::chaos`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// Waiting for a register result still in flight (scoreboard).
    Scoreboard,
    /// Waiting for space in an outgoing port or link.
    SendFull,
    /// Waiting for a word to arrive on an incoming port or link.
    ReceiveEmpty,
    /// Waiting on the dynamic network (remote-memory round trip or injection).
    DynamicNetwork,
    /// Skipped by injected chaos (random timing perturbation).
    Chaos,
}

impl StallReason {
    /// Every reason, in display/accounting order.
    pub const ALL: [StallReason; 5] = [
        StallReason::Scoreboard,
        StallReason::SendFull,
        StallReason::ReceiveEmpty,
        StallReason::DynamicNetwork,
        StallReason::Chaos,
    ];

    /// Dense index for accounting arrays (order of [`ALL`](Self::ALL)).
    pub fn index(self) -> usize {
        match self {
            StallReason::Scoreboard => 0,
            StallReason::SendFull => 1,
            StallReason::ReceiveEmpty => 2,
            StallReason::DynamicNetwork => 3,
            StallReason::Chaos => 4,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Scoreboard => "scoreboard",
            StallReason::SendFull => "send-full",
            StallReason::ReceiveEmpty => "recv-empty",
            StallReason::DynamicNetwork => "dynamic",
            StallReason::Chaos => "chaos",
        }
    }
}

impl From<StallCause> for StallReason {
    fn from(cause: StallCause) -> StallReason {
        match cause {
            StallCause::RegNotReady => StallReason::Scoreboard,
            StallCause::PortInEmpty => StallReason::ReceiveEmpty,
            StallCause::PortOutFull => StallReason::SendFull,
            StallCause::Dynamic => StallReason::DynamicNetwork,
        }
    }
}

/// What a static-network channel connects (topology metadata for traces).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelRole {
    /// Processor → switch injection port of `tile`.
    ProcToSwitch {
        /// Owning tile index.
        tile: u32,
    },
    /// Switch → processor delivery port of `tile`.
    SwitchToProc {
        /// Owning tile index.
        tile: u32,
    },
    /// Switch → neighbour-switch mesh link.
    Link {
        /// Writing tile index.
        from: u32,
        /// Reading tile index.
        to: u32,
        /// Direction of the link as seen from `from`.
        dir: Dir,
    },
}

/// Static description of one channel (see [`crate::Machine::channel_infos`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelInfo {
    /// Channel id, as used by [`EventSink::channel_commit`].
    pub id: usize,
    /// What the channel connects.
    pub role: ChannelRole,
    /// FIFO capacity in words.
    pub capacity: usize,
}

/// A consumer of simulator events.
///
/// All methods default to no-ops so sinks implement only what they need.
/// Emission sites are additionally guarded by [`ENABLED`](Self::ENABLED), so a
/// disabled sink pays nothing, not even argument construction.
///
/// Per-cycle ordering: within one cycle, events arrive as processors (by tile
/// id), then switches (by tile id), then dynamic-network activity, then
/// channel commits. Span events are retroactive: the activity-tracked stepper
/// coalesces a sleeping component's skipped cycles into one
/// [`stall_span`](Self::stall_span) emitted at wake (or at run end), covering
/// cycles strictly before the emission cycle.
pub trait EventSink {
    /// When `false`, every emission site compiles out.
    const ENABLED: bool = true;

    /// A processor made progress this cycle: an instruction issued, a pending
    /// port write drained after halt, or a dynamic-network reply completed.
    /// `pc` is the program counter before the step; `latency` the producing
    /// operation's result latency (1 when the operation has none).
    fn issue(&mut self, cycle: u64, tile: u32, pc: usize, latency: u32) {
        let _ = (cycle, tile, pc, latency);
    }

    /// A unit stalled (or was chaos-skipped) for exactly this cycle. `pc` is
    /// the stalled instruction's program counter in the unit's stream (the pc
    /// does not advance while stalled).
    fn stall(&mut self, cycle: u64, tile: u32, unit: Unit, reason: StallReason, pc: usize) {
        let _ = (cycle, tile, unit, reason, pc);
    }

    /// A unit was asleep for cycles `from..to` (retroactive, emitted at wake).
    /// `chaos_cycles` of the span were chaos skips rather than true stalls;
    /// their position within the span is not observable. `pc` is the blocked
    /// instruction's program counter (constant across the span).
    #[allow(clippy::too_many_arguments)]
    fn stall_span(
        &mut self,
        tile: u32,
        unit: Unit,
        reason: StallReason,
        from: u64,
        to: u64,
        chaos_cycles: u64,
        pc: usize,
    ) {
        let _ = (tile, unit, reason, from, to, chaos_cycles, pc);
    }

    /// A switch executed a `ROUTE` with these source→destination pairs. `pc`
    /// is the route instruction's index in the switch stream.
    fn route(&mut self, cycle: u64, tile: u32, pairs: &[(SSrc, SDst)], pc: usize) {
        let _ = (cycle, tile, pairs, pc);
    }

    /// A switch executed a control-flow instruction (branch, jump, nop) —
    /// progress without a route firing. `pc` is the instruction's index before
    /// the step.
    fn switch_control(&mut self, cycle: u64, tile: u32, pc: usize) {
        let _ = (cycle, tile, pc);
    }

    /// A channel committed its staged word at the end of `cycle`; `occupancy`
    /// is the readable queue length after the commit.
    fn channel_commit(&mut self, cycle: u64, channel: usize, occupancy: usize) {
        let _ = (cycle, channel, occupancy);
    }

    /// A unit is idle (halted and drained) from `cycle` onwards. May fire more
    /// than once for the same unit under the reference stepper; consumers
    /// should keep the minimum cycle.
    fn idle(&mut self, cycle: u64, tile: u32, unit: Unit) {
        let _ = (cycle, tile, unit);
    }

    /// The dynamic network moved at least one flit this cycle.
    fn dyn_active(&mut self, cycle: u64) {
        let _ = cycle;
    }
}

/// The disabled sink: all events compile out ([`EventSink::ENABLED`] is
/// `false`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_indices_are_dense_and_stable() {
        for (i, r) in StallReason::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(
            StallReason::from(StallCause::RegNotReady),
            StallReason::Scoreboard
        );
        assert_eq!(
            StallReason::from(StallCause::PortInEmpty),
            StallReason::ReceiveEmpty
        );
        assert_eq!(
            StallReason::from(StallCause::PortOutFull),
            StallReason::SendFull
        );
        assert_eq!(
            StallReason::from(StallCause::Dynamic),
            StallReason::DynamicNetwork
        );
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        // The default methods are callable no-ops.
        let mut s = NullSink;
        s.issue(0, 0, 0, 1);
        s.stall(0, 0, Unit::Proc, StallReason::Scoreboard, 0);
        s.idle(0, 0, Unit::Switch);
    }
}

//! The tile processor: in-order, single-issue, fully bypassed, with blocking
//! port-register operands and Table-1 functional-unit latencies.
//!
//! Functional units are pipelined: one instruction issues per cycle, and a
//! destination register becomes usable `latency` cycles after issue. A consumer
//! of a not-yet-ready register stalls at issue (scoreboard), modelling full
//! bypassing without tracking pipeline stages individually.

use crate::channel::Channel;
use crate::config::MachineConfig;
use crate::dynnet::{DynEndpoint, DynMsg, MsgKind};
use crate::isa::{Dst, PInst, Src, TileId, Word};
use std::collections::VecDeque;

/// Why a processor failed to issue this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// A source register's value is still in flight.
    RegNotReady,
    /// The static-network input port is empty.
    PortInEmpty,
    /// The static-network output port is full.
    PortOutFull,
    /// Waiting for a dynamic-network reply or injection space.
    Dynamic,
}

/// Result of stepping a processor one cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcOutcome {
    /// An instruction issued (or a pending event completed).
    Progress,
    /// The processor stalled.
    Stalled(StallCause),
    /// The processor has halted.
    Halted,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DynState {
    Idle,
    WaitLoad { dst: Dst },
    WaitStoreAck,
}

/// Architectural + micro-architectural state of one tile processor.
#[derive(Debug)]
pub struct Processor {
    tile: u32,
    pc: usize,
    halted: bool,
    regs: Vec<Word>,
    ready: Vec<u64>,
    dyn_state: DynState,
    /// Slot→physical home map for dynamic references. Empty means identity:
    /// fall back to [`MachineConfig::split_gaddr`]. Non-empty (always a power
    /// of two, set by the driver under a faulty-tile mask or co-residency)
    /// means global addresses interleave over these tiles instead.
    dyn_homes: Vec<TileId>,
    /// Port writes awaiting their producer latency: `(visible_at, word)`.
    out_pending: VecDeque<(u64, Word)>,
    /// When the last [`step`](Self::step) stalled on [`StallCause::RegNotReady`]
    /// at issue, the cycle at which the blocking register becomes ready.
    wake_hint: Option<u64>,
    /// Result latency of the operation issued by the last [`step`](Self::step)
    /// (1 when the instruction produced no delayed result).
    last_latency: u32,
}

/// Maximum number of in-flight delayed port writes before issue stalls.
const MAX_PENDING_SENDS: usize = 2;

impl Processor {
    /// Creates a processor for `tile` with `gprs` registers, all zero.
    pub fn new(tile: u32, gprs: u32) -> Self {
        Processor {
            tile,
            pc: 0,
            halted: false,
            regs: vec![0; gprs as usize],
            ready: vec![0; gprs as usize],
            dyn_state: DynState::Idle,
            dyn_homes: Vec::new(),
            out_pending: VecDeque::new(),
            wake_hint: None,
            last_latency: 1,
        }
    }

    /// True once the processor executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted && self.out_pending.is_empty()
    }

    /// Current program counter (for diagnostics).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Reads an architectural register (for tests/diagnostics).
    pub fn reg(&self, r: u16) -> Word {
        self.regs[r as usize]
    }

    /// True if a pending port write is still waiting out its producer's
    /// latency — a timed wait that resolves by itself (the deadlock detector
    /// must treat it as progress).
    pub fn has_maturing_send(&self, cycle: u64) -> bool {
        self.out_pending
            .front()
            .is_some_and(|&(when, _)| cycle < when)
    }

    /// True if no delayed port write is in flight.
    pub fn out_pending_empty(&self) -> bool {
        self.out_pending.is_empty()
    }

    /// Overrides the global-address→home mapping for dynamic references.
    /// `homes.len()` must be a power of two; pass an empty vector to restore
    /// the default [`MachineConfig::split_gaddr`] interleave.
    pub fn set_dyn_homes(&mut self, homes: Vec<TileId>) {
        assert!(
            homes.is_empty() || homes.len().is_power_of_two(),
            "dyn_homes length must be a power of two"
        );
        self.dyn_homes = homes;
    }

    /// Splits a global address into `(home tile index, local word address)`,
    /// honouring the per-processor home map when one is installed.
    fn split_dyn(&self, config: &MachineConfig, g: u32) -> (u32, u32) {
        if self.dyn_homes.is_empty() {
            let (home, local) = config.split_gaddr(g);
            (home.0, local)
        } else {
            let n = self.dyn_homes.len() as u32;
            let slot = (g & (n - 1)) as usize;
            (self.dyn_homes[slot].0, g >> n.trailing_zeros())
        }
    }

    /// If the last step stalled at issue on a not-yet-ready register, the cycle
    /// at which that register becomes ready — i.e. the earliest cycle the
    /// processor can possibly issue. Used by the activity-tracked stepper to
    /// put the processor into a timed sleep, and by the event stepper as the
    /// calendar timer for the sleeping tile. Contract: the hint must never be
    /// *later* than the actual ready cycle (a late timer would change the
    /// issue cycle and break stepper bit-identity); an early hint is harmless
    /// — the woken processor re-stalls, re-hints, and sleeps again.
    pub fn wake_hint(&self) -> Option<u64> {
        self.wake_hint
    }

    /// Result latency of the most recently issued operation (1 when it had no
    /// delayed result). Meaningful right after a [`step`](Self::step) that
    /// returned [`ProcOutcome::Progress`]; feeds issue events for tracing.
    pub fn last_issue_latency(&self) -> u32 {
        self.last_latency
    }

    fn src_ready(&self, src: Src, cycle: u64, port_in: &Channel) -> Result<(), StallCause> {
        match src {
            Src::Reg(r) => {
                if cycle >= self.ready[r as usize] {
                    Ok(())
                } else {
                    Err(StallCause::RegNotReady)
                }
            }
            Src::Imm(_) => Ok(()),
            Src::PortIn => {
                if port_in.can_read() {
                    Ok(())
                } else {
                    Err(StallCause::PortInEmpty)
                }
            }
        }
    }

    fn read_src(&self, src: Src, port_in: &mut Channel) -> Word {
        match src {
            Src::Reg(r) => self.regs[r as usize],
            Src::Imm(imm) => imm.to_bits(),
            Src::PortIn => port_in.read(),
        }
    }

    fn write_dst(&mut self, dst: Dst, value: Word, cycle: u64, latency: u32) {
        self.last_latency = latency;
        match dst {
            Dst::Reg(r) => {
                self.regs[r as usize] = value;
                self.ready[r as usize] = cycle + latency as u64;
            }
            Dst::PortOut => {
                // The word reaches the switch one cycle after the producing
                // operation completes; channel staging supplies that +1, and the
                // pending queue supplies the op latency beyond the issue cycle.
                self.out_pending
                    .push_back((cycle + latency.saturating_sub(1) as u64, value));
            }
        }
    }

    /// Steps the processor one cycle.
    ///
    /// `mem` is this tile's local data memory; `port_in`/`port_out` are the
    /// static-network channels to/from this tile's switch; `dyn_ep` is the
    /// dynamic-network endpoint.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        code: &[PInst],
        cycle: u64,
        config: &MachineConfig,
        mem: &mut [Word],
        port_in: &mut Channel,
        port_out: &mut Channel,
        dyn_ep: &mut DynEndpoint,
    ) -> ProcOutcome {
        self.wake_hint = None;
        self.last_latency = 1;
        // Drain one matured pending send per cycle (the port engine).
        let mut drained = false;
        if let Some(&(when, word)) = self.out_pending.front() {
            if cycle >= when && port_out.can_write() {
                port_out.write(word);
                self.out_pending.pop_front();
                drained = true;
            }
        }

        if self.halted {
            return if drained {
                ProcOutcome::Progress
            } else if self.out_pending.is_empty() {
                ProcOutcome::Halted
            } else if self
                .out_pending
                .front()
                .is_some_and(|&(when, _)| cycle < when)
            {
                // Timed wait for the producing op's latency — always resolves.
                ProcOutcome::Stalled(StallCause::RegNotReady)
            } else {
                ProcOutcome::Stalled(StallCause::PortOutFull)
            };
        }

        // Dynamic-network wait states block issue until the reply arrives.
        match self.dyn_state {
            DynState::WaitLoad { dst } => {
                if let Some(msg) = dyn_ep.proc_inbox.pop_front() {
                    debug_assert_eq!(msg.kind, MsgKind::LoadReply);
                    self.write_dst(dst, msg.payload[0], cycle, 1);
                    self.dyn_state = DynState::Idle;
                    return ProcOutcome::Progress;
                }
                return ProcOutcome::Stalled(StallCause::Dynamic);
            }
            DynState::WaitStoreAck => {
                if let Some(msg) = dyn_ep.proc_inbox.pop_front() {
                    debug_assert_eq!(msg.kind, MsgKind::StoreAck);
                    self.dyn_state = DynState::Idle;
                    return ProcOutcome::Progress;
                }
                return ProcOutcome::Stalled(StallCause::Dynamic);
            }
            DynState::Idle => {}
        }

        let inst = match code.get(self.pc) {
            Some(&i) => i,
            None => {
                // Running off the end is treated as halt.
                self.halted = true;
                return ProcOutcome::Progress;
            }
        };

        // Readiness checks in operand order (no side effects yet). Checked
        // inline rather than via `PInst::sources()` to keep the hot path free
        // of per-cycle allocations.
        let srcs: [Option<Src>; 2] = match inst {
            PInst::Alu { op, a, b, .. } => match op {
                crate::isa::AluOp::Un(_) => [Some(a), None],
                crate::isa::AluOp::Bin(_) => [Some(a), Some(b)],
            },
            PInst::Load { addr, .. } => [Some(addr), None],
            PInst::Store { value, addr, .. } => [Some(value), Some(addr)],
            PInst::DLoad { gaddr, .. } => [Some(gaddr), None],
            PInst::DStore { gaddr, value } => [Some(gaddr), Some(value)],
            PInst::Bnez { cond, .. } | PInst::Beqz { cond, .. } => [Some(cond), None],
            PInst::Jump(_) | PInst::Halt | PInst::Nop => [None, None],
        };
        for src in srcs.into_iter().flatten() {
            if let Err(cause) = self.src_ready(src, cycle, port_in) {
                if cause == StallCause::RegNotReady {
                    if let Src::Reg(r) = src {
                        self.wake_hint = Some(self.ready[r as usize]);
                    }
                }
                return ProcOutcome::Stalled(cause);
            }
        }
        if let Some(Dst::PortOut) = inst.dst() {
            if self.out_pending.len() >= MAX_PENDING_SENDS {
                return ProcOutcome::Stalled(StallCause::PortOutFull);
            }
        }

        match inst {
            PInst::Alu { op, dst, a, b } => {
                let av = self.read_src(a, port_in);
                let bv = match op {
                    crate::isa::AluOp::Un(_) => 0,
                    crate::isa::AluOp::Bin(_) => self.read_src(b, port_in),
                };
                let latency = config.latency.alu_latency(op);
                let val = op.eval(av, bv);
                self.write_dst(dst, val, cycle, latency);
                self.pc += 1;
            }
            PInst::Load { dst, addr, offset } => {
                let base = self.read_src(addr, port_in) as i64;
                let a = (base + offset as i64) as usize;
                let val = mem.get(a).copied().unwrap_or_else(|| {
                    panic!(
                        "tile{} load out of memory bounds: addr {a} (pc {})",
                        self.tile, self.pc
                    )
                });
                self.write_dst(dst, val, cycle, config.mem_latency);
                self.pc += 1;
            }
            PInst::Store {
                value,
                addr,
                offset,
            } => {
                let v = self.read_src(value, port_in);
                let base = self.read_src(addr, port_in) as i64;
                let a = (base + offset as i64) as usize;
                assert!(
                    a < mem.len(),
                    "tile{} store out of memory bounds: addr {a} (pc {})",
                    self.tile,
                    self.pc
                );
                mem[a] = v;
                self.pc += 1;
            }
            PInst::DLoad { dst, gaddr } => {
                if !dyn_ep.can_inject(2) {
                    return ProcOutcome::Stalled(StallCause::Dynamic);
                }
                let g = self.read_src(gaddr, port_in);
                let (home, local) = self.split_dyn(config, g);
                dyn_ep.inject(DynMsg {
                    kind: MsgKind::LoadReq,
                    src: self.tile,
                    dest: home,
                    payload: vec![local],
                });
                self.dyn_state = DynState::WaitLoad { dst };
                self.pc += 1;
            }
            PInst::DStore { gaddr, value } => {
                if !dyn_ep.can_inject(3) {
                    return ProcOutcome::Stalled(StallCause::Dynamic);
                }
                let g = self.read_src(gaddr, port_in);
                let v = self.read_src(value, port_in);
                let (home, local) = self.split_dyn(config, g);
                dyn_ep.inject(DynMsg {
                    kind: MsgKind::StoreReq,
                    src: self.tile,
                    dest: home,
                    payload: vec![local, v],
                });
                self.dyn_state = DynState::WaitStoreAck;
                self.pc += 1;
            }
            PInst::Jump(target) => {
                self.pc = target;
            }
            PInst::Bnez { cond, target } => {
                let c = self.read_src(cond, port_in);
                self.pc = if c != 0 { target } else { self.pc + 1 };
            }
            PInst::Beqz { cond, target } => {
                let c = self.read_src(cond, port_in);
                self.pc = if c == 0 { target } else { self.pc + 1 };
            }
            PInst::Halt => {
                self.halted = true;
            }
            PInst::Nop => {
                self.pc += 1;
            }
        }
        // A send whose producing op completes this cycle (e.g. a 1-cycle mov to
        // the port) must reach the switch next cycle, so drain it now unless the
        // port engine already moved a word this cycle.
        if !drained {
            if let Some(&(when, word)) = self.out_pending.front() {
                if cycle >= when && port_out.can_write() {
                    port_out.write(word);
                    self.out_pending.pop_front();
                }
            }
        }
        ProcOutcome::Progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProcAsm;
    use raw_ir::{BinOp, Imm};

    fn run_single(
        code: Vec<PInst>,
        max_cycles: u64,
    ) -> (Processor, Vec<Word>, Channel, Channel, u64) {
        let config = MachineConfig::grid(1, 1);
        let mut proc = Processor::new(0, 32);
        let mut mem = vec![0u32; 1024];
        let mut pin = Channel::new(4);
        let mut pout = Channel::new(4);
        let mut dyn_ep = DynEndpoint::new(16);
        let mut cycle = 0;
        while !proc.halted() && cycle < max_cycles {
            proc.step(
                &code,
                cycle,
                &config,
                &mut mem,
                &mut pin,
                &mut pout,
                &mut dyn_ep,
            );
            pin.commit();
            pout.commit();
            cycle += 1;
        }
        (proc, mem, pin, pout, cycle)
    }

    #[test]
    fn arithmetic_and_store() {
        let mut a = ProcAsm::new();
        a.li(Dst::Reg(1), Imm::I(40));
        a.addi(Dst::Reg(2), Src::Reg(1), 2);
        a.store_imm_addr(Src::Reg(2), 8);
        a.halt();
        let (proc, mem, ..) = run_single(a.finish(), 100);
        assert!(proc.halted());
        assert_eq!(mem[8], 42);
    }

    #[test]
    fn scoreboard_enforces_latency() {
        // mul (12 cycles) followed immediately by a dependent add: the add must
        // stall until cycle 1 + 12.
        let mut a = ProcAsm::new();
        a.bin(
            BinOp::Mul,
            Dst::Reg(1),
            Src::Imm(Imm::I(6)),
            Src::Imm(Imm::I(7)),
        );
        a.addi(Dst::Reg(2), Src::Reg(1), 0);
        a.store_imm_addr(Src::Reg(2), 0);
        a.halt();
        let (_, mem, _, _, cycles) = run_single(a.finish(), 100);
        assert_eq!(mem[0], 42);
        // issue mul at 0; add issues at 12; store at 13; halt at 14 → 15 cycles.
        assert_eq!(cycles, 15);
    }

    #[test]
    fn independent_ops_overlap_with_mul() {
        // mul at cycle 0, three independent adds at 1..3, then dependent store.
        let mut a = ProcAsm::new();
        a.bin(
            BinOp::Mul,
            Dst::Reg(1),
            Src::Imm(Imm::I(6)),
            Src::Imm(Imm::I(7)),
        );
        a.addi(Dst::Reg(3), Src::Imm(Imm::I(1)), 1);
        a.addi(Dst::Reg(4), Src::Imm(Imm::I(2)), 2);
        a.addi(Dst::Reg(5), Src::Imm(Imm::I(3)), 3);
        a.store_imm_addr(Src::Reg(1), 0);
        a.halt();
        let (_, mem, _, _, cycles) = run_single(a.finish(), 100);
        assert_eq!(mem[0], 42);
        // store must wait for mul's result at cycle 12, halts at 13 → 14 total.
        assert_eq!(cycles, 14);
    }

    #[test]
    fn load_latency_applies() {
        let mut a = ProcAsm::new();
        a.li(Dst::Reg(1), Imm::I(5));
        a.store_imm_addr(Src::Reg(1), 3);
        a.load(Dst::Reg(2), Src::Imm(Imm::I(3)), 0);
        a.addi(Dst::Reg(3), Src::Reg(2), 1);
        a.store_imm_addr(Src::Reg(3), 4);
        a.halt();
        let (_, mem, ..) = run_single(a.finish(), 100);
        assert_eq!(mem[4], 6);
    }

    #[test]
    fn port_read_blocks_until_data() {
        let config = MachineConfig::grid(1, 1);
        let mut proc = Processor::new(0, 32);
        let mut mem = vec![0u32; 64];
        let mut pin = Channel::new(4);
        let mut pout = Channel::new(4);
        let mut dyn_ep = DynEndpoint::new(16);
        let mut a = ProcAsm::new();
        a.recv(Dst::Reg(1));
        a.store_imm_addr(Src::Reg(1), 0);
        a.halt();
        let code = a.finish();
        // Three cycles with no data: all stall.
        for cycle in 0..3 {
            let out = proc.step(
                &code,
                cycle,
                &config,
                &mut mem,
                &mut pin,
                &mut pout,
                &mut dyn_ep,
            );
            assert_eq!(out, ProcOutcome::Stalled(StallCause::PortInEmpty));
            pin.commit();
        }
        pin.write(99);
        pin.commit();
        for cycle in 3..10 {
            proc.step(
                &code,
                cycle,
                &config,
                &mut mem,
                &mut pin,
                &mut pout,
                &mut dyn_ep,
            );
            pin.commit();
        }
        assert!(proc.halted());
        assert_eq!(mem[0], 99);
    }

    #[test]
    fn branch_loop_counts() {
        // r1 = 0; do { r1 += 1 } while (r1 != 5); store r1.
        let mut a = ProcAsm::new();
        a.li(Dst::Reg(1), Imm::I(0));
        let top = a.new_label();
        a.bind(top);
        a.addi(Dst::Reg(1), Src::Reg(1), 1);
        a.bin(BinOp::Sne, Dst::Reg(2), Src::Reg(1), Src::Imm(Imm::I(5)));
        a.bnez(Src::Reg(2), top);
        a.store_imm_addr(Src::Reg(1), 0);
        a.halt();
        let (_, mem, ..) = run_single(a.finish(), 1000);
        assert_eq!(mem[0], 5);
    }

    #[test]
    fn halted_processor_drains_pending_sends() {
        let config = MachineConfig::grid(1, 1);
        let mut proc = Processor::new(0, 32);
        let mut mem = vec![0u32; 16];
        let mut pin = Channel::new(4);
        let mut pout = Channel::new(4);
        let mut dyn_ep = DynEndpoint::new(16);
        let mut a = ProcAsm::new();
        a.send(Src::Imm(Imm::I(11)));
        a.halt();
        let code = a.finish();
        let mut cycle = 0;
        while !proc.halted() && cycle < 50 {
            proc.step(
                &code,
                cycle,
                &config,
                &mut mem,
                &mut pin,
                &mut pout,
                &mut dyn_ep,
            );
            pout.commit();
            cycle += 1;
        }
        assert!(proc.halted());
        assert_eq!(pout.read(), 11);
    }
}

//! Random timing perturbation ("chaos") for static-ordering tests.
//!
//! The paper's Appendix A proves that a deadlock-free static schedule produces
//! the same results under *any* timing, because blocking port semantics preserve
//! the order of communication events. To test that property, the simulator can
//! randomly stall processors and switches — modelling cache misses, interrupts,
//! and other dynamic events — and the test suite asserts that final memory is
//! bit-identical to an unperturbed run.
//!
//! The stream position is part of the observable behaviour: every stepper
//! must draw exactly one [`Chaos::stall`] value per processor and per switch
//! per cycle, in reference scan order, even for components it skips —
//! otherwise the same seed perturbs different cycles on different steppers
//! and the differential oracle loses its meaning. This contract lower-bounds
//! any chaos-enabled stepper at Ω(tiles·cycles), which is why the event
//! stepper delegates to the tracked scan whenever chaos is attached.

/// Configuration of random stall injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// RNG seed (deterministic per seed).
    pub seed: u64,
    /// Per-component, per-cycle stall probability in percent (0–100).
    pub stall_percent: u32,
}

/// Deterministic xorshift64* stream of stall decisions.
#[derive(Clone, Debug)]
pub struct Chaos {
    state: u64,
    stall_percent: u32,
}

impl Chaos {
    /// Creates a chaos source from its configuration.
    pub fn new(config: ChaosConfig) -> Self {
        Chaos {
            state: config.seed | 1,
            stall_percent: config.stall_percent.min(100),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna): good enough for stall coin flips.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Draws one stall decision.
    pub fn stall(&mut self) -> bool {
        (self.next_u64() % 100) < self.stall_percent as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = ChaosConfig {
            seed: 42,
            stall_percent: 30,
        };
        let a: Vec<bool> = {
            let mut c = Chaos::new(cfg);
            (0..100).map(|_| c.stall()).collect()
        };
        let b: Vec<bool> = {
            let mut c = Chaos::new(cfg);
            (0..100).map(|_| c.stall()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn respects_extremes() {
        let mut never = Chaos::new(ChaosConfig {
            seed: 7,
            stall_percent: 0,
        });
        assert!((0..1000).all(|_| !never.stall()));
        let mut always = Chaos::new(ChaosConfig {
            seed: 7,
            stall_percent: 100,
        });
        assert!((0..1000).all(|_| always.stall()));
    }

    #[test]
    fn rate_roughly_matches() {
        let mut c = Chaos::new(ChaosConfig {
            seed: 99,
            stall_percent: 25,
        });
        let hits = (0..10_000).filter(|_| c.stall()).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}

//! Execution statistics gathered by the simulator.
//!
//! Every counter here is part of the differential-oracle surface: the test
//! suites compare the full `Debug` rendering of [`Stats`] across the
//! reference, tracked, and event steppers (and across traced/untraced runs),
//! so all three must book identical values. New counters must therefore be
//! updated either in code shared by all steppers (`run_proc`, `run_switch`,
//! `run_dyn_phase`, `commit_dirty`) or with explicit settle logic for skipped
//! cycles, like the sleep-debt stall back-fill.

use crate::processor::StallCause;

/// Per-tile counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Processor instructions issued.
    pub proc_insts: u64,
    /// Processor stall cycles waiting on register results.
    pub stall_reg: u64,
    /// Processor stall cycles waiting on an empty input port.
    pub stall_port_in: u64,
    /// Processor stall cycles waiting on a full output port.
    pub stall_port_out: u64,
    /// Processor stall cycles waiting on the dynamic network.
    pub stall_dynamic: u64,
    /// Switch route instructions executed.
    pub switch_routes: u64,
    /// Switch stall cycles.
    pub switch_stalls: u64,
}

impl TileStats {
    /// Records a processor stall by cause.
    pub fn record_stall(&mut self, cause: StallCause) {
        match cause {
            StallCause::RegNotReady => self.stall_reg += 1,
            StallCause::PortInEmpty => self.stall_port_in += 1,
            StallCause::PortOutFull => self.stall_port_out += 1,
            StallCause::Dynamic => self.stall_dynamic += 1,
        }
    }

    /// Total processor stall cycles.
    pub fn total_stalls(&self) -> u64 {
        self.stall_reg + self.stall_port_in + self.stall_port_out + self.stall_dynamic
    }
}

/// Whole-machine counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Per-tile counters.
    pub tiles: Vec<TileStats>,
    /// Total static-network words moved (channel commits).
    pub static_words: u64,
    /// Total dynamic-network step cycles with at least one flit movement.
    pub dyn_active_cycles: u64,
}

impl Stats {
    /// Creates zeroed stats for `n` tiles.
    pub fn new(n: usize) -> Self {
        Stats {
            tiles: vec![TileStats::default(); n],
            static_words: 0,
            dyn_active_cycles: 0,
        }
    }

    /// Total processor instructions issued across tiles.
    pub fn total_insts(&self) -> u64 {
        self.tiles.iter().map(|t| t.proc_insts).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_recording() {
        let mut t = TileStats::default();
        t.record_stall(StallCause::RegNotReady);
        t.record_stall(StallCause::PortInEmpty);
        t.record_stall(StallCause::PortInEmpty);
        t.record_stall(StallCause::Dynamic);
        assert_eq!(t.stall_reg, 1);
        assert_eq!(t.stall_port_in, 2);
        assert_eq!(t.total_stalls(), 4);
    }

    #[test]
    fn machine_totals() {
        let mut s = Stats::new(2);
        s.tiles[0].proc_insts = 10;
        s.tiles[1].proc_insts = 5;
        assert_eq!(s.total_insts(), 15);
    }
}

//! Single-reader single-writer word channels with one-cycle propagation.
//!
//! A [`Channel`] models one directed static-network link (switch↔switch or
//! processor↔switch). Writes during cycle *t* are staged and become visible to
//! the reader at cycle *t + 1*; the machine calls [`Channel::commit`] once per
//! cycle to promote staged words. This makes the simulation independent of the
//! order in which components are stepped within a cycle, and gives the paper's
//! published timing (one cycle per hop).
//!
//! Every channel is single-writer and stages at most one word per cycle, so
//! the tracked and event steppers commit only a *dirty list* of channels that
//! staged this cycle instead of scanning all of them, and each commit is a
//! wake event for the channel's reader (a word arrived) and writer (staging
//! space freed). Code that stages a write outside the shared
//! `run_proc`/`run_switch` paths must also push the channel onto the dirty
//! list, or the word is silently never committed under those steppers.

use crate::isa::Word;
use std::collections::VecDeque;

/// A directed, bounded, blocking word channel.
#[derive(Clone, Debug, Default)]
pub struct Channel {
    queue: VecDeque<Word>,
    staged: Option<Word>,
    capacity: usize,
}

impl Channel {
    /// Creates a channel holding at most `capacity` words.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        Channel {
            queue: VecDeque::with_capacity(capacity),
            staged: None,
            capacity,
        }
    }

    /// True if a word is available to read this cycle.
    pub fn can_read(&self) -> bool {
        !self.queue.is_empty()
    }

    /// True if a word can be written this cycle.
    ///
    /// At most one word may be staged per cycle, and the queue (including the
    /// staged word) must not exceed capacity.
    pub fn can_write(&self) -> bool {
        self.staged.is_none() && self.queue.len() < self.capacity
    }

    /// Peeks at the word that would be read, without consuming it.
    pub fn peek(&self) -> Option<Word> {
        self.queue.front().copied()
    }

    /// Consumes and returns the front word.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty; call [`can_read`](Self::can_read) first.
    pub fn read(&mut self) -> Word {
        self.queue.pop_front().expect("read from empty channel")
    }

    /// Stages a word for visibility next cycle.
    ///
    /// # Panics
    ///
    /// Panics if the channel cannot accept a write this cycle; call
    /// [`can_write`](Self::can_write) first.
    pub fn write(&mut self, word: Word) {
        assert!(self.can_write(), "write to full channel");
        self.staged = Some(word);
    }

    /// Promotes the staged word (call exactly once per simulated cycle).
    /// Returns `true` if a word moved (used for progress detection).
    pub fn commit(&mut self) -> bool {
        if let Some(w) = self.staged.take() {
            self.queue.push_back(w);
            true
        } else {
            false
        }
    }

    /// True if a write is staged for commit at the end of this cycle (used by
    /// the activity-tracked stepper to build its dirty-channel list).
    pub fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Number of words currently readable.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no word is readable and none is staged.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.staged.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_become_visible_next_cycle() {
        let mut ch = Channel::new(4);
        assert!(!ch.can_read());
        ch.write(7);
        assert!(
            !ch.can_read(),
            "write must not be visible in the same cycle"
        );
        ch.commit();
        assert!(ch.can_read());
        assert_eq!(ch.peek(), Some(7));
        assert_eq!(ch.read(), 7);
        assert!(!ch.can_read());
    }

    #[test]
    fn one_write_per_cycle() {
        let mut ch = Channel::new(4);
        ch.write(1);
        assert!(!ch.can_write(), "second write in one cycle must block");
        ch.commit();
        assert!(ch.can_write());
    }

    #[test]
    fn capacity_blocks_writer() {
        let mut ch = Channel::new(2);
        for w in 0..2 {
            ch.write(w);
            ch.commit();
        }
        assert_eq!(ch.len(), 2);
        assert!(!ch.can_write());
        // Reader frees a slot; writer may proceed next cycle.
        let _ = ch.read();
        assert!(ch.can_write());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut ch = Channel::new(4);
        for w in [3, 1, 4] {
            ch.write(w);
            ch.commit();
        }
        assert_eq!([ch.read(), ch.read(), ch.read()], [3, 1, 4]);
    }

    #[test]
    fn commit_reports_progress() {
        let mut ch = Channel::new(1);
        assert!(!ch.commit());
        ch.write(9);
        assert!(ch.commit());
        assert!(!ch.commit());
        assert!(!ch.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty channel")]
    fn reading_empty_panics() {
        Channel::new(1).read();
    }
}

//! Machine configuration: mesh shape, register counts, and latency model.

use crate::isa::{AluOp, Dir, TileId};

/// Which operation latencies the processors use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LatencyModel {
    /// Table 1 of the paper: ADD 1, MUL 12, DIV 35, ADDF 2, MULF 4, DIVF 12, …
    #[default]
    Table1,
    /// Every compute instruction takes one cycle (the paper's `1-cycle`
    /// configuration in Figure 8; memory latency is unaffected).
    Unit,
}

impl LatencyModel {
    /// Latency of an ALU operation under this model.
    pub fn alu_latency(self, op: AluOp) -> u32 {
        match self {
            LatencyModel::Table1 => op.table1_latency(),
            LatencyModel::Unit => 1,
        }
    }
}

/// Static configuration of a simulated Raw machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Mesh rows.
    pub rows: u32,
    /// Mesh columns.
    pub cols: u32,
    /// General-purpose registers per processor (32 on the prototype; set very
    /// large for the paper's `inf-reg` configuration).
    pub gprs: u32,
    /// Registers per switch (8 on the prototype).
    pub switch_regs: u32,
    /// Local memory (cache-hit) access latency in cycles (2 on the prototype).
    pub mem_latency: u32,
    /// Words of data memory per tile.
    pub mem_words: u32,
    /// Operation latency model.
    pub latency: LatencyModel,
    /// Static-network port FIFO depth in words.
    pub port_capacity: usize,
    /// Dynamic-network link FIFO depth in flits.
    pub dyn_fifo: usize,
    /// Simulation cycle budget before aborting.
    pub step_limit: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::grid(4, 4)
    }
}

impl MachineConfig {
    /// A `rows × cols` machine with prototype defaults.
    pub fn grid(rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0, "mesh must be non-empty");
        MachineConfig {
            rows,
            cols,
            gprs: 32,
            switch_regs: 8,
            mem_latency: 2,
            mem_words: 1 << 16,
            latency: LatencyModel::Table1,
            port_capacity: 4,
            dyn_fifo: 4,
            step_limit: 4_000_000_000,
        }
    }

    /// A machine with `n` tiles in the most nearly square power-of-two mesh
    /// (the shapes used for the paper's N = 1, 2, 4, 8, 16, 32 experiments:
    /// 1×1, 1×2, 2×2, 2×4, 4×4, 4×8).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two (low-order interleaving requires it).
    pub fn square(n: u32) -> Self {
        assert!(n.is_power_of_two(), "tile count must be a power of two");
        let log = n.trailing_zeros();
        let rows = 1 << (log / 2);
        let cols = n / rows;
        MachineConfig::grid(rows, cols)
    }

    /// The paper's `inf-reg` variant: effectively unlimited registers.
    pub fn with_infinite_registers(mut self) -> Self {
        self.gprs = 1 << 16;
        self
    }

    /// The paper's `1-cycle` variant: all compute ops take one cycle.
    pub fn with_unit_latency(mut self) -> Self {
        self.latency = LatencyModel::Unit;
        self
    }

    /// Number of tiles.
    pub fn n_tiles(&self) -> u32 {
        self.rows * self.cols
    }

    /// `(row, col)` of a tile.
    pub fn coords(&self, t: TileId) -> (u32, u32) {
        (t.0 / self.cols, t.0 % self.cols)
    }

    /// Tile at `(row, col)`.
    pub fn tile_at(&self, row: u32, col: u32) -> TileId {
        debug_assert!(row < self.rows && col < self.cols);
        TileId(row * self.cols + col)
    }

    /// The neighbouring tile in `dir`, if it exists.
    pub fn neighbor(&self, t: TileId, dir: Dir) -> Option<TileId> {
        let (r, c) = self.coords(t);
        let (nr, nc) = match dir {
            Dir::North => (r.checked_sub(1)?, c),
            Dir::South => (r + 1, c),
            Dir::West => (r, c.checked_sub(1)?),
            Dir::East => (r, c + 1),
        };
        if nr < self.rows && nc < self.cols {
            Some(self.tile_at(nr, nc))
        } else {
            None
        }
    }

    /// Manhattan distance between two tiles in hops.
    pub fn hops(&self, a: TileId, b: TileId) -> u32 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// The dimension-ordered (X-then-Y) route from `a` to `b`, as a direction
    /// sequence. Empty when `a == b`.
    pub fn xy_route(&self, a: TileId, b: TileId) -> Vec<Dir> {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        let mut route = Vec::new();
        let (mut r, mut c) = (ar, ac);
        while c != bc {
            if c < bc {
                route.push(Dir::East);
                c += 1;
            } else {
                route.push(Dir::West);
                c -= 1;
            }
        }
        while r != br {
            if r < br {
                route.push(Dir::South);
                r += 1;
            } else {
                route.push(Dir::North);
                r -= 1;
            }
        }
        route
    }

    /// Splits an interleaved global word address into `(home tile, local word)`.
    ///
    /// Low-order interleaving (paper §5.2 / Figure 7): the home tile occupies
    /// the low-order bits.
    pub fn split_gaddr(&self, gaddr: u32) -> (TileId, u32) {
        let n = self.n_tiles();
        debug_assert!(n.is_power_of_two());
        (TileId(gaddr & (n - 1)), gaddr >> n.trailing_zeros())
    }

    /// Builds an interleaved global word address from home tile and local word.
    pub fn make_gaddr(&self, home: TileId, local: u32) -> u32 {
        let n = self.n_tiles();
        (local << n.trailing_zeros()) | home.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_shapes_match_paper_sizes() {
        let shapes: Vec<(u32, u32)> = [1, 2, 4, 8, 16, 32]
            .iter()
            .map(|&n| {
                let c = MachineConfig::square(n);
                (c.rows, c.cols)
            })
            .collect();
        assert_eq!(shapes, vec![(1, 1), (1, 2), (2, 2), (2, 4), (4, 4), (4, 8)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        MachineConfig::square(12);
    }

    #[test]
    fn coords_round_trip() {
        let c = MachineConfig::grid(3, 5);
        for i in 0..15 {
            let t = TileId(i);
            let (r, col) = c.coords(t);
            assert_eq!(c.tile_at(r, col), t);
        }
    }

    #[test]
    fn neighbors_respect_mesh_edges() {
        let c = MachineConfig::grid(2, 2);
        let t0 = TileId(0);
        assert_eq!(c.neighbor(t0, Dir::North), None);
        assert_eq!(c.neighbor(t0, Dir::West), None);
        assert_eq!(c.neighbor(t0, Dir::East), Some(TileId(1)));
        assert_eq!(c.neighbor(t0, Dir::South), Some(TileId(2)));
        // Neighbor relation is symmetric via opposite direction.
        for t in 0..4 {
            for d in Dir::ALL {
                if let Some(n) = c.neighbor(TileId(t), d) {
                    assert_eq!(c.neighbor(n, d.opposite()), Some(TileId(t)));
                }
            }
        }
    }

    #[test]
    fn xy_route_is_x_first_and_correct_length() {
        let c = MachineConfig::grid(4, 8);
        let a = c.tile_at(3, 1);
        let b = c.tile_at(0, 6);
        let route = c.xy_route(a, b);
        assert_eq!(route.len() as u32, c.hops(a, b));
        // X (East/West) moves must all precede Y (North/South) moves.
        let first_y = route
            .iter()
            .position(|d| matches!(d, Dir::North | Dir::South));
        if let Some(fy) = first_y {
            assert!(route[fy..]
                .iter()
                .all(|d| matches!(d, Dir::North | Dir::South)));
        }
        assert!(c.xy_route(a, a).is_empty());
    }

    #[test]
    fn gaddr_round_trip() {
        let c = MachineConfig::square(8);
        for local in [0u32, 1, 100, 9999] {
            for home in 0..8 {
                let g = c.make_gaddr(TileId(home), local);
                assert_eq!(c.split_gaddr(g), (TileId(home), local));
            }
        }
    }

    #[test]
    fn latency_model_variants() {
        use raw_ir::BinOp;
        let mul = AluOp::Bin(BinOp::Mul);
        assert_eq!(LatencyModel::Table1.alu_latency(mul), 12);
        assert_eq!(LatencyModel::Unit.alu_latency(mul), 1);
        let cfg = MachineConfig::square(4)
            .with_unit_latency()
            .with_infinite_registers();
        assert_eq!(cfg.latency, LatencyModel::Unit);
        assert!(cfg.gprs > 1000);
    }
}

//! Machine configuration: mesh shape, register counts, latency model, and
//! the faulty-tile map.

use crate::isa::{AluOp, Dir, TileId};

/// A set of faulty (dead) tiles, as a bitset over tile indices.
///
/// A masked tile's processor, switch, and local memory are dead: the compiler
/// must not place work or data there and the linker emits empty instruction
/// streams for it. The tile's *dynamic-network router* is modelled as an
/// autonomous unit that keeps forwarding wormhole traffic — only the tile's
/// own endpoints are gone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TileMask(u64);

impl TileMask {
    /// No faulty tiles.
    pub const EMPTY: TileMask = TileMask(0);

    /// Builds a mask from a list of faulty tiles.
    ///
    /// # Panics
    ///
    /// Panics on a tile index ≥ 64 (the mask covers the paper's mesh sizes).
    pub fn of(tiles: &[TileId]) -> TileMask {
        let mut m = TileMask::EMPTY;
        for &t in tiles {
            m.insert(t);
        }
        m
    }

    /// Marks `t` faulty.
    ///
    /// # Panics
    ///
    /// Panics on a tile index ≥ 64.
    pub fn insert(&mut self, t: TileId) {
        assert!(t.0 < 64, "TileMask covers tile indices 0..64");
        self.0 |= 1 << t.0;
    }

    /// True if `t` is faulty.
    pub fn contains(&self, t: TileId) -> bool {
        t.0 < 64 && self.0 & (1 << t.0) != 0
    }

    /// True if no tile is faulty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of faulty tiles.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// The raw bitset (stable fingerprint for cache keys).
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// The faulty tiles, in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = TileId> + '_ {
        (0..64).filter(|&i| self.0 & (1 << i) != 0).map(TileId)
    }
}

/// Which operation latencies the processors use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LatencyModel {
    /// Table 1 of the paper: ADD 1, MUL 12, DIV 35, ADDF 2, MULF 4, DIVF 12, …
    #[default]
    Table1,
    /// Every compute instruction takes one cycle (the paper's `1-cycle`
    /// configuration in Figure 8; memory latency is unaffected).
    Unit,
}

impl LatencyModel {
    /// Latency of an ALU operation under this model.
    pub fn alu_latency(self, op: AluOp) -> u32 {
        match self {
            LatencyModel::Table1 => op.table1_latency(),
            LatencyModel::Unit => 1,
        }
    }
}

/// Static configuration of a simulated Raw machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Mesh rows.
    pub rows: u32,
    /// Mesh columns.
    pub cols: u32,
    /// General-purpose registers per processor (32 on the prototype; set very
    /// large for the paper's `inf-reg` configuration).
    pub gprs: u32,
    /// Registers per switch (8 on the prototype).
    pub switch_regs: u32,
    /// Local memory (cache-hit) access latency in cycles (2 on the prototype).
    pub mem_latency: u32,
    /// Words of data memory per tile.
    pub mem_words: u32,
    /// Operation latency model.
    pub latency: LatencyModel,
    /// Static-network port FIFO depth in words.
    pub port_capacity: usize,
    /// Dynamic-network link FIFO depth in flits.
    pub dyn_fifo: usize,
    /// Simulation cycle budget before aborting.
    pub step_limit: u64,
    /// Faulty tiles: no code, data, or static routes may touch them.
    pub faulty: TileMask,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::grid(4, 4)
    }
}

impl MachineConfig {
    /// A `rows × cols` machine with prototype defaults.
    pub fn grid(rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0, "mesh must be non-empty");
        MachineConfig {
            rows,
            cols,
            gprs: 32,
            switch_regs: 8,
            mem_latency: 2,
            mem_words: 1 << 16,
            latency: LatencyModel::Table1,
            port_capacity: 4,
            dyn_fifo: 4,
            step_limit: 4_000_000_000,
            faulty: TileMask::EMPTY,
        }
    }

    /// A machine with `n` tiles in the most nearly square power-of-two mesh
    /// (the shapes used for the paper's N = 1, 2, 4, 8, 16, 32 experiments:
    /// 1×1, 1×2, 2×2, 2×4, 4×4, 4×8).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two (low-order interleaving requires it).
    pub fn square(n: u32) -> Self {
        assert!(n.is_power_of_two(), "tile count must be a power of two");
        let log = n.trailing_zeros();
        let rows = 1 << (log / 2);
        let cols = n / rows;
        MachineConfig::grid(rows, cols)
    }

    /// The paper's `inf-reg` variant: effectively unlimited registers.
    pub fn with_infinite_registers(mut self) -> Self {
        self.gprs = 1 << 16;
        self
    }

    /// The paper's `1-cycle` variant: all compute ops take one cycle.
    pub fn with_unit_latency(mut self) -> Self {
        self.latency = LatencyModel::Unit;
        self
    }

    /// Marks the given tiles faulty (replacing any previous mask).
    pub fn with_faulty(mut self, faulty: TileMask) -> Self {
        self.faulty = faulty;
        self
    }

    /// Number of tiles (live or faulty).
    pub fn n_tiles(&self) -> u32 {
        self.rows * self.cols
    }

    /// True if `t` is masked faulty.
    pub fn is_faulty(&self, t: TileId) -> bool {
        self.faulty.contains(t)
    }

    /// Number of live (non-faulty) tiles.
    pub fn n_live(&self) -> u32 {
        self.n_tiles() - self.faulty.len()
    }

    /// The live tiles, in ascending index order. With an empty mask this is
    /// simply `0..n_tiles()`.
    pub fn live_tiles(&self) -> Vec<TileId> {
        (0..self.n_tiles())
            .map(TileId)
            .filter(|&t| !self.is_faulty(t))
            .collect()
    }

    /// True if every live tile can reach every other through live tiles only
    /// (faulty switches cannot carry static routes). Vacuously true with one
    /// or zero live tiles.
    pub fn live_connected(&self) -> bool {
        let live = self.live_tiles();
        let Some(&start) = live.first() else {
            return true;
        };
        let n = self.n_tiles() as usize;
        let mut seen = vec![false; n];
        seen[start.index()] = true;
        let mut queue = vec![start];
        while let Some(t) = queue.pop() {
            for dir in Dir::ALL {
                if let Some(nb) = self.neighbor(t, dir) {
                    if !self.is_faulty(nb) && !seen[nb.index()] {
                        seen[nb.index()] = true;
                        queue.push(nb);
                    }
                }
            }
        }
        live.iter().all(|t| seen[t.index()])
    }

    /// Builds a faulty mask containing `dead` plus, if needed, the
    /// highest-index healthy tiles required to bring the live count down to a
    /// power of two (low-order interleaving needs one).
    ///
    /// # Panics
    ///
    /// Panics if every tile is dead.
    pub fn mask_to_pow2(&self, dead: &[TileId]) -> TileMask {
        let mut mask = TileMask::of(dead);
        let live = self.n_tiles() - mask.len();
        assert!(live > 0, "mask kills every tile");
        let target = if live.is_power_of_two() {
            live
        } else {
            1 << (31 - live.leading_zeros()) // largest power of two below live
        };
        let mut excess = live - target;
        for i in (0..self.n_tiles()).rev() {
            if excess == 0 {
                break;
            }
            let t = TileId(i);
            if !mask.contains(t) {
                mask.insert(t);
                excess -= 1;
            }
        }
        mask
    }

    /// `(row, col)` of a tile.
    pub fn coords(&self, t: TileId) -> (u32, u32) {
        (t.0 / self.cols, t.0 % self.cols)
    }

    /// Tile at `(row, col)`.
    pub fn tile_at(&self, row: u32, col: u32) -> TileId {
        debug_assert!(row < self.rows && col < self.cols);
        TileId(row * self.cols + col)
    }

    /// The neighbouring tile in `dir`, if it exists.
    pub fn neighbor(&self, t: TileId, dir: Dir) -> Option<TileId> {
        let (r, c) = self.coords(t);
        let (nr, nc) = match dir {
            Dir::North => (r.checked_sub(1)?, c),
            Dir::South => (r + 1, c),
            Dir::West => (r, c.checked_sub(1)?),
            Dir::East => (r, c + 1),
        };
        if nr < self.rows && nc < self.cols {
            Some(self.tile_at(nr, nc))
        } else {
            None
        }
    }

    /// Manhattan distance between two tiles in hops.
    pub fn hops(&self, a: TileId, b: TileId) -> u32 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// The dimension-ordered (X-then-Y) route from `a` to `b`, as a direction
    /// sequence. Empty when `a == b`.
    pub fn xy_route(&self, a: TileId, b: TileId) -> Vec<Dir> {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        let mut route = Vec::new();
        let (mut r, mut c) = (ar, ac);
        while c != bc {
            if c < bc {
                route.push(Dir::East);
                c += 1;
            } else {
                route.push(Dir::West);
                c -= 1;
            }
        }
        while r != br {
            if r < br {
                route.push(Dir::South);
                r += 1;
            } else {
                route.push(Dir::North);
                r -= 1;
            }
        }
        route
    }

    /// Splits an interleaved global word address into `(home tile, local word)`.
    ///
    /// Low-order interleaving (paper §5.2 / Figure 7): the home tile occupies
    /// the low-order bits.
    pub fn split_gaddr(&self, gaddr: u32) -> (TileId, u32) {
        let n = self.n_tiles();
        debug_assert!(n.is_power_of_two());
        (TileId(gaddr & (n - 1)), gaddr >> n.trailing_zeros())
    }

    /// Builds an interleaved global word address from home tile and local word.
    pub fn make_gaddr(&self, home: TileId, local: u32) -> u32 {
        let n = self.n_tiles();
        (local << n.trailing_zeros()) | home.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_shapes_match_paper_sizes() {
        let shapes: Vec<(u32, u32)> = [1, 2, 4, 8, 16, 32]
            .iter()
            .map(|&n| {
                let c = MachineConfig::square(n);
                (c.rows, c.cols)
            })
            .collect();
        assert_eq!(shapes, vec![(1, 1), (1, 2), (2, 2), (2, 4), (4, 4), (4, 8)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        MachineConfig::square(12);
    }

    #[test]
    fn coords_round_trip() {
        let c = MachineConfig::grid(3, 5);
        for i in 0..15 {
            let t = TileId(i);
            let (r, col) = c.coords(t);
            assert_eq!(c.tile_at(r, col), t);
        }
    }

    #[test]
    fn neighbors_respect_mesh_edges() {
        let c = MachineConfig::grid(2, 2);
        let t0 = TileId(0);
        assert_eq!(c.neighbor(t0, Dir::North), None);
        assert_eq!(c.neighbor(t0, Dir::West), None);
        assert_eq!(c.neighbor(t0, Dir::East), Some(TileId(1)));
        assert_eq!(c.neighbor(t0, Dir::South), Some(TileId(2)));
        // Neighbor relation is symmetric via opposite direction.
        for t in 0..4 {
            for d in Dir::ALL {
                if let Some(n) = c.neighbor(TileId(t), d) {
                    assert_eq!(c.neighbor(n, d.opposite()), Some(TileId(t)));
                }
            }
        }
    }

    #[test]
    fn xy_route_is_x_first_and_correct_length() {
        let c = MachineConfig::grid(4, 8);
        let a = c.tile_at(3, 1);
        let b = c.tile_at(0, 6);
        let route = c.xy_route(a, b);
        assert_eq!(route.len() as u32, c.hops(a, b));
        // X (East/West) moves must all precede Y (North/South) moves.
        let first_y = route
            .iter()
            .position(|d| matches!(d, Dir::North | Dir::South));
        if let Some(fy) = first_y {
            assert!(route[fy..]
                .iter()
                .all(|d| matches!(d, Dir::North | Dir::South)));
        }
        assert!(c.xy_route(a, a).is_empty());
    }

    #[test]
    fn gaddr_round_trip() {
        let c = MachineConfig::square(8);
        for local in [0u32, 1, 100, 9999] {
            for home in 0..8 {
                let g = c.make_gaddr(TileId(home), local);
                assert_eq!(c.split_gaddr(g), (TileId(home), local));
            }
        }
    }

    #[test]
    fn tile_mask_basics() {
        let mut m = TileMask::of(&[TileId(1), TileId(5)]);
        assert!(m.contains(TileId(1)) && m.contains(TileId(5)));
        assert!(!m.contains(TileId(0)));
        assert_eq!(m.len(), 2);
        m.insert(TileId(1)); // idempotent
        assert_eq!(m.len(), 2);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![TileId(1), TileId(5)]);
        assert!(TileMask::EMPTY.is_empty());
    }

    #[test]
    fn live_tiles_and_connectivity() {
        let c = MachineConfig::grid(2, 2).with_faulty(TileMask::of(&[TileId(1), TileId(2)]));
        assert_eq!(c.n_live(), 2);
        assert_eq!(c.live_tiles(), vec![TileId(0), TileId(3)]);
        // Tiles 0 and 3 are diagonal: no live path between them.
        assert!(!c.live_connected());
        // A 1x4 with the interior alive stays connected.
        let c = MachineConfig::grid(1, 4).with_faulty(TileMask::of(&[TileId(0), TileId(3)]));
        assert!(c.live_connected());
        assert!(MachineConfig::grid(4, 4).live_connected());
    }

    #[test]
    fn mask_to_pow2_pads_with_healthy_tiles() {
        let c = MachineConfig::grid(2, 4);
        // One dead tile leaves 7 live; the mask pads down to 4 using the
        // highest-index healthy tiles.
        let m = c.mask_to_pow2(&[TileId(2)]);
        assert_eq!(c.clone().with_faulty(m).n_live(), 4);
        assert!(m.contains(TileId(2)));
        assert!(m.contains(TileId(7)) && m.contains(TileId(6)) && m.contains(TileId(5)));
        // Already a power of two: nothing added.
        let m = c.mask_to_pow2(&[TileId(0), TileId(1), TileId(2), TileId(3)]);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn latency_model_variants() {
        use raw_ir::BinOp;
        let mul = AluOp::Bin(BinOp::Mul);
        assert_eq!(LatencyModel::Table1.alu_latency(mul), 12);
        assert_eq!(LatencyModel::Unit.alu_latency(mul), 1);
        let cfg = MachineConfig::square(4)
            .with_unit_latency()
            .with_infinite_registers();
        assert_eq!(cfg.latency, LatencyModel::Unit);
        assert!(cfg.gprs > 1000);
    }
}

//! The whole-machine stepper: tiles, static network, dynamic network.
//!
//! [`Machine::step`] advances every component one cycle. Writes into
//! static-network channels are staged and committed at cycle end, so results do
//! not depend on the order components are stepped in. [`Machine::run`] steps to
//! completion, detecting deadlock (a cycle with no progress while work remains
//! is a fixpoint, hence a true deadlock — unless chaos stalls are enabled, in
//! which case a long no-progress streak is required).

use crate::channel::Channel;
use crate::chaos::{Chaos, ChaosConfig};
use crate::config::MachineConfig;
use crate::dynnet::{DynEndpoint, DynNet, Handler};
use crate::isa::{Dir, MachineProgram, SDst, SInst, SSrc, TileCode, TileId, Word};
use crate::processor::{ProcOutcome, Processor};
use crate::stats::Stats;
use crate::switch::Switch;
use std::error::Error;
use std::fmt;

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No component can make progress but work remains.
    Deadlock {
        /// Cycle at which deadlock was declared.
        cycle: u64,
        /// Human-readable summary of the stuck components.
        detail: String,
    },
    /// The configured cycle budget ran out.
    StepLimitExceeded {
        /// The exceeded limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::StepLimitExceeded { limit } => {
                write!(f, "simulation exceeded step limit of {limit} cycles")
            }
        }
    }
}

impl Error for SimError {}

/// Summary of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Cycles until every component halted and the networks drained.
    pub cycles: u64,
    /// Execution counters.
    pub stats: Stats,
}

/// A simulated Raw machine loaded with a program.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    code: Vec<TileCode>,
    procs: Vec<Processor>,
    switches: Vec<Switch>,
    channels: Vec<Channel>,
    /// Channel id: processor → switch, per tile.
    ps: Vec<usize>,
    /// Channel id: switch → processor, per tile.
    sp: Vec<usize>,
    /// Channel id: switch → neighbour switch, per tile per direction.
    link_out: Vec<[Option<usize>; 4]>,
    mems: Vec<Vec<Word>>,
    dynnet: DynNet,
    endpoints: Vec<DynEndpoint>,
    handlers: Vec<Handler>,
    cycle: u64,
    stats: Stats,
    chaos: Option<Chaos>,
}

impl Machine {
    /// Builds a machine from a configuration and loads `program`.
    ///
    /// # Panics
    ///
    /// Panics if the program does not provide code for exactly
    /// `config.n_tiles()` tiles.
    pub fn new(config: MachineConfig, program: &MachineProgram) -> Self {
        let n = config.n_tiles() as usize;
        assert_eq!(program.tiles.len(), n, "program must cover all {n} tiles");
        let mut channels = Vec::new();
        let alloc = |cap: usize, channels: &mut Vec<Channel>| {
            channels.push(Channel::new(cap));
            channels.len() - 1
        };
        let mut ps = Vec::with_capacity(n);
        let mut sp = Vec::with_capacity(n);
        for _ in 0..n {
            ps.push(alloc(config.port_capacity, &mut channels));
            sp.push(alloc(config.port_capacity, &mut channels));
        }
        let mut link_out = vec![[None; 4]; n];
        for (t, out) in link_out.iter_mut().enumerate() {
            for dir in Dir::ALL {
                if config.neighbor(TileId(t as u32), dir).is_some() {
                    out[dir.index()] = Some(alloc(config.port_capacity, &mut channels));
                }
            }
        }
        let procs = (0..n)
            .map(|t| Processor::new(t as u32, config.gprs))
            .collect();
        let switches = (0..n).map(|_| Switch::new(config.switch_regs)).collect();
        let mems = (0..n)
            .map(|_| vec![0u32; config.mem_words as usize])
            .collect();
        let dynnet = DynNet::new(config.rows, config.cols, config.dyn_fifo);
        let endpoints = (0..n).map(|_| DynEndpoint::new(16)).collect();
        let handlers = (0..n).map(|_| Handler::new()).collect();
        Machine {
            stats: Stats::new(n),
            code: program.tiles.clone(),
            procs,
            switches,
            channels,
            ps,
            sp,
            link_out,
            mems,
            dynnet,
            endpoints,
            handlers,
            cycle: 0,
            chaos: None,
            config,
        }
    }

    /// Enables random stall injection (for static-ordering tests).
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(Chaos::new(chaos));
        self
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reads a word of a tile's local memory.
    pub fn mem_word(&self, tile: TileId, addr: u32) -> Word {
        self.mems[tile.index()][addr as usize]
    }

    /// Writes a word of a tile's local memory (used to preload data).
    pub fn set_mem_word(&mut self, tile: TileId, addr: u32, value: Word) {
        self.mems[tile.index()][addr as usize] = value;
    }

    /// Copies `words` into a tile's memory starting at `base`.
    pub fn install_memory(&mut self, tile: TileId, base: u32, words: &[Word]) {
        let mem = &mut self.mems[tile.index()];
        mem[base as usize..base as usize + words.len()].copy_from_slice(words);
    }

    /// Reads a processor register (diagnostics).
    pub fn proc_reg(&self, tile: TileId, reg: u16) -> Word {
        self.procs[tile.index()].reg(reg)
    }

    /// The channel id of the incoming link at `t` from direction `dir`.
    fn link_in(&self, t: usize, dir: Dir) -> Option<usize> {
        let nb = self.config.neighbor(TileId(t as u32), dir)?;
        self.link_out[nb.index()][dir.opposite().index()]
    }

    /// True when every processor and switch halted and all networks drained.
    pub fn finished(&self) -> bool {
        self.procs.iter().all(|p| p.halted())
            && self.switches.iter().all(|s| s.halted())
            && self.dynnet.is_idle()
            && self.endpoints.iter().all(|e| e.is_idle())
            && self.handlers.iter().all(|h| h.is_idle())
    }

    /// Advances the machine one cycle. Returns `true` if anything progressed.
    pub fn step(&mut self) -> bool {
        let n = self.config.n_tiles() as usize;
        let mut progress = false;

        // Processors.
        for t in 0..n {
            if let Some(chaos) = &mut self.chaos {
                if chaos.stall() {
                    continue;
                }
            }
            let (pin_id, pout_id) = (self.sp[t], self.ps[t]);
            let (pin, pout) = get_two_mut(&mut self.channels, pin_id, pout_id);
            let outcome = self.procs[t].step(
                &self.code[t].proc,
                self.cycle,
                &self.config,
                &mut self.mems[t],
                pin,
                pout,
                &mut self.endpoints[t],
            );
            match outcome {
                ProcOutcome::Progress => {
                    self.stats.tiles[t].proc_insts += 1;
                    progress = true;
                }
                ProcOutcome::Stalled(cause) => {
                    self.stats.tiles[t].record_stall(cause);
                    // A scoreboard stall — or a pending port write still
                    // waiting out its producer's latency — is a *timed* wait
                    // that resolves by itself: it is not a deadlock symptom,
                    // so it counts as progress.
                    if cause == crate::processor::StallCause::RegNotReady
                        || self.procs[t].has_maturing_send(self.cycle)
                    {
                        progress = true;
                    }
                }
                ProcOutcome::Halted => {}
            }
        }

        // Switches.
        for t in 0..n {
            if let Some(chaos) = &mut self.chaos {
                if chaos.stall() {
                    continue;
                }
            }
            if self.step_switch(t) {
                progress = true;
            }
        }

        // Dynamic network and handlers.
        if self.dynnet.step(&mut self.endpoints) {
            self.stats.dyn_active_cycles += 1;
            progress = true;
        }
        for t in 0..n {
            if self.handlers[t].step(
                t as u32,
                self.cycle,
                self.config.mem_latency,
                &mut self.mems[t],
                &mut self.endpoints[t],
            ) || !self.handlers[t].is_idle()
            {
                // An in-flight handler request is a timed wait, not deadlock.
                progress = true;
            }
        }

        // Commit staged channel writes.
        for ch in &mut self.channels {
            if ch.commit() {
                self.stats.static_words += 1;
                progress = true;
            }
        }

        self.cycle += 1;
        progress
    }

    fn step_switch(&mut self, t: usize) -> bool {
        let code = std::mem::take(&mut self.code[t].switch);
        let result = (|| {
            let inst = match self.switches[t].fetch(&code) {
                Some(i) => i.clone(),
                None => return false,
            };
            match &inst {
                SInst::Route(pairs) => {
                    // Phase 1: readiness of all sources and destinations.
                    for (src, _) in pairs {
                        let ready = match src {
                            SSrc::Dir(d) => match self.link_in(t, *d) {
                                Some(id) => self.channels[id].can_read(),
                                None => panic!(
                                    "tile{t} switch routes from {d:?} but there is no neighbour"
                                ),
                            },
                            SSrc::Proc => self.channels[self.ps[t]].can_read(),
                            SSrc::Reg(_) => true,
                        };
                        if !ready {
                            self.stats.tiles[t].switch_stalls += 1;
                            return false;
                        }
                    }
                    for (_, dst) in pairs {
                        let ready = match dst {
                            SDst::Dir(d) => match self.link_out[t][d.index()] {
                                Some(id) => self.channels[id].can_write(),
                                None => panic!(
                                    "tile{t} switch routes to {d:?} but there is no neighbour"
                                ),
                            },
                            SDst::Proc => self.channels[self.sp[t]].can_write(),
                            SDst::Reg(_) => true,
                        };
                        if !ready {
                            self.stats.tiles[t].switch_stalls += 1;
                            return false;
                        }
                    }
                    // Phase 2: consume each distinct source once, then fan out.
                    let mut values: Vec<(SSrc, Word)> = Vec::with_capacity(pairs.len());
                    for (src, _) in pairs {
                        if values.iter().any(|(s, _)| s == src) {
                            continue;
                        }
                        let v = match src {
                            SSrc::Dir(d) => {
                                let id = self.link_in(t, *d).unwrap();
                                self.channels[id].read()
                            }
                            SSrc::Proc => self.channels[self.ps[t]].read(),
                            SSrc::Reg(r) => self.switches[t].reg(*r),
                        };
                        values.push((*src, v));
                    }
                    for (src, dst) in pairs {
                        let v = values.iter().find(|(s, _)| s == src).unwrap().1;
                        match dst {
                            SDst::Dir(d) => {
                                let id = self.link_out[t][d.index()].unwrap();
                                self.channels[id].write(v);
                            }
                            SDst::Proc => self.channels[self.sp[t]].write(v),
                            SDst::Reg(r) => self.switches[t].set_reg(*r, v),
                        }
                    }
                    self.switches[t].advance();
                    self.stats.tiles[t].switch_routes += 1;
                    true
                }
                other => {
                    self.switches[t].exec_control(other);
                    true
                }
            }
        })();
        self.code[t].switch = code;
        result
    }

    /// Runs until completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if progress stops while work remains, or
    /// [`SimError::StepLimitExceeded`] if the cycle budget runs out.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        // Without chaos, one no-progress cycle is a fixpoint (deadlock); with
        // random stalls we require a long streak before declaring one.
        let deadlock_streak = if self.chaos.is_some() { 100_000 } else { 2 };
        let mut no_progress = 0u64;
        while !self.finished() {
            if self.cycle >= self.config.step_limit {
                return Err(SimError::StepLimitExceeded {
                    limit: self.config.step_limit,
                });
            }
            if self.step() {
                no_progress = 0;
            } else {
                no_progress += 1;
                if no_progress >= deadlock_streak {
                    return Err(SimError::Deadlock {
                        cycle: self.cycle,
                        detail: self.deadlock_detail(),
                    });
                }
            }
        }
        Ok(RunReport {
            // The final counted cycle is the one in which the last component
            // halted; trailing no-progress cycles are not charged.
            cycles: self.cycle - no_progress,
            stats: self.stats.clone(),
        })
    }

    /// Dumps a human-readable snapshot of every non-halted component and the
    /// static-network channel occupancy (deadlock debugging).
    pub fn dump_state(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (t, p) in self.procs.iter().enumerate() {
            if p.halted() {
                continue;
            }
            let inst = self.code[t].proc.get(p.pc());
            writeln!(s, "tile{t}.proc pc={} inst={:?}", p.pc(), inst).unwrap();
        }
        for (t, sw) in self.switches.iter().enumerate() {
            if sw.halted() {
                continue;
            }
            let inst = self.code[t].switch.get(sw.pc());
            writeln!(s, "tile{t}.switch pc={} inst={:?}", sw.pc(), inst).unwrap();
        }
        for t in 0..self.config.n_tiles() as usize {
            writeln!(
                s,
                "tile{t} ports: proc->sw={} sw->proc={}",
                self.channels[self.ps[t]].len(),
                self.channels[self.sp[t]].len()
            )
            .unwrap();
            for dir in Dir::ALL {
                if let Some(id) = self.link_out[t][dir.index()] {
                    if !self.channels[id].is_empty() {
                        writeln!(
                            s,
                            "  link tile{t}->{dir:?}: {} words",
                            self.channels[id].len()
                        )
                        .unwrap();
                    }
                }
            }
        }
        s
    }

    fn deadlock_detail(&self) -> String {
        let mut stuck = Vec::new();
        for (t, p) in self.procs.iter().enumerate() {
            if !p.halted() {
                stuck.push(format!("tile{t}.proc@pc{}", p.pc()));
            }
        }
        for (t, s) in self.switches.iter().enumerate() {
            if !s.halted() {
                stuck.push(format!("tile{t}.switch@pc{}", s.pc()));
            }
        }
        if stuck.len() > 8 {
            stuck.truncate(8);
            stuck.push("…".into());
        }
        stuck.join(", ")
    }
}

fn get_two_mut(v: &mut [Channel], a: usize, b: usize) -> (&mut Channel, &mut Channel) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{ProcAsm, SwitchAsm};
    use crate::isa::{Dst, Src};
    use raw_ir::{BinOp, Imm};

    fn neighbor_message_program() -> MachineProgram {
        // Figure 4: tile(0,0) computes x+y and sends; tile(0,1) receives and
        // computes w + received. We mark completion by storing to memory.
        let mut p0 = ProcAsm::new();
        p0.bin(
            BinOp::Add,
            Dst::PortOut,
            Src::Imm(Imm::I(30)),
            Src::Imm(Imm::I(12)),
        );
        p0.halt();
        let mut s0 = SwitchAsm::new();
        s0.route(&[(SSrc::Proc, SDst::Dir(Dir::East))]);
        s0.halt();

        let mut s1 = SwitchAsm::new();
        s1.route(&[(SSrc::Dir(Dir::West), SDst::Proc)]);
        s1.halt();
        let mut p1 = ProcAsm::new();
        p1.bin(BinOp::Add, Dst::Reg(1), Src::Imm(Imm::I(100)), Src::PortIn);
        p1.store_imm_addr(Src::Reg(1), 0);
        p1.halt();

        MachineProgram {
            tiles: vec![
                TileCode {
                    proc: p0.finish(),
                    switch: s0.finish(),
                },
                TileCode {
                    proc: p1.finish(),
                    switch: s1.finish(),
                },
            ],
        }
    }

    #[test]
    fn figure4_neighbor_message_latency() {
        let mut m = Machine::new(MachineConfig::grid(1, 2), &neighbor_message_program());
        // Step cycle by cycle and find the cycle in which tile 1's add issues.
        // Send issues at cycle 0; the paper's cost model says the receive-side
        // add executes at cycle 3 (4-cycle end-to-end latency).
        let mut recv_cycle = None;
        for _ in 0..20 {
            let before = m.stats.tiles[1].proc_insts;
            m.step();
            if recv_cycle.is_none() && m.stats.tiles[1].proc_insts > before {
                recv_cycle = Some(m.cycle - 1);
            }
            if m.finished() {
                break;
            }
        }
        assert_eq!(
            recv_cycle,
            Some(3),
            "receive-side add must issue at cycle 3"
        );
        assert_eq!(m.mem_word(TileId(1), 0), 142);
    }

    #[test]
    fn run_reports_and_finishes() {
        let mut m = Machine::new(MachineConfig::grid(1, 2), &neighbor_message_program());
        let report = m.run().expect("completes");
        assert!(
            report.cycles >= 4 && report.cycles < 20,
            "{}",
            report.cycles
        );
        assert!(report.stats.static_words >= 3); // proc→sw, sw→sw, sw→proc
        assert_eq!(m.mem_word(TileId(1), 0), 142);
    }

    #[test]
    fn deadlock_detected() {
        // Tile 0 processor reads from its port but nothing ever sends.
        let mut p0 = ProcAsm::new();
        p0.recv(Dst::Reg(1));
        p0.halt();
        let mut s0 = SwitchAsm::new();
        s0.halt();
        let program = MachineProgram {
            tiles: vec![TileCode {
                proc: p0.finish(),
                switch: s0.finish(),
            }],
        };
        let mut m = Machine::new(MachineConfig::grid(1, 1), &program);
        match m.run() {
            Err(SimError::Deadlock { detail, .. }) => {
                assert!(detail.contains("tile0.proc"), "{detail}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn multicast_route_duplicates_word() {
        // 1x3: middle tile's switch multicasts a word from the west to both
        // its processor and the east neighbour.
        let mut p0 = ProcAsm::new();
        p0.send(Src::Imm(Imm::I(7)));
        p0.halt();
        let mut s0 = SwitchAsm::new();
        s0.route_out(Dir::East);
        s0.halt();

        let mut s1 = SwitchAsm::new();
        s1.route(&[
            (SSrc::Dir(Dir::West), SDst::Proc),
            (SSrc::Dir(Dir::West), SDst::Dir(Dir::East)),
        ]);
        s1.halt();
        let mut p1 = ProcAsm::new();
        p1.recv(Dst::Reg(1));
        p1.store_imm_addr(Src::Reg(1), 0);
        p1.halt();

        let mut s2 = SwitchAsm::new();
        s2.route_in(Dir::West);
        s2.halt();
        let mut p2 = ProcAsm::new();
        p2.recv(Dst::Reg(1));
        p2.store_imm_addr(Src::Reg(1), 0);
        p2.halt();

        let program = MachineProgram {
            tiles: vec![
                TileCode {
                    proc: p0.finish(),
                    switch: s0.finish(),
                },
                TileCode {
                    proc: p1.finish(),
                    switch: s1.finish(),
                },
                TileCode {
                    proc: p2.finish(),
                    switch: s2.finish(),
                },
            ],
        };
        let mut m = Machine::new(MachineConfig::grid(1, 3), &program);
        m.run().expect("completes");
        assert_eq!(m.mem_word(TileId(1), 0), 7);
        assert_eq!(m.mem_word(TileId(2), 0), 7);
    }

    #[test]
    fn dynamic_remote_load_round_trip() {
        // 2 tiles. Tile 1's memory[5] = 1234 (preloaded). Tile 0 issues a
        // DLoad of the global address for (tile 1, local 5) and stores the
        // result locally.
        let config = MachineConfig::grid(1, 2);
        let gaddr = config.make_gaddr(TileId(1), 5);
        let mut p0 = ProcAsm::new();
        p0.dload(Dst::Reg(1), Src::Imm(Imm::I(gaddr as i32)));
        p0.store_imm_addr(Src::Reg(1), 0);
        p0.halt();
        let mut s0 = SwitchAsm::new();
        s0.halt();
        let program = MachineProgram {
            tiles: vec![
                TileCode {
                    proc: p0.finish(),
                    switch: s0.finish(),
                },
                TileCode {
                    proc: vec![crate::isa::PInst::Halt],
                    switch: vec![SInst::Halt],
                },
            ],
        };
        let mut m = Machine::new(config, &program);
        m.set_mem_word(TileId(1), 5, 1234);
        m.run().expect("completes");
        assert_eq!(m.mem_word(TileId(0), 0), 1234);
    }

    #[test]
    fn dynamic_remote_store_round_trip() {
        let config = MachineConfig::grid(2, 2);
        let gaddr = config.make_gaddr(TileId(3), 9);
        let mut p0 = ProcAsm::new();
        p0.dstore(Src::Imm(Imm::I(gaddr as i32)), Src::Imm(Imm::I(4321)));
        // The ack guarantees completion before halt.
        p0.halt();
        let mut tiles = vec![TileCode {
            proc: p0.finish(),
            switch: vec![SInst::Halt],
        }];
        for _ in 1..4 {
            tiles.push(TileCode {
                proc: vec![crate::isa::PInst::Halt],
                switch: vec![SInst::Halt],
            });
        }
        let mut m = Machine::new(config, &MachineProgram { tiles });
        m.run().expect("completes");
        assert_eq!(m.mem_word(TileId(3), 9), 4321);
    }

    #[test]
    fn chaos_does_not_change_results() {
        // The static ordering property (Appendix A) on a small program.
        let base = {
            let mut m = Machine::new(MachineConfig::grid(1, 2), &neighbor_message_program());
            m.run().unwrap();
            m.mem_word(TileId(1), 0)
        };
        for seed in 1..6 {
            let mut m = Machine::new(MachineConfig::grid(1, 2), &neighbor_message_program())
                .with_chaos(ChaosConfig {
                    seed,
                    stall_percent: 40,
                });
            m.run().expect("chaos run completes");
            assert_eq!(m.mem_word(TileId(1), 0), base, "seed {seed}");
        }
    }

    #[test]
    fn install_memory_bulk_copy() {
        let mut m = Machine::new(MachineConfig::grid(1, 1), &MachineProgram::empty(1));
        m.install_memory(TileId(0), 10, &[1, 2, 3]);
        assert_eq!(m.mem_word(TileId(0), 11), 2);
    }
}

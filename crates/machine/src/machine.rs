//! The whole-machine stepper: tiles, static network, dynamic network.
//!
//! [`Machine::step`] advances every component one cycle. Writes into
//! static-network channels are staged and committed at cycle end, so results do
//! not depend on the order components are stepped in. [`Machine::run`] steps to
//! completion, detecting deadlock (a cycle with no progress while work remains
//! is a fixpoint, hence a true deadlock — unless chaos stalls are enabled, in
//! which case a long no-progress streak is required).
//!
//! # Activity tracking
//!
//! The default stepper is *activity tracked*: components that provably cannot
//! act this cycle are skipped, and only channels that staged a write are
//! committed. The legal sleep states and their wake conditions (see DESIGN.md
//! for the full invariants):
//!
//! * a **halted** processor (with drained port engine) or switch is dead and
//!   never stepped again;
//! * a processor stalled on the scoreboard (`RegNotReady`, no pending sends)
//!   sleeps until the blocking register's ready cycle;
//! * a processor stalled on an empty input port (no pending sends) sleeps until
//!   the switch→processor channel commits;
//! * a switch with a stalled route sleeps until any adjacent channel commits a
//!   word or has a word consumed;
//! * the dynamic network and the remote-memory handlers are skipped while no
//!   flit, message, or in-flight request exists anywhere.
//!
//! Sleeping is *observationally identical* to stepping-and-stalling: per-cycle
//! stall statistics for skipped cycles are back-filled on wake (minus cycles a
//! chaos stall would have skipped in the reference), the chaos RNG stream is
//! drawn in exactly the reference order, and the progress flag fed to the
//! deadlock detector is reproduced cycle by cycle (a timed scoreboard sleep
//! still counts as progress). [`Machine::with_reference_stepper`] selects the
//! original step-everything path; the differential test suite asserts both
//! produce bit-identical cycle counts, statistics, and memory.
//!
//! # Event-driven stepping
//!
//! The tracked stepper still *iterates* every component each cycle, if only to
//! check its mode — O(tiles) per cycle even when one tile is awake. For large
//! meshes [`Machine::with_event_stepper`] selects the event-driven core: a
//! calendar queue (`crates/machine/src/calendar.rs`) holds one wake event per
//! runnable component, and a cycle's work is popping exactly the components
//! scheduled for it. Sleep transitions stop inserting next-cycle events
//! (`SleepReg` inserts its timer at `wake_at` instead), and `wake()` becomes an
//! event insertion. Per-component processing is the *same code* the tracked
//! stepper runs (`run_proc`/`run_switch`), replayed in
//! the same component order, so cycle counts, statistics, emitted trace
//! events, and deadlock detection are bit-identical — see DESIGN.md §13 for
//! the queue invariants and tests/differential_stepper.rs for the three-way
//! oracle. Chaos stall injection draws one RNG value per component per cycle
//! by contract (the stream is part of the observable behaviour), which
//! lower-bounds any stepper at Ω(tiles·cycles); with chaos enabled the event
//! stepper therefore delegates to the tracked scan, which preserves the stream
//! exactly.

use crate::calendar::{pack, CalendarQueue, UNIT_PROC, UNIT_SWITCH};
use crate::channel::Channel;
use crate::chaos::{Chaos, ChaosConfig};
use crate::config::MachineConfig;
use crate::dynnet::{DynEndpoint, DynNet, Handler};
use crate::isa::{Dir, MachineProgram, SDst, SInst, SSrc, TileCode, TileId, Word};
use crate::processor::{ProcOutcome, Processor, StallCause};
use crate::stats::Stats;
use crate::switch::{Switch, SwitchOutcome};
use crate::trace::{ChannelInfo, ChannelRole, EventSink, NullSink, StallReason, Unit};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No component can make progress but work remains.
    Deadlock {
        /// Cycle at which deadlock was declared.
        cycle: u64,
        /// Human-readable summary of the stuck components.
        detail: String,
    },
    /// The configured cycle budget ran out.
    StepLimitExceeded {
        /// The exceeded limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::StepLimitExceeded { limit } => {
                write!(f, "simulation exceeded step limit of {limit} cycles")
            }
        }
    }
}

impl Error for SimError {}

/// Summary of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Cycles until every component halted and the networks drained.
    pub cycles: u64,
    /// Execution counters.
    pub stats: Stats,
}

/// Activity state of a processor under the tracked stepper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProcMode {
    /// Stepped every cycle.
    Active,
    /// Timed scoreboard wait: cannot issue before `wake_at`.
    SleepReg {
        /// First cycle the blocking register is ready.
        wake_at: u64,
    },
    /// Blocked on an empty input port; woken by a commit on sw→proc.
    SleepPort,
    /// Halted with the port engine drained; never steps again.
    Dead,
}

/// Activity state of a switch under the tracked stepper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SwitchMode {
    Active,
    /// Route stalled; woken by any event on an adjacent channel.
    Sleeping,
    Dead,
}

/// Deferred stall accounting for a sleeping (or just-woken) component.
///
/// `since == u64::MAX` means no debt. Otherwise the component skipped every
/// cycle in `since..now`; the reference stepper would have recorded one stall
/// per skipped cycle *except* the `chaos_skips` cycles on which its chaos draw
/// said "stall" (the reference records nothing on those). The debt is settled
/// into [`Stats`] immediately before the component next steps, or at run end.
#[derive(Clone, Copy, Debug)]
struct SleepDebt {
    since: u64,
    chaos_skips: u64,
    cause: StallCause,
}

impl SleepDebt {
    const NONE: SleepDebt = SleepDebt {
        since: u64::MAX,
        chaos_skips: 0,
        cause: StallCause::RegNotReady,
    };

    fn is_pending(&self) -> bool {
        self.since != u64::MAX
    }
}

/// One endpoint of a static-network channel (for wake routing).
#[derive(Clone, Copy, Debug)]
enum Comp {
    ProcAt(usize),
    SwitchAt(usize),
}

/// Which stepping core [`Machine::step`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stepper {
    /// Original step-everything path (semantic reference).
    Reference,
    /// Activity-tracked scan: sleeping components are skipped, but every
    /// component's mode is still inspected each cycle.
    Tracked,
    /// Calendar-queue event core: per-cycle work is proportional to the
    /// number of scheduled wake events, not the mesh size.
    Event,
}

/// A simulated Raw machine loaded with a program.
///
/// The `S` parameter is the [`EventSink`] observing the run; the default
/// [`NullSink`] compiles every emission out (see [`crate::trace`]).
#[derive(Debug)]
pub struct Machine<S: EventSink = NullSink> {
    config: MachineConfig,
    code: Vec<TileCode>,
    procs: Vec<Processor>,
    switches: Vec<Switch>,
    channels: Vec<Channel>,
    /// Channel id: processor → switch, per tile.
    ps: Vec<usize>,
    /// Channel id: switch → processor, per tile.
    sp: Vec<usize>,
    /// Channel id: switch → neighbour switch, per tile per direction.
    link_out: Vec<[Option<usize>; 4]>,
    mems: Vec<Vec<Word>>,
    dynnet: DynNet,
    endpoints: Vec<DynEndpoint>,
    handlers: Vec<Handler>,
    cycle: u64,
    stats: Stats,
    chaos: Option<Chaos>,
    /// Which stepping core `step` dispatches to.
    stepper: Stepper,
    proc_mode: Vec<ProcMode>,
    proc_debt: Vec<SleepDebt>,
    switch_mode: Vec<SwitchMode>,
    switch_debt: Vec<SleepDebt>,
    /// Reading endpoint of each channel.
    chan_reader: Vec<Comp>,
    /// Writing endpoint of each channel.
    chan_writer: Vec<Comp>,
    /// Channels that staged a write this cycle (tracked commit list).
    dirty: Vec<usize>,
    /// Channels the last `step_switch` consumed a word from (wake scratch).
    consumed: Vec<usize>,
    /// Reusable scratch for route source values.
    route_vals: Vec<(SSrc, Word)>,
    /// True while any flit, dynamic message, or handler request may exist.
    dyn_active: bool,
    /// Tiles whose handler or endpoint may be non-idle (tracked/event
    /// steppers): the dynamic phase steps exactly these handlers instead of
    /// scanning all `n`. Invariant: every tile with a non-idle handler or
    /// endpoint is on this list (membership flags in `dyn_watched`).
    dyn_watch: Vec<usize>,
    /// Membership flags for `dyn_watch`.
    dyn_watched: Vec<bool>,
    /// Reusable scratch for the delivered-tile list (borrow split).
    dyn_scratch: Vec<usize>,
    /// Cause of the most recent switch stall (sleep-span attribution scratch).
    last_switch_stall: StallCause,
    /// Calendar queue of wake events (event stepper only).
    queue: CalendarQueue,
    /// True once the event stepper seeded its initial events and owns wake
    /// routing; `wake()` inserts events only while this is set.
    queue_live: bool,
    /// Earliest queued event per processor (`u64::MAX` = none): suppresses
    /// duplicate insertions without requiring random-access deletion.
    proc_next_ev: Vec<u64>,
    /// Earliest queued event per switch (`u64::MAX` = none).
    switch_next_ev: Vec<u64>,
    /// Processors due this cycle (event stepper scratch; sorted before use).
    proc_agenda: Vec<usize>,
    /// Switches due this cycle, popped in ascending index order. A min-heap
    /// because same-cycle wakes targeting a *higher-indexed* switch land here
    /// mid-drain (matching the tracked scan, which reaches them later in its
    /// loop).
    switch_agenda: BinaryHeap<Reverse<usize>>,
    /// Cycle stamp of each switch's last processed step (same-cycle dedup).
    switch_seen: Vec<u64>,
    /// Lowest switch index still pending in the current cycle's phase: a wake
    /// for switch `t >= sw_floor` runs this cycle, lower indices (already
    /// passed) next cycle. `0` during the processor phase, `t + 1` while
    /// processing switch `t`, `usize::MAX` in the dyn/commit phases.
    sw_floor: usize,
    /// Processors currently in `SleepReg` (timed waits count as progress; the
    /// event stepper checks the count instead of scanning modes).
    sleep_reg_count: usize,
    /// Processors not yet `Dead` (O(1) completion check for tracked/event).
    live_procs: usize,
    /// Switches not yet `Dead`.
    live_switches: usize,
    /// The event sink observing this machine.
    sink: S,
}

impl Machine {
    /// Builds a machine from a configuration and loads `program`, with tracing
    /// disabled ([`NullSink`]).
    ///
    /// # Panics
    ///
    /// Panics if the program does not provide code for exactly
    /// `config.n_tiles()` tiles.
    pub fn new(config: MachineConfig, program: &MachineProgram) -> Self {
        Machine::with_sink(config, program, NullSink)
    }
}

impl<S: EventSink> Machine<S> {
    /// Builds a machine from a configuration and loads `program`, attaching
    /// `sink` as the event consumer.
    ///
    /// # Panics
    ///
    /// Panics if the program does not provide code for exactly
    /// `config.n_tiles()` tiles.
    pub fn with_sink(config: MachineConfig, program: &MachineProgram, sink: S) -> Machine<S> {
        let n = config.n_tiles() as usize;
        assert_eq!(program.tiles.len(), n, "program must cover all {n} tiles");
        let mut channels = Vec::new();
        let mut chan_reader = Vec::new();
        let mut chan_writer = Vec::new();
        let mut alloc = |cap: usize, writer: Comp, reader: Comp| {
            channels.push(Channel::new(cap));
            chan_writer.push(writer);
            chan_reader.push(reader);
            channels.len() - 1
        };
        let mut ps = Vec::with_capacity(n);
        let mut sp = Vec::with_capacity(n);
        for t in 0..n {
            ps.push(alloc(
                config.port_capacity,
                Comp::ProcAt(t),
                Comp::SwitchAt(t),
            ));
            sp.push(alloc(
                config.port_capacity,
                Comp::SwitchAt(t),
                Comp::ProcAt(t),
            ));
        }
        let mut link_out = vec![[None; 4]; n];
        for (t, out) in link_out.iter_mut().enumerate() {
            for dir in Dir::ALL {
                if let Some(nb) = config.neighbor(TileId(t as u32), dir) {
                    out[dir.index()] = Some(alloc(
                        config.port_capacity,
                        Comp::SwitchAt(t),
                        Comp::SwitchAt(nb.index()),
                    ));
                }
            }
        }
        let procs = (0..n)
            .map(|t| Processor::new(t as u32, config.gprs))
            .collect();
        let switches = (0..n).map(|_| Switch::new(config.switch_regs)).collect();
        let mems = (0..n)
            .map(|_| vec![0u32; config.mem_words as usize])
            .collect();
        let dynnet = DynNet::new(config.rows, config.cols, config.dyn_fifo);
        let endpoints = (0..n).map(|_| DynEndpoint::new(16)).collect();
        let handlers = (0..n).map(|_| Handler::new()).collect();
        Machine {
            stats: Stats::new(n),
            code: program.tiles.clone(),
            procs,
            switches,
            channels,
            ps,
            sp,
            link_out,
            mems,
            dynnet,
            endpoints,
            handlers,
            cycle: 0,
            chaos: None,
            stepper: Stepper::Tracked,
            proc_mode: vec![ProcMode::Active; n],
            proc_debt: vec![SleepDebt::NONE; n],
            switch_mode: vec![SwitchMode::Active; n],
            switch_debt: vec![SleepDebt::NONE; n],
            chan_reader,
            chan_writer,
            dirty: Vec::new(),
            consumed: Vec::new(),
            route_vals: Vec::new(),
            dyn_active: false,
            dyn_watch: Vec::new(),
            dyn_watched: vec![false; n],
            dyn_scratch: Vec::new(),
            last_switch_stall: StallCause::PortInEmpty,
            queue: CalendarQueue::new(128),
            queue_live: false,
            proc_next_ev: vec![u64::MAX; n],
            switch_next_ev: vec![u64::MAX; n],
            proc_agenda: Vec::new(),
            switch_agenda: BinaryHeap::new(),
            switch_seen: vec![u64::MAX; n],
            sw_floor: usize::MAX,
            sleep_reg_count: 0,
            live_procs: n,
            live_switches: n,
            sink,
            config,
        }
    }

    /// Shared access to the attached event sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the machine and returns the sink (trace extraction).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Static description of every static-network channel, indexed by the
    /// channel id used in [`EventSink::channel_commit`] events.
    pub fn channel_infos(&self) -> Vec<ChannelInfo> {
        let mut roles = vec![None; self.channels.len()];
        for t in 0..self.config.n_tiles() as usize {
            roles[self.ps[t]] = Some(ChannelRole::ProcToSwitch { tile: t as u32 });
            roles[self.sp[t]] = Some(ChannelRole::SwitchToProc { tile: t as u32 });
            for dir in Dir::ALL {
                if let Some(id) = self.link_out[t][dir.index()] {
                    let to = self.config.neighbor(TileId(t as u32), dir).unwrap();
                    roles[id] = Some(ChannelRole::Link {
                        from: t as u32,
                        to: to.0,
                        dir,
                    });
                }
            }
        }
        roles
            .into_iter()
            .enumerate()
            .map(|(id, role)| ChannelInfo {
                id,
                role: role.expect("every channel has a role"),
                capacity: self.config.port_capacity,
            })
            .collect()
    }

    /// Enables random stall injection (for static-ordering tests).
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(Chaos::new(chaos));
        self
    }

    /// Selects the original step-everything path instead of activity tracking.
    ///
    /// Kept as the semantic reference: the differential test suite runs every
    /// workload through both steppers and asserts identical cycle counts,
    /// statistics, and final memory.
    pub fn with_reference_stepper(mut self) -> Self {
        self.stepper = Stepper::Reference;
        self
    }

    /// Selects the calendar-queue event-driven stepper.
    ///
    /// Per-cycle cost is proportional to the number of scheduled wake events
    /// instead of the mesh size, which is the asymptotic win on large, sparse
    /// meshes. Observable behaviour — cycle counts, statistics, final memory,
    /// emitted trace events, deadlock detection — is bit-identical to the
    /// tracked and reference steppers (enforced by the differential suite).
    /// With [chaos](Self::with_chaos) enabled the chaos RNG stream (one draw
    /// per component per cycle) forces Ω(tiles·cycles) work, so this mode
    /// delegates to the tracked scan, trivially preserving the stream.
    pub fn with_event_stepper(mut self) -> Self {
        self.stepper = Stepper::Event;
        self
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Execution statistics so far.
    ///
    /// Under the tracked stepper, per-cycle *stall* counters of currently
    /// sleeping components are settled when they wake and at [`run`](Self::run)
    /// exit; instruction, route, and word counters are always exact.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reads a word of a tile's local memory.
    pub fn mem_word(&self, tile: TileId, addr: u32) -> Word {
        self.mems[tile.index()][addr as usize]
    }

    /// Writes a word of a tile's local memory (used to preload data).
    pub fn set_mem_word(&mut self, tile: TileId, addr: u32, value: Word) {
        self.mems[tile.index()][addr as usize] = value;
    }

    /// A tile's entire local memory (differential testing, diagnostics).
    pub fn memory(&self, tile: TileId) -> &[Word] {
        &self.mems[tile.index()]
    }

    /// Copies `words` into a tile's memory starting at `base`.
    pub fn install_memory(&mut self, tile: TileId, base: u32, words: &[Word]) {
        let mem = &mut self.mems[tile.index()];
        mem[base as usize..base as usize + words.len()].copy_from_slice(words);
    }

    /// Overrides a tile's dynamic-reference home map: global addresses issued
    /// by `tile` interleave over `homes` (a power-of-two set of physical
    /// tiles) instead of the default [`MachineConfig::split_gaddr`]. The
    /// driver installs this when compiling around faulty tiles or linking
    /// co-resident programs.
    pub fn set_tile_dyn_homes(&mut self, tile: TileId, homes: Vec<TileId>) {
        self.procs[tile.index()].set_dyn_homes(homes);
    }

    /// Reads a processor register (diagnostics).
    pub fn proc_reg(&self, tile: TileId, reg: u16) -> Word {
        self.procs[tile.index()].reg(reg)
    }

    /// True when every processor and switch halted and all networks drained.
    pub fn finished(&self) -> bool {
        self.procs.iter().all(|p| p.halted())
            && self.switches.iter().all(|s| s.halted())
            && self.dynnet.is_idle()
            && self.endpoints.iter().all(|e| e.is_idle())
            && self.handlers.iter().all(|h| h.is_idle())
    }

    /// O(1) equivalent of [`finished`](Self::finished) for the mode-tracking
    /// steppers: a component goes `Dead` exactly when it observes itself
    /// halted, and `dyn_active` is false exactly while all dynamic-network
    /// state is drained. The reference stepper maintains neither, so it keeps
    /// the full scan.
    fn quiesced(&self) -> bool {
        if self.stepper == Stepper::Reference {
            return self.finished();
        }
        let done = self.live_procs == 0 && self.live_switches == 0 && !self.dyn_active;
        debug_assert_eq!(done, self.finished());
        done
    }

    /// Advances the machine one cycle. Returns `true` if anything progressed.
    pub fn step(&mut self) -> bool {
        match self.stepper {
            Stepper::Reference => self.step_reference(),
            Stepper::Tracked => self.step_tracked(),
            // The chaos stream contract (one draw per component per cycle)
            // makes event-driven skipping impossible; fall back to the scan.
            Stepper::Event if self.chaos.is_some() => self.step_tracked(),
            Stepper::Event => self.step_event(),
        }
    }

    /// The original stepper: every component steps, every channel commits.
    fn step_reference(&mut self) -> bool {
        let n = self.config.n_tiles() as usize;
        let mut progress = false;

        // Processors.
        for t in 0..n {
            if let Some(chaos) = &mut self.chaos {
                if chaos.stall() {
                    if S::ENABLED {
                        let pc = self.procs[t].pc();
                        self.sink
                            .stall(self.cycle, t as u32, Unit::Proc, StallReason::Chaos, pc);
                    }
                    continue;
                }
            }
            let pc_before = if S::ENABLED { self.procs[t].pc() } else { 0 };
            let (pin_id, pout_id) = (self.sp[t], self.ps[t]);
            let (pin, pout) = get_two_mut(&mut self.channels, pin_id, pout_id);
            let outcome = self.procs[t].step(
                &self.code[t].proc,
                self.cycle,
                &self.config,
                &mut self.mems[t],
                pin,
                pout,
                &mut self.endpoints[t],
            );
            match outcome {
                ProcOutcome::Progress => {
                    self.stats.tiles[t].proc_insts += 1;
                    progress = true;
                    if S::ENABLED {
                        self.sink.issue(
                            self.cycle,
                            t as u32,
                            pc_before,
                            self.procs[t].last_issue_latency(),
                        );
                    }
                }
                ProcOutcome::Stalled(cause) => {
                    self.stats.tiles[t].record_stall(cause);
                    if S::ENABLED {
                        self.sink
                            .stall(self.cycle, t as u32, Unit::Proc, cause.into(), pc_before);
                    }
                    // A scoreboard stall — or a pending port write still
                    // waiting out its producer's latency — is a *timed* wait
                    // that resolves by itself: it is not a deadlock symptom,
                    // so it counts as progress.
                    if cause == StallCause::RegNotReady
                        || self.procs[t].has_maturing_send(self.cycle)
                    {
                        progress = true;
                    }
                }
                ProcOutcome::Halted => {
                    if S::ENABLED {
                        self.sink.idle(self.cycle, t as u32, Unit::Proc);
                    }
                }
            }
        }

        // Switches.
        for t in 0..n {
            if let Some(chaos) = &mut self.chaos {
                if chaos.stall() {
                    if S::ENABLED {
                        let pc = self.switches[t].pc();
                        self.sink
                            .stall(self.cycle, t as u32, Unit::Switch, StallReason::Chaos, pc);
                    }
                    continue;
                }
            }
            match self.step_switch(t) {
                SwitchOutcome::Progress => progress = true,
                SwitchOutcome::Stalled => {}
                SwitchOutcome::Halted => {
                    if S::ENABLED {
                        self.sink.idle(self.cycle, t as u32, Unit::Switch);
                    }
                }
            }
        }

        // Dynamic network and handlers.
        if self.dynnet.step(&mut self.endpoints) {
            self.stats.dyn_active_cycles += 1;
            progress = true;
            if S::ENABLED {
                self.sink.dyn_active(self.cycle);
            }
        }
        for t in 0..n {
            if self.handlers[t].step(
                t as u32,
                self.cycle,
                self.config.mem_latency,
                &mut self.mems[t],
                &mut self.endpoints[t],
            ) || !self.handlers[t].is_idle()
            {
                // An in-flight handler request is a timed wait, not deadlock.
                progress = true;
            }
        }

        // Commit staged channel writes.
        for id in 0..self.channels.len() {
            if self.channels[id].commit() {
                self.stats.static_words += 1;
                progress = true;
                if S::ENABLED {
                    self.sink
                        .channel_commit(self.cycle, id, self.channels[id].len());
                }
            }
        }
        self.dirty.clear();

        self.cycle += 1;
        progress
    }

    /// The activity-tracked stepper (see the module docs for the invariants).
    fn step_tracked(&mut self) -> bool {
        let n = self.config.n_tiles() as usize;
        let mut progress = false;
        let mut run_dyn = self.dyn_active;

        // Processors. The chaos draw happens for every tile in reference order
        // even when the tile is skipped, so the RNG stream is identical.
        self.sw_floor = 0;
        for t in 0..n {
            let chaos_stall = match &mut self.chaos {
                Some(c) => c.stall(),
                None => false,
            };
            match self.proc_mode[t] {
                ProcMode::Dead => continue,
                ProcMode::SleepReg { wake_at } => {
                    if chaos_stall {
                        self.proc_debt[t].chaos_skips += 1;
                        continue;
                    }
                    if self.cycle < wake_at {
                        // The reference steps, records a RegNotReady stall
                        // (settled from the debt on wake) and counts the timed
                        // wait as progress.
                        progress = true;
                        continue;
                    }
                    // Timer matured: step this cycle.
                    self.proc_mode[t] = ProcMode::Active;
                    self.sleep_reg_count -= 1;
                }
                ProcMode::SleepPort => {
                    if chaos_stall {
                        self.proc_debt[t].chaos_skips += 1;
                    }
                    continue;
                }
                ProcMode::Active => {
                    if chaos_stall {
                        if self.proc_debt[t].is_pending() {
                            self.proc_debt[t].chaos_skips += 1;
                        } else if S::ENABLED {
                            let pc = self.procs[t].pc();
                            self.sink.stall(
                                self.cycle,
                                t as u32,
                                Unit::Proc,
                                StallReason::Chaos,
                                pc,
                            );
                        }
                        continue;
                    }
                }
            }
            progress |= self.run_proc(t, &mut run_dyn);
        }

        // Switches.
        for t in 0..n {
            let chaos_stall = match &mut self.chaos {
                Some(c) => c.stall(),
                None => false,
            };
            match self.switch_mode[t] {
                SwitchMode::Dead => continue,
                SwitchMode::Sleeping => {
                    if chaos_stall {
                        self.switch_debt[t].chaos_skips += 1;
                    }
                    continue;
                }
                SwitchMode::Active => {
                    if chaos_stall {
                        if self.switch_debt[t].is_pending() {
                            self.switch_debt[t].chaos_skips += 1;
                        } else if S::ENABLED {
                            let pc = self.switches[t].pc();
                            self.sink.stall(
                                self.cycle,
                                t as u32,
                                Unit::Switch,
                                StallReason::Chaos,
                                pc,
                            );
                        }
                        continue;
                    }
                }
            }
            self.sw_floor = t + 1;
            progress |= self.run_switch(t);
        }
        self.sw_floor = usize::MAX;

        progress |= self.run_dyn_phase(run_dyn);
        progress |= self.commit_dirty();

        self.cycle += 1;
        progress
    }

    /// Steps one processor that the mode dispatch decided runs this cycle,
    /// applying mode transitions, stall accounting, and wake routing. Shared
    /// verbatim between the tracked and event steppers so their observable
    /// behaviour cannot drift. Returns the component's progress contribution.
    fn run_proc(&mut self, t: usize, run_dyn: &mut bool) -> bool {
        let mut progress = false;
        self.settle_proc_debt(t);
        let pc_before = if S::ENABLED { self.procs[t].pc() } else { 0 };
        let (pin_id, pout_id) = (self.sp[t], self.ps[t]);
        let pin_before = self.channels[pin_id].len();
        let (pin, pout) = get_two_mut(&mut self.channels, pin_id, pout_id);
        let outcome = self.procs[t].step(
            &self.code[t].proc,
            self.cycle,
            &self.config,
            &mut self.mems[t],
            pin,
            pout,
            &mut self.endpoints[t],
        );
        // A consumed word frees space the tile's switch may be waiting on.
        if self.channels[pin_id].len() < pin_before {
            self.wake(Comp::SwitchAt(t));
        }
        if self.channels[pout_id].has_staged() {
            self.dirty.push(pout_id);
        }
        if !self.endpoints[t].is_idle() {
            *run_dyn = true;
            // The processor touched its endpoint (injected a request or left
            // inbox words pending): watch the tile and let the router pull
            // from the injection queue.
            self.dyn_mark(t);
            self.dynnet.poke(t);
        }
        match outcome {
            ProcOutcome::Progress => {
                self.stats.tiles[t].proc_insts += 1;
                progress = true;
                if S::ENABLED {
                    self.sink.issue(
                        self.cycle,
                        t as u32,
                        pc_before,
                        self.procs[t].last_issue_latency(),
                    );
                }
                if self.procs[t].halted() {
                    self.proc_mode[t] = ProcMode::Dead;
                    self.live_procs -= 1;
                    // The reference observes the halt one cycle later (the
                    // next step returns `Halted`); mirror that timing.
                    if S::ENABLED {
                        self.sink.idle(self.cycle + 1, t as u32, Unit::Proc);
                    }
                }
            }
            ProcOutcome::Stalled(cause) => {
                self.stats.tiles[t].record_stall(cause);
                if S::ENABLED {
                    self.sink
                        .stall(self.cycle, t as u32, Unit::Proc, cause.into(), pc_before);
                }
                if cause == StallCause::RegNotReady || self.procs[t].has_maturing_send(self.cycle) {
                    progress = true;
                }
                // A stall with no pending sends has no side effects to
                // perform: the processor may sleep if its wake condition
                // is observable (scoreboard timer or port commit).
                if self.procs[t].out_pending_empty() {
                    match cause {
                        StallCause::RegNotReady => {
                            if let Some(wake_at) = self.procs[t].wake_hint() {
                                self.proc_mode[t] = ProcMode::SleepReg { wake_at };
                                self.sleep_reg_count += 1;
                                self.proc_debt[t] = SleepDebt {
                                    since: self.cycle + 1,
                                    chaos_skips: 0,
                                    cause,
                                };
                            }
                        }
                        StallCause::PortInEmpty => {
                            self.proc_mode[t] = ProcMode::SleepPort;
                            self.proc_debt[t] = SleepDebt {
                                since: self.cycle + 1,
                                chaos_skips: 0,
                                cause,
                            };
                        }
                        // PortOutFull implies pending sends (not reached
                        // here); Dynamic waits are serviced by the handler
                        // phase and stay active — they are rare and cheap.
                        _ => {}
                    }
                }
            }
            ProcOutcome::Halted => {
                self.proc_mode[t] = ProcMode::Dead;
                self.live_procs -= 1;
                if S::ENABLED {
                    self.sink.idle(self.cycle, t as u32, Unit::Proc);
                }
            }
        }
        progress
    }

    /// Steps one switch that the mode dispatch decided runs this cycle (shared
    /// between the tracked and event steppers; see [`Self::run_proc`]).
    fn run_switch(&mut self, t: usize) -> bool {
        let mut progress = false;
        self.settle_switch_debt(t);
        let outcome = self.step_switch(t);
        // Words consumed by the route free space upstream writers may be
        // waiting on.
        for i in 0..self.consumed.len() {
            let id = self.consumed[i];
            self.wake(self.chan_writer[id]);
        }
        match outcome {
            SwitchOutcome::Progress => progress = true,
            SwitchOutcome::Stalled => {
                self.switch_mode[t] = SwitchMode::Sleeping;
                self.switch_debt[t] = SleepDebt {
                    since: self.cycle + 1,
                    chaos_skips: 0,
                    cause: self.last_switch_stall,
                };
            }
            SwitchOutcome::Halted => {
                self.switch_mode[t] = SwitchMode::Dead;
                self.live_switches -= 1;
                if S::ENABLED {
                    self.sink.idle(self.cycle, t as u32, Unit::Switch);
                }
            }
        }
        progress
    }

    /// Adds tile `t` to the dynamic watch list (idempotent).
    fn dyn_mark(&mut self, t: usize) {
        if !self.dyn_watched[t] {
            self.dyn_watched[t] = true;
            self.dyn_watch.push(t);
        }
    }

    /// Dynamic network and handlers, skipped entirely while quiescent (shared
    /// between the tracked and event steppers). Cost is proportional to live
    /// dynamic traffic: the router step visits only its hot worklist, and the
    /// handler loop steps only watched tiles. A handler whose tile is not
    /// watched has an idle handler and an idle endpoint, for which
    /// [`Handler::step`] is a no-op returning `false` — so the skip is
    /// observationally identical to the reference's full scan.
    fn run_dyn_phase(&mut self, run_dyn: bool) -> bool {
        if !run_dyn {
            return false;
        }
        let mut progress = false;
        if self.dynnet.step_hot(&mut self.endpoints) {
            self.stats.dyn_active_cycles += 1;
            progress = true;
            if S::ENABLED {
                self.sink.dyn_active(self.cycle);
            }
        }
        // Tiles that completed a message this cycle gained inbox work.
        self.dyn_scratch.clear();
        self.dyn_scratch.extend_from_slice(self.dynnet.delivered());
        for i in 0..self.dyn_scratch.len() {
            let t = self.dyn_scratch[i];
            self.dyn_mark(t);
        }
        // Step watched handlers, dropping tiles that went fully idle. Handler
        // steps are per-tile independent, so the (unsorted) watch order does
        // not affect behaviour or statistics.
        let mut i = 0;
        while i < self.dyn_watch.len() {
            let t = self.dyn_watch[i];
            let stepped = self.handlers[t].step(
                t as u32,
                self.cycle,
                self.config.mem_latency,
                &mut self.mems[t],
                &mut self.endpoints[t],
            );
            if stepped || !self.handlers[t].is_idle() {
                // An in-flight handler request is a timed wait, not deadlock.
                progress = true;
            }
            if stepped {
                // The handler may have injected a reply for the router to pull.
                self.dynnet.poke(t);
            }
            if !self.handlers[t].is_idle() || !self.endpoints[t].is_idle() {
                i += 1;
            } else {
                self.dyn_watched[t] = false;
                self.dyn_watch.swap_remove(i);
            }
        }
        self.dyn_active = !self.dynnet.is_idle() || !self.dyn_watch.is_empty();
        debug_assert_eq!(
            self.dyn_active,
            !self.dynnet.is_idle()
                || self.endpoints.iter().any(|e| !e.is_idle())
                || self.handlers.iter().any(|h| !h.is_idle()),
            "dyn_watch lost a non-idle tile"
        );
        progress
    }

    /// Commits exactly the channels that staged a write this cycle; each
    /// commit wakes both endpoints (reader gains a word, writer regains
    /// staging space). Shared between the tracked and event steppers.
    fn commit_dirty(&mut self) -> bool {
        let mut progress = false;
        for i in 0..self.dirty.len() {
            let id = self.dirty[i];
            let committed = self.channels[id].commit();
            debug_assert!(committed, "dirty channel had nothing staged");
            self.stats.static_words += 1;
            progress = true;
            if S::ENABLED {
                self.sink
                    .channel_commit(self.cycle, id, self.channels[id].len());
            }
            self.wake(self.chan_reader[id]);
            self.wake(self.chan_writer[id]);
        }
        self.dirty.clear();
        progress
    }

    /// The calendar-queue event-driven stepper (chaos-free path; see the
    /// module docs and DESIGN.md §13).
    ///
    /// Instead of scanning every component, the cycle's agenda is popped from
    /// the queue: processors first (ascending tile index), then switches
    /// (ascending index via a min-heap, because a switch consuming a word can
    /// wake a higher-indexed switch into the *same* cycle — exactly the
    /// components the tracked scan would still reach). Stale events are
    /// filtered by re-checking the component's mode, so wakes never need to
    /// delete queued timers.
    fn step_event(&mut self) -> bool {
        let n = self.config.n_tiles() as usize;
        let mut progress = false;
        let mut run_dyn = self.dyn_active;

        if !self.queue_live {
            // First event-driven cycle: every component starts Active.
            self.queue_live = true;
            self.proc_agenda.extend(0..n);
            self.switch_agenda.extend((0..n).map(Reverse));
        } else {
            let cycle = self.cycle;
            let Machine {
                queue,
                proc_agenda,
                switch_agenda,
                proc_next_ev,
                switch_next_ev,
                ..
            } = self;
            queue.take_due(cycle, |comp| {
                let t = (comp >> 1) as usize;
                if comp & 1 == UNIT_PROC {
                    proc_next_ev[t] = u64::MAX;
                    proc_agenda.push(t);
                } else {
                    switch_next_ev[t] = u64::MAX;
                    switch_agenda.push(Reverse(t));
                }
            });
        }

        // Processors, in tile order. No wake targets a processor in the same
        // cycle (processor-phase wakes go to switches), so a sorted drain is
        // complete. Duplicate agenda entries are removed by the dedup; events
        // for components that can't run (stale timers, sleeping modes) fall
        // through the mode check.
        self.sw_floor = 0;
        self.proc_agenda.sort_unstable();
        self.proc_agenda.dedup();
        let mut i = 0;
        while i < self.proc_agenda.len() {
            let t = self.proc_agenda[i];
            i += 1;
            match self.proc_mode[t] {
                ProcMode::Dead | ProcMode::SleepPort => continue,
                ProcMode::SleepReg { wake_at } => {
                    if self.cycle < wake_at {
                        // Stale early event; the `wake_at` timer is queued.
                        continue;
                    }
                    self.proc_mode[t] = ProcMode::Active;
                    self.sleep_reg_count -= 1;
                }
                ProcMode::Active => {}
            }
            progress |= self.run_proc(t, &mut run_dyn);
            match self.proc_mode[t] {
                ProcMode::Active => self.schedule_proc(self.cycle + 1, t),
                ProcMode::SleepReg { wake_at } => self.schedule_proc(wake_at, t),
                ProcMode::SleepPort | ProcMode::Dead => {}
            }
        }
        self.proc_agenda.clear();
        // The tracked scan counts every still-sleeping scoreboard timer as
        // progress (a timed wait resolves by itself); sampled here, after
        // matured timers flipped Active and before switch-phase wakes can.
        progress |= self.sleep_reg_count > 0;

        // Switches, ascending index; same-cycle wakes insert into the heap.
        while let Some(Reverse(t)) = self.switch_agenda.pop() {
            if self.switch_seen[t] == self.cycle {
                continue; // duplicate (e.g. timer plus same-cycle wake)
            }
            match self.switch_mode[t] {
                // Don't stamp `switch_seen` on a stale skip: a later wake this
                // same cycle must still be able to run the switch.
                SwitchMode::Dead | SwitchMode::Sleeping => continue,
                SwitchMode::Active => {}
            }
            self.switch_seen[t] = self.cycle;
            self.sw_floor = t + 1;
            progress |= self.run_switch(t);
            if self.switch_mode[t] == SwitchMode::Active {
                self.schedule_switch(self.cycle + 1, t);
            }
        }
        self.sw_floor = usize::MAX;

        progress |= self.run_dyn_phase(run_dyn);
        progress |= self.commit_dirty();

        self.cycle += 1;
        progress
    }

    /// Queues a processor wake event. Insertions already covered by an
    /// earlier-or-equal queued event are suppressed; conversely a pop resets
    /// the guard, so a needed insertion is never lost (duplicates are cheap,
    /// missing events are not).
    fn schedule_proc(&mut self, at: u64, t: usize) {
        debug_assert!(at > self.cycle || !self.queue_live);
        if at < self.proc_next_ev[t] {
            self.queue.push(at, pack(UNIT_PROC, t));
            self.proc_next_ev[t] = at;
        }
    }

    /// Queues a switch wake event; a same-cycle wake (switch not yet reached
    /// by this cycle's drain) goes straight into the live agenda heap.
    fn schedule_switch(&mut self, at: u64, t: usize) {
        if at <= self.cycle {
            debug_assert!(at == self.cycle);
            self.switch_agenda.push(Reverse(t));
        } else if at < self.switch_next_ev[t] {
            self.queue.push(at, pack(UNIT_SWITCH, t));
            self.switch_next_ev[t] = at;
        }
    }

    /// Makes a sleeping component eligible to step again. Its stall debt stays
    /// pending and is settled right before the next actual step, so a spurious
    /// wake is harmless: the component re-stalls, re-records the same stall the
    /// reference would, and goes back to sleep.
    ///
    /// Under the event stepper (`queue_live`), a wake that flips a sleeping
    /// component also inserts its wake event: a woken processor steps next
    /// cycle (processors run before the phases that wake them), a woken switch
    /// steps this cycle iff the switch phase hasn't passed it yet
    /// (`t >= sw_floor`) — exactly when the tracked scan would reach it.
    fn wake(&mut self, c: Comp) {
        match c {
            Comp::ProcAt(t) => {
                match self.proc_mode[t] {
                    ProcMode::SleepReg { .. } => self.sleep_reg_count -= 1,
                    ProcMode::SleepPort => {}
                    ProcMode::Active | ProcMode::Dead => return,
                }
                self.proc_mode[t] = ProcMode::Active;
                if self.queue_live {
                    self.schedule_proc(self.cycle + 1, t);
                }
            }
            Comp::SwitchAt(t) => {
                if self.switch_mode[t] == SwitchMode::Sleeping {
                    self.switch_mode[t] = SwitchMode::Active;
                    if self.queue_live {
                        let at = if t >= self.sw_floor {
                            self.cycle
                        } else {
                            self.cycle + 1
                        };
                        self.schedule_switch(at, t);
                    }
                }
            }
        }
    }

    /// Settles a processor's deferred stall statistics up to (not including)
    /// the current cycle.
    fn settle_proc_debt(&mut self, t: usize) {
        let debt = self.proc_debt[t];
        if !debt.is_pending() {
            return;
        }
        let skipped = self.cycle - debt.since;
        debug_assert!(debt.chaos_skips <= skipped);
        let stalls = skipped - debt.chaos_skips;
        match debt.cause {
            StallCause::RegNotReady => self.stats.tiles[t].stall_reg += stalls,
            StallCause::PortInEmpty => self.stats.tiles[t].stall_port_in += stalls,
            _ => unreachable!("processors only sleep on reg/port-in stalls"),
        }
        if S::ENABLED && skipped > 0 {
            // The pc does not advance while asleep: this is the blocked
            // instruction's pc for the whole span.
            let pc = self.procs[t].pc();
            self.sink.stall_span(
                t as u32,
                Unit::Proc,
                debt.cause.into(),
                debt.since,
                self.cycle,
                debt.chaos_skips,
                pc,
            );
        }
        self.proc_debt[t] = SleepDebt::NONE;
    }

    /// Settles a switch's deferred stall statistics up to (not including) the
    /// current cycle.
    fn settle_switch_debt(&mut self, t: usize) {
        let debt = self.switch_debt[t];
        if !debt.is_pending() {
            return;
        }
        let skipped = self.cycle - debt.since;
        debug_assert!(debt.chaos_skips <= skipped);
        self.stats.tiles[t].switch_stalls += skipped - debt.chaos_skips;
        if S::ENABLED && skipped > 0 {
            let pc = self.switches[t].pc();
            self.sink.stall_span(
                t as u32,
                Unit::Switch,
                debt.cause.into(),
                debt.since,
                self.cycle,
                debt.chaos_skips,
                pc,
            );
        }
        self.switch_debt[t] = SleepDebt::NONE;
    }

    /// Settles every outstanding stall debt (run exit, before reporting).
    fn flush_sleep_stats(&mut self) {
        for t in 0..self.config.n_tiles() as usize {
            self.settle_proc_debt(t);
            self.settle_switch_debt(t);
        }
    }

    /// Steps one switch. Fetch reads the code in place, consumed channel ids
    /// are recorded in `self.consumed`, staged writes are pushed onto
    /// `self.dirty`, and route values go through a reusable scratch buffer —
    /// the whole path is allocation-free after warm-up.
    fn step_switch(&mut self, t: usize) -> SwitchOutcome {
        let Machine {
            config,
            code,
            switches,
            channels,
            ps,
            sp,
            link_out,
            stats,
            dirty,
            consumed,
            route_vals,
            cycle,
            last_switch_stall,
            sink,
            ..
        } = self;
        consumed.clear();
        let sw = &mut switches[t];
        let Some(inst) = sw.fetch(&code[t].switch) else {
            return SwitchOutcome::Halted;
        };
        // Fetch does not advance: this is the fetched instruction's pc.
        let sw_pc = sw.pc();
        match inst {
            SInst::Route(pairs) => {
                let link_in = |d: Dir| -> Option<usize> {
                    config
                        .neighbor(TileId(t as u32), d)
                        .and_then(|nb| link_out[nb.index()][d.opposite().index()])
                };
                // Phase 1: readiness of all sources and destinations.
                for (src, _) in pairs {
                    let ready = match src {
                        SSrc::Dir(d) => match link_in(*d) {
                            Some(id) => channels[id].can_read(),
                            None => {
                                panic!("tile{t} switch routes from {d:?} but there is no neighbour")
                            }
                        },
                        SSrc::Proc => channels[ps[t]].can_read(),
                        SSrc::Reg(_) => true,
                    };
                    if !ready {
                        stats.tiles[t].switch_stalls += 1;
                        *last_switch_stall = StallCause::PortInEmpty;
                        if S::ENABLED {
                            sink.stall(
                                *cycle,
                                t as u32,
                                Unit::Switch,
                                StallReason::ReceiveEmpty,
                                sw_pc,
                            );
                        }
                        return SwitchOutcome::Stalled;
                    }
                }
                for (_, dst) in pairs {
                    let ready = match dst {
                        SDst::Dir(d) => match link_out[t][d.index()] {
                            Some(id) => channels[id].can_write(),
                            None => {
                                panic!("tile{t} switch routes to {d:?} but there is no neighbour")
                            }
                        },
                        SDst::Proc => channels[sp[t]].can_write(),
                        SDst::Reg(_) => true,
                    };
                    if !ready {
                        stats.tiles[t].switch_stalls += 1;
                        *last_switch_stall = StallCause::PortOutFull;
                        if S::ENABLED {
                            sink.stall(
                                *cycle,
                                t as u32,
                                Unit::Switch,
                                StallReason::SendFull,
                                sw_pc,
                            );
                        }
                        return SwitchOutcome::Stalled;
                    }
                }
                // Phase 2: consume each distinct source once, then fan out.
                route_vals.clear();
                for (src, _) in pairs {
                    if route_vals.iter().any(|(s, _)| s == src) {
                        continue;
                    }
                    let v = match src {
                        SSrc::Dir(d) => {
                            let id = link_in(*d).unwrap();
                            consumed.push(id);
                            channels[id].read()
                        }
                        SSrc::Proc => {
                            let id = ps[t];
                            consumed.push(id);
                            channels[id].read()
                        }
                        SSrc::Reg(r) => sw.reg(*r),
                    };
                    route_vals.push((*src, v));
                }
                for (src, dst) in pairs {
                    let v = route_vals.iter().find(|(s, _)| s == src).unwrap().1;
                    match dst {
                        SDst::Dir(d) => {
                            let id = link_out[t][d.index()].unwrap();
                            channels[id].write(v);
                            dirty.push(id);
                        }
                        SDst::Proc => {
                            let id = sp[t];
                            channels[id].write(v);
                            dirty.push(id);
                        }
                        SDst::Reg(r) => sw.set_reg(*r, v),
                    }
                }
                sw.advance();
                stats.tiles[t].switch_routes += 1;
                if S::ENABLED {
                    sink.route(*cycle, t as u32, pairs, sw_pc);
                }
                SwitchOutcome::Progress
            }
            other => {
                sw.exec_control(other);
                if S::ENABLED {
                    sink.switch_control(*cycle, t as u32, sw_pc);
                }
                SwitchOutcome::Progress
            }
        }
    }

    /// Runs until completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if progress stops while work remains, or
    /// [`SimError::StepLimitExceeded`] if the cycle budget runs out.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        // Without chaos, one no-progress cycle is a fixpoint (deadlock); with
        // random stalls we require a long streak before declaring one.
        let deadlock_streak = if self.chaos.is_some() { 100_000 } else { 2 };
        let mut no_progress = 0u64;
        while !self.quiesced() {
            if self.cycle >= self.config.step_limit {
                self.flush_sleep_stats();
                return Err(SimError::StepLimitExceeded {
                    limit: self.config.step_limit,
                });
            }
            if self.step() {
                no_progress = 0;
            } else {
                no_progress += 1;
                if no_progress >= deadlock_streak {
                    self.flush_sleep_stats();
                    return Err(SimError::Deadlock {
                        cycle: self.cycle,
                        detail: self.deadlock_detail(),
                    });
                }
            }
        }
        self.flush_sleep_stats();
        Ok(RunReport {
            // The final counted cycle is the one in which the last component
            // halted; trailing no-progress cycles are not charged.
            cycles: self.cycle - no_progress,
            stats: self.stats.clone(),
        })
    }

    /// Dumps a human-readable snapshot of every non-halted component and the
    /// static-network channel occupancy (deadlock debugging).
    pub fn dump_state(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (t, p) in self.procs.iter().enumerate() {
            if p.halted() {
                continue;
            }
            let inst = self.code[t].proc.get(p.pc());
            writeln!(s, "tile{t}.proc pc={} inst={:?}", p.pc(), inst).unwrap();
        }
        for (t, sw) in self.switches.iter().enumerate() {
            if sw.halted() {
                continue;
            }
            let inst = self.code[t].switch.get(sw.pc());
            writeln!(s, "tile{t}.switch pc={} inst={:?}", sw.pc(), inst).unwrap();
        }
        for t in 0..self.config.n_tiles() as usize {
            writeln!(
                s,
                "tile{t} ports: proc->sw={} sw->proc={}",
                self.channels[self.ps[t]].len(),
                self.channels[self.sp[t]].len()
            )
            .unwrap();
            for dir in Dir::ALL {
                if let Some(id) = self.link_out[t][dir.index()] {
                    if !self.channels[id].is_empty() {
                        writeln!(
                            s,
                            "  link tile{t}->{dir:?}: {} words",
                            self.channels[id].len()
                        )
                        .unwrap();
                    }
                }
            }
        }
        s
    }

    fn deadlock_detail(&self) -> String {
        let mut stuck = Vec::new();
        for (t, p) in self.procs.iter().enumerate() {
            if !p.halted() {
                stuck.push(format!("tile{t}.proc@pc{}", p.pc()));
            }
        }
        for (t, s) in self.switches.iter().enumerate() {
            if !s.halted() {
                stuck.push(format!("tile{t}.switch@pc{}", s.pc()));
            }
        }
        if stuck.len() > 8 {
            stuck.truncate(8);
            stuck.push("…".into());
        }
        stuck.join(", ")
    }
}

fn get_two_mut(v: &mut [Channel], a: usize, b: usize) -> (&mut Channel, &mut Channel) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{ProcAsm, SwitchAsm};
    use crate::isa::{Dst, Src};
    use raw_ir::{BinOp, Imm};

    fn neighbor_message_program() -> MachineProgram {
        // Figure 4: tile(0,0) computes x+y and sends; tile(0,1) receives and
        // computes w + received. We mark completion by storing to memory.
        let mut p0 = ProcAsm::new();
        p0.bin(
            BinOp::Add,
            Dst::PortOut,
            Src::Imm(Imm::I(30)),
            Src::Imm(Imm::I(12)),
        );
        p0.halt();
        let mut s0 = SwitchAsm::new();
        s0.route(&[(SSrc::Proc, SDst::Dir(Dir::East))]);
        s0.halt();

        let mut s1 = SwitchAsm::new();
        s1.route(&[(SSrc::Dir(Dir::West), SDst::Proc)]);
        s1.halt();
        let mut p1 = ProcAsm::new();
        p1.bin(BinOp::Add, Dst::Reg(1), Src::Imm(Imm::I(100)), Src::PortIn);
        p1.store_imm_addr(Src::Reg(1), 0);
        p1.halt();

        MachineProgram {
            tiles: vec![
                TileCode {
                    proc: p0.finish(),
                    switch: s0.finish(),
                },
                TileCode {
                    proc: p1.finish(),
                    switch: s1.finish(),
                },
            ],
        }
    }

    #[test]
    fn figure4_neighbor_message_latency() {
        let mut m = Machine::new(MachineConfig::grid(1, 2), &neighbor_message_program());
        // Step cycle by cycle and find the cycle in which tile 1's add issues.
        // Send issues at cycle 0; the paper's cost model says the receive-side
        // add executes at cycle 3 (4-cycle end-to-end latency).
        let mut recv_cycle = None;
        for _ in 0..20 {
            let before = m.stats.tiles[1].proc_insts;
            m.step();
            if recv_cycle.is_none() && m.stats.tiles[1].proc_insts > before {
                recv_cycle = Some(m.cycle - 1);
            }
            if m.finished() {
                break;
            }
        }
        assert_eq!(
            recv_cycle,
            Some(3),
            "receive-side add must issue at cycle 3"
        );
        assert_eq!(m.mem_word(TileId(1), 0), 142);
    }

    #[test]
    fn run_reports_and_finishes() {
        let mut m = Machine::new(MachineConfig::grid(1, 2), &neighbor_message_program());
        let report = m.run().expect("completes");
        assert!(
            report.cycles >= 4 && report.cycles < 20,
            "{}",
            report.cycles
        );
        assert!(report.stats.static_words >= 3); // proc→sw, sw→sw, sw→proc
        assert_eq!(m.mem_word(TileId(1), 0), 142);
    }

    #[test]
    fn deadlock_detected() {
        // Tile 0 processor reads from its port but nothing ever sends.
        let mut p0 = ProcAsm::new();
        p0.recv(Dst::Reg(1));
        p0.halt();
        let mut s0 = SwitchAsm::new();
        s0.halt();
        let program = MachineProgram {
            tiles: vec![TileCode {
                proc: p0.finish(),
                switch: s0.finish(),
            }],
        };
        let mut m = Machine::new(MachineConfig::grid(1, 1), &program);
        match m.run() {
            Err(SimError::Deadlock { detail, .. }) => {
                assert!(detail.contains("tile0.proc"), "{detail}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn multicast_route_duplicates_word() {
        // 1x3: middle tile's switch multicasts a word from the west to both
        // its processor and the east neighbour.
        let mut p0 = ProcAsm::new();
        p0.send(Src::Imm(Imm::I(7)));
        p0.halt();
        let mut s0 = SwitchAsm::new();
        s0.route_out(Dir::East);
        s0.halt();

        let mut s1 = SwitchAsm::new();
        s1.route(&[
            (SSrc::Dir(Dir::West), SDst::Proc),
            (SSrc::Dir(Dir::West), SDst::Dir(Dir::East)),
        ]);
        s1.halt();
        let mut p1 = ProcAsm::new();
        p1.recv(Dst::Reg(1));
        p1.store_imm_addr(Src::Reg(1), 0);
        p1.halt();

        let mut s2 = SwitchAsm::new();
        s2.route_in(Dir::West);
        s2.halt();
        let mut p2 = ProcAsm::new();
        p2.recv(Dst::Reg(1));
        p2.store_imm_addr(Src::Reg(1), 0);
        p2.halt();

        let program = MachineProgram {
            tiles: vec![
                TileCode {
                    proc: p0.finish(),
                    switch: s0.finish(),
                },
                TileCode {
                    proc: p1.finish(),
                    switch: s1.finish(),
                },
                TileCode {
                    proc: p2.finish(),
                    switch: s2.finish(),
                },
            ],
        };
        let mut m = Machine::new(MachineConfig::grid(1, 3), &program);
        m.run().expect("completes");
        assert_eq!(m.mem_word(TileId(1), 0), 7);
        assert_eq!(m.mem_word(TileId(2), 0), 7);
    }

    #[test]
    fn dynamic_remote_load_round_trip() {
        // 2 tiles. Tile 1's memory[5] = 1234 (preloaded). Tile 0 issues a
        // DLoad of the global address for (tile 1, local 5) and stores the
        // result locally.
        let config = MachineConfig::grid(1, 2);
        let gaddr = config.make_gaddr(TileId(1), 5);
        let mut p0 = ProcAsm::new();
        p0.dload(Dst::Reg(1), Src::Imm(Imm::I(gaddr as i32)));
        p0.store_imm_addr(Src::Reg(1), 0);
        p0.halt();
        let mut s0 = SwitchAsm::new();
        s0.halt();
        let program = MachineProgram {
            tiles: vec![
                TileCode {
                    proc: p0.finish(),
                    switch: s0.finish(),
                },
                TileCode {
                    proc: vec![crate::isa::PInst::Halt],
                    switch: vec![SInst::Halt],
                },
            ],
        };
        let mut m = Machine::new(config, &program);
        m.set_mem_word(TileId(1), 5, 1234);
        m.run().expect("completes");
        assert_eq!(m.mem_word(TileId(0), 0), 1234);
    }

    #[test]
    fn dynamic_remote_store_round_trip() {
        let config = MachineConfig::grid(2, 2);
        let gaddr = config.make_gaddr(TileId(3), 9);
        let mut p0 = ProcAsm::new();
        p0.dstore(Src::Imm(Imm::I(gaddr as i32)), Src::Imm(Imm::I(4321)));
        // The ack guarantees completion before halt.
        p0.halt();
        let mut tiles = vec![TileCode {
            proc: p0.finish(),
            switch: vec![SInst::Halt],
        }];
        for _ in 1..4 {
            tiles.push(TileCode {
                proc: vec![crate::isa::PInst::Halt],
                switch: vec![SInst::Halt],
            });
        }
        let mut m = Machine::new(config, &MachineProgram { tiles });
        m.run().expect("completes");
        assert_eq!(m.mem_word(TileId(3), 9), 4321);
    }

    #[test]
    fn chaos_does_not_change_results() {
        // The static ordering property (Appendix A) on a small program.
        let base = {
            let mut m = Machine::new(MachineConfig::grid(1, 2), &neighbor_message_program());
            m.run().unwrap();
            m.mem_word(TileId(1), 0)
        };
        for seed in 1..6 {
            let mut m = Machine::new(MachineConfig::grid(1, 2), &neighbor_message_program())
                .with_chaos(ChaosConfig {
                    seed,
                    stall_percent: 40,
                });
            m.run().expect("chaos run completes");
            assert_eq!(m.mem_word(TileId(1), 0), base, "seed {seed}");
        }
    }

    #[test]
    fn install_memory_bulk_copy() {
        let mut m = Machine::new(MachineConfig::grid(1, 1), &MachineProgram::empty(1));
        m.install_memory(TileId(0), 10, &[1, 2, 3]);
        assert_eq!(m.mem_word(TileId(0), 11), 2);
    }

    #[test]
    fn reference_stepper_matches_tracked() {
        // The dedicated differential suite covers compiled workloads; this is
        // the in-crate smoke check on a hand-written program.
        let run = |stepper: u8| {
            let mut m = Machine::new(MachineConfig::grid(1, 2), &neighbor_message_program());
            m = match stepper {
                0 => m,
                1 => m.with_reference_stepper(),
                _ => m.with_event_stepper(),
            };
            let report = m.run().expect("completes");
            (report.cycles, report.stats, m.mem_word(TileId(1), 0))
        };
        assert_eq!(run(0), run(1));
        assert_eq!(run(0), run(2));
    }

    #[test]
    fn event_stepper_reproduces_timed_wait_accounting() {
        // Mirror of `all_timed_waits_is_not_deadlock` under the event core:
        // the SleepReg timer becomes a queued event, and the stall debt must
        // settle to exactly the same statistics.
        let mut a = ProcAsm::new();
        a.bin(
            BinOp::Mul,
            Dst::Reg(1),
            Src::Imm(Imm::I(6)),
            Src::Imm(Imm::I(7)),
        );
        a.addi(Dst::Reg(2), Src::Reg(1), 0);
        a.store_imm_addr(Src::Reg(2), 0);
        a.halt();
        let program = MachineProgram {
            tiles: vec![TileCode {
                proc: a.finish(),
                switch: vec![SInst::Halt],
            }],
        };
        let mut m = Machine::new(MachineConfig::grid(1, 1), &program).with_event_stepper();
        let report = m.run().expect("timed waits must not be deadlock");
        assert_eq!(m.mem_word(TileId(0), 0), 42);
        assert_eq!(report.cycles, 15);
        assert_eq!(report.stats.tiles[0].stall_reg, 11);
    }

    #[test]
    fn event_stepper_detects_deadlock_at_same_cycle() {
        let mut p0 = ProcAsm::new();
        p0.recv(Dst::Reg(1));
        p0.halt();
        let program = MachineProgram {
            tiles: vec![TileCode {
                proc: p0.finish(),
                switch: vec![SInst::Halt],
            }],
        };
        let run = |event: bool| {
            let mut m = Machine::new(MachineConfig::grid(1, 1), &program);
            if event {
                m = m.with_event_stepper();
            }
            match m.run() {
                Err(SimError::Deadlock { cycle, detail }) => (cycle, detail),
                other => panic!("expected deadlock, got {other:?}"),
            }
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn event_stepper_with_chaos_matches_tracked() {
        // With chaos the event core must preserve the RNG stream (it takes
        // the tracked path); results and statistics stay bit-identical.
        for seed in [3u64, 11, 19] {
            let chaos = ChaosConfig {
                seed,
                stall_percent: 40,
            };
            let run = |event: bool| {
                let mut m = Machine::new(MachineConfig::grid(1, 2), &neighbor_message_program())
                    .with_chaos(chaos);
                if event {
                    m = m.with_event_stepper();
                }
                let report = m.run().expect("completes");
                (report.cycles, report.stats, m.mem_word(TileId(1), 0))
            };
            assert_eq!(run(false), run(true), "seed {seed}");
        }
    }

    #[test]
    fn all_timed_waits_is_not_deadlock() {
        // Every component of the machine is simultaneously in a timed wait:
        // the only processor sits out a 12-cycle multiply scoreboard stall and
        // the switch is halted. The activity tracker puts the whole machine to
        // sleep; the deadlock detector must still see progress.
        let mut a = ProcAsm::new();
        a.bin(
            BinOp::Mul,
            Dst::Reg(1),
            Src::Imm(Imm::I(6)),
            Src::Imm(Imm::I(7)),
        );
        a.addi(Dst::Reg(2), Src::Reg(1), 0);
        a.store_imm_addr(Src::Reg(2), 0);
        a.halt();
        let program = MachineProgram {
            tiles: vec![TileCode {
                proc: a.finish(),
                switch: vec![SInst::Halt],
            }],
        };
        let mut m = Machine::new(MachineConfig::grid(1, 1), &program);
        let report = m.run().expect("timed waits must not be deadlock");
        assert_eq!(m.mem_word(TileId(0), 0), 42);
        // Issue mul at 0, add stalls until 12, store at 13, halt at 14.
        assert_eq!(report.cycles, 15);
        assert_eq!(report.stats.tiles[0].stall_reg, 11);
    }

    #[test]
    fn near_deadlock_with_chaos_completes() {
        // Tile 1 blocks on its input port for the full latency of tile 0's
        // multiply — a near-deadlock (long stretch with only timed waits) —
        // while chaos stalls perturb every component. The run must complete
        // with the correct result, not be misreported as deadlock.
        let mut p0 = ProcAsm::new();
        p0.bin(
            BinOp::Mul,
            Dst::PortOut,
            Src::Imm(Imm::I(6)),
            Src::Imm(Imm::I(7)),
        );
        p0.halt();
        let mut s0 = SwitchAsm::new();
        s0.route(&[(SSrc::Proc, SDst::Dir(Dir::East))]);
        s0.halt();
        let mut s1 = SwitchAsm::new();
        s1.route(&[(SSrc::Dir(Dir::West), SDst::Proc)]);
        s1.halt();
        let mut p1 = ProcAsm::new();
        p1.recv(Dst::Reg(1));
        p1.store_imm_addr(Src::Reg(1), 0);
        p1.halt();
        let program = MachineProgram {
            tiles: vec![
                TileCode {
                    proc: p0.finish(),
                    switch: s0.finish(),
                },
                TileCode {
                    proc: p1.finish(),
                    switch: s1.finish(),
                },
            ],
        };
        for seed in [3u64, 11, 19, 27] {
            let mut m = Machine::new(MachineConfig::grid(1, 2), &program).with_chaos(ChaosConfig {
                seed,
                stall_percent: 50,
            });
            m.run().expect("near-deadlock with chaos completes");
            assert_eq!(m.mem_word(TileId(1), 0), 42, "seed {seed}");
        }
    }

    #[test]
    fn genuine_deadlock_still_detected_with_chaos() {
        // A true deadlock (receive with no sender) must still be reported when
        // chaos stalls are enabled and most components are asleep.
        let mut p0 = ProcAsm::new();
        p0.recv(Dst::Reg(1));
        p0.halt();
        let program = MachineProgram {
            tiles: vec![TileCode {
                proc: p0.finish(),
                switch: vec![SInst::Halt],
            }],
        };
        let mut m = Machine::new(MachineConfig::grid(1, 1), &program).with_chaos(ChaosConfig {
            seed: 5,
            stall_percent: 30,
        });
        match m.run() {
            Err(SimError::Deadlock { detail, .. }) => {
                assert!(detail.contains("tile0.proc"), "{detail}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}

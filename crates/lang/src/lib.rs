//! Mini-C frontend for the RAWCC reproduction.
//!
//! This crate stands in for the SUIF C/Fortran frontend the paper used: it
//! parses a small C-like kernel language, performs affine-driven loop
//! unrolling (paper §5.3's staticizing transformation plus basic-block-growing
//! ILP unrolling, §3.2), and lowers to the [`raw_ir`] three-operand form the
//! orchestrater consumes. See `DESIGN.md` for the substitution rationale.
//!
//! Because the staticizing unroll factor depends on the machine size, source
//! is compiled *per machine size*: [`compile_source`] takes the tile count.
//!
//! # Example
//!
//! ```
//! use raw_lang::compile_source;
//! use raw_ir::interp::Interpreter;
//!
//! let source = "
//!     int i;
//!     int sum = 0;
//!     int A[8];
//!     for (i = 0; i < 8; i = i + 1) A[i] = i * 2;
//!     for (i = 0; i < 8; i = i + 1) sum = sum + A[i];
//! ";
//! let program = compile_source("sums", source, 4)?;
//! let result = Interpreter::new(&program).run()?;
//! let sum = program.var_by_name("sum").unwrap();
//! assert_eq!(result.var_value(sum), raw_ir::Imm::I(56));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod error;
pub mod lower;
pub mod parser;
pub mod token;
pub mod unroll;

pub use error::{LangError, Span};
pub use unroll::UnrollOptions;

use raw_ir::Program;

/// Parses, unrolls (with the default policy for `n_tiles`), and lowers a
/// kernel to an IR program targeting an `n_tiles` machine.
///
/// # Errors
///
/// Returns the first syntax or type error with its source position.
pub fn compile_source(name: &str, source: &str, n_tiles: u32) -> Result<Program, LangError> {
    compile_source_with(name, source, n_tiles, UnrollOptions::for_tiles(n_tiles))
}

/// [`compile_source`] with an explicit unrolling policy (used by the baseline
/// compiler, which wants the original rolled loops).
///
/// # Errors
///
/// Returns the first syntax or type error with its source position.
pub fn compile_source_with(
    name: &str,
    source: &str,
    n_tiles: u32,
    options: UnrollOptions,
) -> Result<Program, LangError> {
    let kernel = parser::parse(name, source)?;
    let unrolled = unroll::unroll_kernel(&kernel, n_tiles, options);
    lower::lower_kernel(&unrolled, n_tiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_ir::interp::Interpreter;
    use raw_ir::Imm;

    #[test]
    fn unrolled_and_rolled_agree() {
        let src = "
            int i; int j;
            float A[8][8];
            float trace = 0.0;
            for (i = 0; i < 8; i = i + 1)
              for (j = 0; j < 8; j = j + 1)
                A[i][j] = tofloat(i * 8 + j);
            for (i = 0; i < 8; i = i + 1)
              trace = trace + A[i][i];
        ";
        let results: Vec<Imm> = [1u32, 2, 4, 8]
            .iter()
            .map(|&n| {
                let p = compile_source("t", src, n).unwrap();
                let r = Interpreter::new(&p).run().unwrap();
                r.var_value(p.var_by_name("trace").unwrap())
            })
            .collect();
        for r in &results {
            assert!(r.bits_eq(results[0]), "{results:?}");
        }
        assert_eq!(results[0], Imm::F((0..8).map(|i| (i * 9) as f32).sum()));
    }

    #[test]
    fn errors_carry_positions() {
        let err = compile_source("t", "int x;\nx = y;", 2).unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn program_name_propagates() {
        let p = compile_source("mykernel", "int x = 1;", 1).unwrap();
        assert_eq!(p.name, "mykernel");
    }
}

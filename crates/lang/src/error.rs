//! Frontend errors with source positions.

use std::error::Error;
use std::fmt;

/// A position in the source text (1-based).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Line number (1-based).
    pub line: u32,
    /// Column number (1-based).
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error produced by the mini-C frontend.
#[derive(Clone, Debug, PartialEq)]
pub struct LangError {
    /// Where the error occurred.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl LangError {
    /// Creates an error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        LangError {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::new(Span { line: 3, col: 7 }, "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }
}

//! Typed lowering of the (unrolled) AST to [`raw_ir`] programs.
//!
//! Lowering performs the paper's *initial code transformation* (§3.3) on the
//! fly: expressions decompose into three-operand instructions, and scalar
//! variables are renamed into block-local single-assignment values — a
//! variable is read from its home once per block ([`InstKind::ReadVar`]) and
//! written back once at the end of each block that modifies it
//! ([`InstKind::WriteVar`]).
//!
//! Lowering also classifies every array access (paper §5.1): an access whose
//! linearized index is affine in the enclosing `for` variables, each of whose
//! strides is a multiple of the tile count (guaranteed by the unroller), has a
//! compile-time home-tile residue and becomes [`MemHome::Static`]; anything
//! else becomes [`MemHome::Dynamic`]. On a single-tile machine every access is
//! trivially static.
//!
//! [`InstKind::ReadVar`]: raw_ir::InstKind::ReadVar
//! [`InstKind::WriteVar`]: raw_ir::InstKind::WriteVar
//! [`MemHome::Static`]: raw_ir::MemHome::Static
//! [`MemHome::Dynamic`]: raw_ir::MemHome::Dynamic

use crate::ast::*;
use crate::error::{LangError, Span};
use crate::unroll::{affine_coeff, const_eval, subst_var_zero};
use raw_ir::builder::ProgramBuilder;
use raw_ir::{ArrayId, BinOp, Imm, MemHome, Program, SourceSpan, Ty, UnOp, ValueId, VarId};
use std::collections::HashMap;

/// Lowers an (already unrolled) kernel to an IR program for `n_tiles` tiles.
///
/// # Errors
///
/// Returns type and name-resolution errors with source positions.
pub fn lower_kernel(kernel: &Kernel, n_tiles: u32) -> Result<Program, LangError> {
    let mut lower = Lower {
        b: ProgramBuilder::new(kernel.name.clone()),
        vars: HashMap::new(),
        arrays: HashMap::new(),
        cache: HashMap::new(),
        dirty: Vec::new(),
        loops: Vec::new(),
        n_tiles,
    };
    for v in &kernel.vars {
        if lower.vars.contains_key(&v.name) || lower.arrays.contains_key(&v.name) {
            return Err(LangError::new(
                v.span,
                format!("duplicate name '{}'", v.name),
            ));
        }
        let init = match (v.ty, v.init) {
            (Type::Int, None) => Imm::I(0),
            (Type::Float, None) => Imm::F(0.0),
            (Type::Int, Some(Literal::Int(x))) => Imm::I(x as i32),
            (Type::Float, Some(Literal::Float(x))) => Imm::F(x),
            (Type::Float, Some(Literal::Int(x))) => Imm::F(x as f32),
            (Type::Int, Some(Literal::Float(_))) => {
                return Err(LangError::new(
                    v.span,
                    format!("cannot initialize int '{}' with a float literal", v.name),
                ))
            }
        };
        let id = lower.b.declare_var(v.name.clone(), ir_ty(v.ty), init);
        lower.vars.insert(v.name.clone(), (id, v.ty));
    }
    for a in &kernel.arrays {
        if lower.vars.contains_key(&a.name) || lower.arrays.contains_key(&a.name) {
            return Err(LangError::new(
                a.span,
                format!("duplicate name '{}'", a.name),
            ));
        }
        let id = lower.b.array(a.name.clone(), ir_ty(a.ty), &a.dims);
        lower
            .arrays
            .insert(a.name.clone(), (id, a.dims.clone(), a.ty));
    }
    lower.stmts(&kernel.stmts)?;
    lower.flush();
    lower.b.halt();
    let mut program = lower
        .b
        .finish()
        .map_err(|e| LangError::new(Span::default(), format!("internal lowering error: {e}")))?;
    // Standard local clean-ups (the paper's SUIF frontend provided these).
    raw_ir::opt::optimize(&mut program);
    Ok(program)
}

fn ir_ty(t: Type) -> Ty {
    match t {
        Type::Int => Ty::I32,
        Type::Float => Ty::F32,
    }
}

struct LoopCtx {
    var: String,
    /// Induction value at the first iteration, when known.
    base: Option<i64>,
    /// Per-iteration step, when known.
    step: Option<i64>,
}

struct Lower {
    b: ProgramBuilder,
    vars: HashMap<String, (VarId, Type)>,
    arrays: HashMap<String, (ArrayId, Vec<u32>, Type)>,
    /// Current block-local value of each scalar.
    cache: HashMap<String, ValueId>,
    /// Scalars assigned in the current block, in first-assignment order, each
    /// with the span of the assignment that dirtied it (stamped on the
    /// `WriteVar` emitted at flush).
    dirty: Vec<(String, Span)>,
    loops: Vec<LoopCtx>,
    n_tiles: u32,
}

impl Lower {
    /// Points the builder's provenance stamp at a source position.
    fn at(&mut self, span: Span) {
        self.b.set_span(SourceSpan::new(span.line, span.col));
    }

    /// Writes back dirty variables and forgets block-local values. Must be
    /// called before every block boundary.
    fn flush(&mut self) {
        for (name, span) in std::mem::take(&mut self.dirty) {
            let value = self.cache[&name];
            let (var, _) = self.vars[&name];
            self.at(span);
            self.b.write_var(var, value);
        }
        self.cache.clear();
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Assign { target, value } => self.assign(target, value),
            Stmt::If { cond, then, els } => {
                let (c, ct) = self.expr(cond, Some(Type::Int))?;
                expect(Type::Int, ct, cond.span(), "if condition")?;
                self.flush();
                let then_b = self.b.new_block("then");
                let else_b = self.b.new_block("else");
                let join = self.b.new_block("join");
                self.b.branch(c, then_b, else_b);
                self.b.switch_to(then_b);
                self.stmts(then)?;
                self.flush();
                self.b.jump(join);
                self.b.switch_to(else_b);
                self.stmts(els)?;
                self.flush();
                self.b.jump(join);
                self.b.switch_to(join);
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.flush();
                let header = self.b.new_block("while.header");
                let body_b = self.b.new_block("while.body");
                let exit = self.b.new_block("while.exit");
                self.b.jump(header);
                self.b.switch_to(header);
                let (c, ct) = self.expr(cond, Some(Type::Int))?;
                expect(Type::Int, ct, cond.span(), "while condition")?;
                self.flush();
                self.b.branch(c, body_b, exit);
                self.b.switch_to(body_b);
                self.stmts(body)?;
                self.flush();
                self.b.jump(header);
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::For {
                var,
                init,
                bound,
                inclusive,
                step,
                body,
                span,
            } => {
                let (_, vt) = *self
                    .vars
                    .get(var)
                    .ok_or_else(|| LangError::new(*span, format!("undeclared variable '{var}'")))?;
                expect(Type::Int, vt, *span, "for induction variable")?;
                // i = init
                self.assign(&LValue::Var(var.clone(), *span), init)?;

                // Known trip count? Then rotate into do-while form: the body
                // block ends with increment + test + backward branch, saving a
                // separate header block (and its branch broadcast and variable
                // round-trips) every iteration.
                let trip = match (const_eval(init), const_eval(bound), const_eval(step)) {
                    (Some(i0), Some(b0), Some(s0)) if s0 > 0 => {
                        let upper = if *inclusive { b0 + 1 } else { b0 };
                        Some(((upper - i0).max(0) + s0 - 1) / s0)
                    }
                    _ => None,
                };
                let incr = Expr::Bin {
                    op: BinKind::Add,
                    l: Box::new(Expr::Var(var.clone(), *span)),
                    r: Box::new(step.clone()),
                    span: *span,
                };
                let cond_op = if *inclusive { BinOp::Sle } else { BinOp::Slt };

                match trip {
                    Some(0) => Ok(()), // body never runs; i keeps its init value
                    Some(_) => {
                        self.flush();
                        let body_b = self.b.new_block("for.body");
                        let exit = self.b.new_block("for.exit");
                        self.b.jump(body_b);
                        self.b.switch_to(body_b);
                        self.loops.push(LoopCtx {
                            var: var.clone(),
                            base: const_eval(init),
                            step: const_eval(step),
                        });
                        self.stmts(body)?;
                        self.assign(&LValue::Var(var.clone(), *span), &incr)?;
                        self.loops.pop();
                        let (iv, _) = self.expr(&Expr::Var(var.clone(), *span), Some(Type::Int))?;
                        let (bv, bt) = self.expr(bound, Some(Type::Int))?;
                        expect(Type::Int, bt, bound.span(), "for bound")?;
                        self.at(*span);
                        let c = self.b.bin(cond_op, iv, bv);
                        self.flush();
                        self.b.branch(c, body_b, exit);
                        self.b.switch_to(exit);
                        Ok(())
                    }
                    None => {
                        // Unknown trip count: classic header-guarded loop.
                        self.flush();
                        let header = self.b.new_block("for.header");
                        let body_b = self.b.new_block("for.body");
                        let exit = self.b.new_block("for.exit");
                        self.b.jump(header);
                        self.b.switch_to(header);
                        let (iv, _) = self.expr(&Expr::Var(var.clone(), *span), Some(Type::Int))?;
                        let (bv, bt) = self.expr(bound, Some(Type::Int))?;
                        expect(Type::Int, bt, bound.span(), "for bound")?;
                        self.at(*span);
                        let c = self.b.bin(cond_op, iv, bv);
                        self.flush();
                        self.b.branch(c, body_b, exit);
                        self.b.switch_to(body_b);
                        self.loops.push(LoopCtx {
                            var: var.clone(),
                            base: const_eval(init),
                            step: const_eval(step),
                        });
                        self.stmts(body)?;
                        self.assign(&LValue::Var(var.clone(), *span), &incr)?;
                        self.loops.pop();
                        self.flush();
                        self.b.jump(header);
                        self.b.switch_to(exit);
                        Ok(())
                    }
                }
            }
        }
    }

    fn assign(&mut self, target: &LValue, value: &Expr) -> Result<(), LangError> {
        match target {
            LValue::Var(name, span) => {
                let (_, vt) = *self.vars.get(name).ok_or_else(|| {
                    LangError::new(*span, format!("undeclared variable '{name}'"))
                })?;
                let (v, t) = self.expr(value, Some(vt))?;
                expect(vt, t, value.span(), "assignment")?;
                if !self.dirty.iter().any(|(n, _)| n == name) {
                    self.dirty.push((name.clone(), *span));
                }
                self.cache.insert(name.clone(), v);
                Ok(())
            }
            LValue::Index {
                array,
                indices,
                span,
            } => {
                let (aid, dims, ety) =
                    self.arrays.get(array).cloned().ok_or_else(|| {
                        LangError::new(*span, format!("undeclared array '{array}'"))
                    })?;
                let (v, t) = self.expr(value, Some(ety))?;
                expect(ety, t, value.span(), "array store")?;
                let (idx, home) = self.index(&dims, indices, *span)?;
                self.at(*span);
                self.b.store(aid, idx, v, home);
                Ok(())
            }
        }
    }

    /// Lowers a multi-dimensional index to a linearized value plus its
    /// static/dynamic home classification.
    fn index(
        &mut self,
        dims: &[u32],
        indices: &[Expr],
        span: Span,
    ) -> Result<(ValueId, MemHome), LangError> {
        if dims.len() != indices.len() {
            return Err(LangError::new(
                span,
                format!(
                    "array has {} dimensions but {} indices were given",
                    dims.len(),
                    indices.len()
                ),
            ));
        }
        // Home classification from the *source* affine form.
        let home = self.classify(dims, indices);
        // Linearized value: ((i0 * d1) + i1) * d2 + i2 ...
        let mut acc: Option<ValueId> = None;
        for (k, idx) in indices.iter().enumerate() {
            let (v, t) = self.expr(idx, Some(Type::Int))?;
            expect(Type::Int, t, idx.span(), "array index")?;
            self.at(span);
            acc = Some(match acc {
                None => v,
                Some(prev) => {
                    let scaled = self.mul_const(prev, dims[k] as i64);
                    self.b.add(scaled, v)
                }
            });
        }
        Ok((acc.expect("arrays have at least one dimension"), home))
    }

    /// Computes the home residue of an access if it satisfies the static
    /// reference property (paper §5.3); otherwise classifies it dynamic.
    fn classify(&self, dims: &[u32], indices: &[Expr]) -> MemHome {
        let n = self.n_tiles as i64;
        if n == 1 {
            // Every element lives on the only tile.
            return MemHome::Static(0);
        }
        // Linearized affine form over active loop variables.
        let mut constant = 0i64;
        let mut coeffs: HashMap<&str, i64> = HashMap::new();
        let mut mult = 1i64;
        for (idx, dim) in indices.iter().zip(dims).rev() {
            match const_eval(idx) {
                Some(c) => constant += c * mult,
                None => {
                    // Must be affine over the loop variables; the non-loop part
                    // must be constant.
                    let mut remainder = idx.clone();
                    for ctx in &self.loops {
                        match affine_coeff(idx, &ctx.var) {
                            Some(c) => {
                                if c != 0 {
                                    *coeffs.entry(ctx.var.as_str()).or_insert(0) += c * mult;
                                }
                                remainder = subst_var_zero(&remainder, &ctx.var);
                            }
                            None => return MemHome::Dynamic,
                        }
                    }
                    match const_eval(&remainder) {
                        Some(c) => constant += c * mult,
                        None => return MemHome::Dynamic,
                    }
                }
            }
            mult *= *dim as i64;
        }
        // Every stride must vanish mod n, with known loop bases.
        let mut residue = constant;
        for ctx in &self.loops {
            let coeff = coeffs.get(ctx.var.as_str()).copied().unwrap_or(0);
            if coeff == 0 {
                continue;
            }
            match (ctx.base, ctx.step) {
                (Some(base), Some(step)) if (coeff * step).rem_euclid(n) == 0 => {
                    residue += coeff * base;
                }
                _ => return MemHome::Dynamic,
            }
        }
        MemHome::Static(residue.rem_euclid(n) as u32)
    }

    /// Emits `v * c` using shifts and adds where profitable (a 12-cycle
    /// multiply otherwise — Table 1).
    fn mul_const(&mut self, v: ValueId, c: i64) -> ValueId {
        let (mag, negate) = if c < 0 { (-c, true) } else { (c, false) };
        let reduced = match mag {
            0 => Some(self.b.const_i32(0)),
            1 => Some(v),
            m if m as u64 > i32::MAX as u64 => None,
            m if (m as u64).is_power_of_two() => {
                let sh = self.b.const_i32(m.trailing_zeros() as i32);
                Some(self.b.bin(BinOp::Shl, v, sh))
            }
            m if ((m + 1) as u64).is_power_of_two() => {
                // 2^k - 1: (v << k) - v.
                let sh = self.b.const_i32((m + 1).trailing_zeros() as i32);
                let shifted = self.b.bin(BinOp::Shl, v, sh);
                Some(self.b.sub(shifted, v))
            }
            m if ((m - 1) as u64).is_power_of_two() => {
                // 2^k + 1: (v << k) + v.
                let sh = self.b.const_i32((m - 1).trailing_zeros() as i32);
                let shifted = self.b.bin(BinOp::Shl, v, sh);
                Some(self.b.add(shifted, v))
            }
            _ => None,
        };
        let value = reduced.unwrap_or_else(|| {
            let c = self.b.const_i32(mag as i32);
            self.b.mul(v, c)
        });
        if negate {
            self.b.un(raw_ir::UnOp::Neg, value)
        } else {
            value
        }
    }

    fn expr(&mut self, e: &Expr, want: Option<Type>) -> Result<(ValueId, Type), LangError> {
        match e {
            Expr::Lit(Literal::Int(v), span) => {
                self.at(*span);
                if want == Some(Type::Float) {
                    Ok((self.b.const_f32(*v as f32), Type::Float))
                } else {
                    let x = i32::try_from(*v).map_err(|_| {
                        LangError::new(*span, format!("integer literal {v} out of range"))
                    })?;
                    Ok((self.b.const_i32(x), Type::Int))
                }
            }
            Expr::Lit(Literal::Float(v), span) => {
                self.at(*span);
                Ok((self.b.const_f32(*v), Type::Float))
            }
            Expr::Var(name, span) => {
                let (var, t) = *self.vars.get(name).ok_or_else(|| {
                    LangError::new(*span, format!("undeclared variable '{name}'"))
                })?;
                if let Some(&v) = self.cache.get(name) {
                    return Ok((v, t));
                }
                self.at(*span);
                let v = self.b.read_var(var);
                self.cache.insert(name.clone(), v);
                Ok((v, t))
            }
            Expr::Index {
                array,
                indices,
                span,
            } => {
                let (aid, dims, ety) =
                    self.arrays.get(array).cloned().ok_or_else(|| {
                        LangError::new(*span, format!("undeclared array '{array}'"))
                    })?;
                let (idx, home) = self.index(&dims, indices, *span)?;
                self.at(*span);
                Ok((self.b.load(aid, idx, home), ety))
            }
            Expr::Un { op, e: inner, span } => {
                let (v, t) = self.expr(inner, want)?;
                self.at(*span);
                match op {
                    UnKind::Neg => {
                        let r = match t {
                            Type::Int => self.b.un(UnOp::Neg, v),
                            Type::Float => self.b.un(UnOp::NegF, v),
                        };
                        Ok((r, t))
                    }
                    UnKind::Not => {
                        expect(Type::Int, t, *span, "'!'")?;
                        let zero = self.b.const_i32(0);
                        Ok((self.b.seq(v, zero), Type::Int))
                    }
                }
            }
            Expr::Call { f, arg, span } => {
                let (want_arg, out) = match f {
                    Intrinsic::Sqrt | Intrinsic::Abs => (Type::Float, Type::Float),
                    Intrinsic::ToInt => (Type::Float, Type::Int),
                    Intrinsic::ToFloat => (Type::Int, Type::Float),
                };
                let (v, t) = self.expr(arg, Some(want_arg))?;
                expect(want_arg, t, *span, "intrinsic argument")?;
                self.at(*span);
                let op = match f {
                    Intrinsic::Sqrt => UnOp::SqrtF,
                    Intrinsic::Abs => UnOp::AbsF,
                    Intrinsic::ToInt => UnOp::CvtFI,
                    Intrinsic::ToFloat => UnOp::CvtIF,
                };
                Ok((self.b.un(op, v), out))
            }
            Expr::Bin { op, l, r, span } => self.bin(*op, l, r, *span, want),
        }
    }

    fn bin(
        &mut self,
        op: BinKind,
        l: &Expr,
        r: &Expr,
        span: Span,
        want: Option<Type>,
    ) -> Result<(ValueId, Type), LangError> {
        // Operand type: float if either side is (or is forced) float.
        let operand_want = match op {
            BinKind::And | BinKind::Or => Some(Type::Int),
            BinKind::Add | BinKind::Sub | BinKind::Mul | BinKind::Div => want,
            _ => None,
        };
        let (mut lv, lt) = self.expr(l, operand_want)?;
        // Promote an int-literal left side against a float right side.
        let (rv, rt) = self.expr(
            r,
            Some(lt).filter(|_| operand_want.is_none()).or(operand_want),
        )?;
        self.at(span);
        let ty = if lt == rt {
            lt
        } else if lt == Type::Int && matches!(l, Expr::Lit(Literal::Int(_), _)) {
            // Re-emit the left literal as float.
            if let Expr::Lit(Literal::Int(v), _) = l {
                lv = self.b.const_f32(*v as f32);
            }
            Type::Float
        } else {
            return Err(LangError::new(
                span,
                format!("operand type mismatch: {lt:?} vs {rt:?}"),
            ));
        };
        let (result, out_ty) = match (op, ty) {
            (BinKind::Add, Type::Int) => (self.b.add(lv, rv), Type::Int),
            (BinKind::Sub, Type::Int) => (self.b.sub(lv, rv), Type::Int),
            (BinKind::Mul, Type::Int) => {
                // Strength-reduce multiplies by literal constants: the 12-cycle
                // multiplier dominates address arithmetic otherwise.
                let reduced = match (const_eval(l), const_eval(r)) {
                    (Some(c), _) => Some(self.mul_const(rv, c)),
                    (_, Some(c)) => Some(self.mul_const(lv, c)),
                    _ => None,
                };
                (reduced.unwrap_or_else(|| self.b.mul(lv, rv)), Type::Int)
            }
            (BinKind::Div, Type::Int) => (self.b.div(lv, rv), Type::Int),
            (BinKind::Rem, Type::Int) => (self.b.bin(BinOp::Rem, lv, rv), Type::Int),
            (BinKind::Add, Type::Float) => (self.b.add_f(lv, rv), Type::Float),
            (BinKind::Sub, Type::Float) => (self.b.sub_f(lv, rv), Type::Float),
            (BinKind::Mul, Type::Float) => (self.b.mul_f(lv, rv), Type::Float),
            (BinKind::Div, Type::Float) => (self.b.div_f(lv, rv), Type::Float),
            (BinKind::Rem, Type::Float) => {
                return Err(LangError::new(span, "'%' requires integer operands"))
            }
            (BinKind::Lt, Type::Int) => (self.b.slt(lv, rv), Type::Int),
            (BinKind::Gt, Type::Int) => (self.b.slt(rv, lv), Type::Int),
            (BinKind::Le, Type::Int) => (self.b.bin(BinOp::Sle, lv, rv), Type::Int),
            (BinKind::Ge, Type::Int) => (self.b.bin(BinOp::Sle, rv, lv), Type::Int),
            (BinKind::Eq, Type::Int) => (self.b.seq(lv, rv), Type::Int),
            (BinKind::Ne, Type::Int) => (self.b.bin(BinOp::Sne, lv, rv), Type::Int),
            (BinKind::Lt, Type::Float) => (self.b.bin(BinOp::FLt, lv, rv), Type::Int),
            (BinKind::Gt, Type::Float) => (self.b.bin(BinOp::FLt, rv, lv), Type::Int),
            (BinKind::Le, Type::Float) => (self.b.bin(BinOp::FLe, lv, rv), Type::Int),
            (BinKind::Ge, Type::Float) => (self.b.bin(BinOp::FLe, rv, lv), Type::Int),
            (BinKind::Eq, Type::Float) => (self.b.bin(BinOp::FEq, lv, rv), Type::Int),
            (BinKind::Ne, Type::Float) => {
                let eq = self.b.bin(BinOp::FEq, lv, rv);
                let one = self.b.const_i32(1);
                (self.b.bin(BinOp::Xor, eq, one), Type::Int)
            }
            (BinKind::And, Type::Int) => {
                let zero = self.b.const_i32(0);
                let ln = self.b.bin(BinOp::Sne, lv, zero);
                let zero2 = self.b.const_i32(0);
                let rn = self.b.bin(BinOp::Sne, rv, zero2);
                (self.b.bin(BinOp::And, ln, rn), Type::Int)
            }
            (BinKind::Or, Type::Int) => {
                let acc = self.b.bin(BinOp::Or, lv, rv);
                let zero = self.b.const_i32(0);
                (self.b.bin(BinOp::Sne, acc, zero), Type::Int)
            }
            (BinKind::And | BinKind::Or, Type::Float) => {
                return Err(LangError::new(span, "logical operators require integers"))
            }
        };
        Ok((result, out_ty))
    }
}

fn expect(want: Type, got: Type, span: Span, what: &str) -> Result<(), LangError> {
    if want == got {
        Ok(())
    } else {
        Err(LangError::new(
            span,
            format!("{what}: expected {want:?}, found {got:?}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use raw_ir::interp::Interpreter;

    fn lower_src(src: &str, n_tiles: u32) -> Result<Program, LangError> {
        let k = parse("test", src)?;
        lower_kernel(&k, n_tiles)
    }

    fn run(src: &str) -> raw_ir::interp::ExecResult {
        let p = lower_src(src, 1).unwrap();
        Interpreter::new(&p).run().unwrap()
    }

    #[test]
    fn arithmetic_and_assignment() {
        let r = run("int x; int y = 4; x = y * 3 + 2;");
        assert_eq!(r.vars[0], Imm::I(14));
    }

    #[test]
    fn float_promotion_of_int_literals() {
        let r = run("float x; x = 2 * 1.5 + 1;");
        assert_eq!(r.vars[0], Imm::F(4.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(lower_src("int x; float y; x = y;", 1).is_err());
        assert!(lower_src("float y; y = y % 2.0;", 1).is_err());
        assert!(lower_src("int x; x = 1.5;", 1).is_err());
    }

    #[test]
    fn while_loop_computes() {
        let r = run("int i = 0; int s = 0; while (i < 5) { s = s + i; i = i + 1; }");
        let p = lower_src(
            "int i = 0; int s = 0; while (i < 5) { s = s + i; i = i + 1; }",
            1,
        )
        .unwrap();
        let s = p.var_by_name("s").unwrap();
        assert_eq!(r.var_value(s), Imm::I(10));
    }

    #[test]
    fn for_loop_with_arrays() {
        let src = "int i; int A[8]; int s = 0;
                   for (i = 0; i < 8; i = i + 1) A[i] = i * i;
                   for (i = 0; i < 8; i = i + 1) s = s + A[i];";
        let p = lower_src(src, 1).unwrap();
        let r = Interpreter::new(&p).run().unwrap();
        let s = p.var_by_name("s").unwrap();
        assert_eq!(r.var_value(s), Imm::I(140));
    }

    #[test]
    fn if_else_joins_through_home() {
        let r = run("int x = 3; int y; if (x > 2) y = 10; else y = 20;");
        assert_eq!(r.vars[1], Imm::I(10));
    }

    #[test]
    fn intrinsics_lower() {
        let r = run("float x; x = sqrt(abs(0.0 - 9.0));");
        assert_eq!(r.vars[0], Imm::F(3.0));
        let r = run("int x; x = toint(3.7);");
        assert_eq!(r.vars[0], Imm::I(3));
        let r = run("float x; x = tofloat(4) / 2.0;");
        assert_eq!(r.vars[0], Imm::F(2.0));
    }

    #[test]
    fn logic_normalizes_to_zero_one() {
        let r = run("int a = 5; int b = 0; int x; int y; x = a && 3; y = b || 7;");
        assert_eq!(r.vars[2], Imm::I(1));
        assert_eq!(r.vars[3], Imm::I(1));
    }

    #[test]
    fn static_home_annotated_in_loops() {
        // Affine access with stride matching the machine: after unrolling by 4
        // the loop steps by 4, so each syntactic access has a fixed residue.
        let src = "int i; float A[16];
                   for (i = 0; i < 16; i = i + 4) A[i + 1] = 1.0;";
        let p = lower_src(src, 4).unwrap();
        let mut homes = Vec::new();
        for (_, block) in p.iter_blocks() {
            for inst in &block.insts {
                if let raw_ir::InstKind::Store { home, .. } = inst.kind {
                    homes.push(home);
                }
            }
        }
        assert_eq!(homes, vec![MemHome::Static(1)]);
    }

    #[test]
    fn non_affine_access_is_dynamic() {
        let src = "int i = 3; int A[8]; int B[8]; B[A[i]] = 1;";
        let p = lower_src(src, 4).unwrap();
        let mut saw_dynamic = false;
        for (_, block) in p.iter_blocks() {
            for inst in &block.insts {
                if let raw_ir::InstKind::Store { home, array, .. } = inst.kind {
                    if p.array(array).name == "B" {
                        saw_dynamic = home == MemHome::Dynamic;
                    }
                }
            }
        }
        assert!(saw_dynamic);
    }

    #[test]
    fn undeclared_names_rejected() {
        assert!(lower_src("x = 1;", 1).is_err());
        assert!(lower_src("int x; x = A[0];", 1).is_err());
        assert!(lower_src("int i; for (j = 0; j < 2; j = j + 1) i = 0;", 1).is_err());
    }

    #[test]
    fn constant_index_is_static_everywhere() {
        let p = lower_src("float A[8]; A[5] = 2.0;", 4).unwrap();
        for (_, block) in p.iter_blocks() {
            for inst in &block.insts {
                if let raw_ir::InstKind::Store { home, .. } = inst.kind {
                    assert_eq!(home, MemHome::Static(1)); // 5 mod 4
                }
            }
        }
    }
}

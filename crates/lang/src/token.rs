//! Tokens and the lexer for the mini-C frontend.

use crate::error::{LangError, Span};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Float literal (contains `.`).
    Float(f32),
    /// Identifier or keyword payload.
    Ident(String),
    /// `int` keyword.
    KwInt,
    /// `float` keyword.
    KwFloat,
    /// `for` keyword.
    KwFor,
    /// `while` keyword.
    KwWhile,
    /// `if` keyword.
    KwIf,
    /// `else` keyword.
    KwElse,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

/// Lexes source text into tokens (always ends with [`Tok::Eof`]).
///
/// # Errors
///
/// Returns a [`LangError`] on malformed numbers or unexpected characters.
/// `//` line comments and `/* */` block comments are skipped.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let span = Span { line, col };
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LangError::new(span, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !is_float))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    bump!();
                }
                let text = &source[start..i];
                let tok =
                    if is_float {
                        Tok::Float(text.parse().map_err(|_| {
                            LangError::new(span, format!("bad float literal '{text}'"))
                        })?)
                    } else {
                        Tok::Int(text.parse().map_err(|_| {
                            LangError::new(span, format!("bad integer literal '{text}'"))
                        })?)
                    };
                tokens.push(Token { tok, span });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let text = &source[start..i];
                let tok = match text {
                    "int" => Tok::KwInt,
                    "float" => Tok::KwFloat,
                    "for" => Tok::KwFor,
                    "while" => Tok::KwWhile,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    _ => Tok::Ident(text.to_string()),
                };
                tokens.push(Token { tok, span });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &source[i..i + 2]
                } else {
                    ""
                };
                let (tok, len) = match two {
                    "==" => (Tok::Eq, 2),
                    "!=" => (Tok::Ne, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => match c {
                        b'(' => (Tok::LParen, 1),
                        b')' => (Tok::RParen, 1),
                        b'{' => (Tok::LBrace, 1),
                        b'}' => (Tok::RBrace, 1),
                        b'[' => (Tok::LBracket, 1),
                        b']' => (Tok::RBracket, 1),
                        b';' => (Tok::Semi, 1),
                        b',' => (Tok::Comma, 1),
                        b'=' => (Tok::Assign, 1),
                        b'+' => (Tok::Plus, 1),
                        b'-' => (Tok::Minus, 1),
                        b'*' => (Tok::Star, 1),
                        b'/' => (Tok::Slash, 1),
                        b'%' => (Tok::Percent, 1),
                        b'<' => (Tok::Lt, 1),
                        b'>' => (Tok::Gt, 1),
                        b'!' => (Tok::Bang, 1),
                        other => {
                            return Err(LangError::new(
                                span,
                                format!("unexpected character '{}'", other as char),
                            ))
                        }
                    },
                };
                for _ in 0..len {
                    bump!();
                }
                tokens.push(Token { tok, span });
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        span: Span { line, col },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats_and_operators() {
        assert_eq!(
            toks("x <= 1.5 && y != 2"),
            vec![
                Tok::Ident("x".into()),
                Tok::Le,
                Tok::Float(1.5),
                Tok::AndAnd,
                Tok::Ident("y".into()),
                Tok::Ne,
                Tok::Int(2),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("a // line\n /* block\n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn tracks_positions() {
        let tokens = lex("x\n  y").unwrap();
        assert_eq!(tokens[0].span, Span { line: 1, col: 1 });
        assert_eq!(tokens[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("x # y").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}

//! AST-level loop unrolling (paper §3.2 "basic block identifier … augmented
//! with loop unrolling", and §5.3's affine staticizing transformation).
//!
//! Two forces determine the unroll factor of a `for` loop:
//!
//! 1. **Staticizing**: array accesses whose indices are affine in the loop
//!    variable touch home tiles in a repeating pattern; unrolling by the lcm of
//!    the repetition distances makes every unrolled access reference a fixed
//!    home tile (the *static reference property*). The per-loop factor always
//!    divides the tile count.
//! 2. **ILP exposure**: larger basic blocks expose more parallelism to the
//!    orchestrater, so innermost loops are unrolled up to the configured ILP
//!    factor even beyond what staticizing needs.
//!
//! When the trip count is not divisible by the unroll factor, the remainder is
//! peeled into a fully unrolled epilogue whose induction values are literals —
//! keeping even the tail iterations statically analyzable.

use crate::ast::{Expr, Kernel, LValue, Literal, Stmt};
use raw_ir::affine::{lcm, unroll_factor};

/// Unrolling configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnrollOptions {
    /// Target unroll factor for innermost loops (ILP exposure). The effective
    /// factor is `lcm(static factor, ilp_factor)` capped by the trip count.
    pub ilp_factor: u32,
    /// Rewrite runs of `s = s + e_k` accumulations produced by unrolling into
    /// balanced reduction trees, exposing the parallelism of dot products and
    /// similar reductions. (Changes FP rounding, like any reassociation.)
    pub reassociate: bool,
}

impl UnrollOptions {
    /// The default policy used for an `n_tiles` machine: innermost loops are
    /// unrolled `n_tiles`-way (1 ⇒ no ILP unrolling, as for the baseline) and
    /// unrolled reductions are reassociated.
    pub fn for_tiles(n_tiles: u32) -> Self {
        let ilp = (n_tiles * 2).clamp(1, 64);
        UnrollOptions {
            ilp_factor: if n_tiles > 1 { ilp } else { 1 },
            reassociate: n_tiles > 1,
        }
    }
}

/// Unrolls every eligible `for` loop in the kernel.
pub fn unroll_kernel(kernel: &Kernel, n_tiles: u32, options: UnrollOptions) -> Kernel {
    let mut out = kernel.clone();
    let ctx = Ctx {
        kernel,
        n_tiles,
        options,
    };
    out.stmts = ctx.unroll_stmts(&kernel.stmts);
    if options.reassociate {
        out.stmts = reassociate_stmts(out.stmts);
    }
    out
}

/// Rewrites maximal runs of same-variable accumulations
/// (`s = s ⊕ e_0; s = s ⊕ e_1; …`, `⊕` a fixed `+` or `-`, `e_k` independent
/// of `s`) into one assignment against a balanced tree of the terms.
fn reassociate_stmts(stmts: Vec<Stmt>) -> Vec<Stmt> {
    use crate::ast::BinKind::{Add, Sub};
    // First recurse into nested bodies.
    let stmts: Vec<Stmt> = stmts
        .into_iter()
        .map(|s| match s {
            Stmt::If { cond, then, els } => Stmt::If {
                cond,
                then: reassociate_stmts(then),
                els: reassociate_stmts(els),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond,
                body: reassociate_stmts(body),
            },
            Stmt::For {
                var,
                init,
                bound,
                inclusive,
                step,
                body,
                span,
            } => Stmt::For {
                var,
                init,
                bound,
                inclusive,
                step,
                body: reassociate_stmts(body),
                span,
            },
            other => other,
        })
        .collect();

    // `s = s ⊕ e` pattern match.
    let accum = |s: &Stmt| -> Option<(String, crate::ast::BinKind, Expr)> {
        let Stmt::Assign {
            target: LValue::Var(name, _),
            value: Expr::Bin { op, l, r, .. },
        } = s
        else {
            return None;
        };
        if *op != Add && *op != Sub {
            return None;
        }
        match &**l {
            Expr::Var(v, _) if v == name && !mentions(r, name) => {
                Some((name.clone(), *op, (**r).clone()))
            }
            _ if *op == Add => match &**r {
                Expr::Var(v, _) if v == name && !mentions(l, name) => {
                    Some((name.clone(), *op, (**l).clone()))
                }
                _ => None,
            },
            _ => None,
        }
    };

    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    let mut i = 0;
    while i < stmts.len() {
        if let Some((name, op, first)) = accum(&stmts[i]) {
            let mut terms = vec![first];
            let mut j = i + 1;
            while j < stmts.len() {
                match accum(&stmts[j]) {
                    Some((n2, op2, e)) if n2 == name && op2 == op => {
                        terms.push(e);
                        j += 1;
                    }
                    _ => break,
                }
            }
            if terms.len() >= 3 {
                let span = stmts[i].clone();
                let span = match &span {
                    Stmt::Assign { target, .. } => target.span(),
                    _ => unreachable!(),
                };
                let tree = balanced_tree(&terms, span);
                out.push(Stmt::Assign {
                    target: LValue::Var(name.clone(), span),
                    value: Expr::Bin {
                        op,
                        l: Box::new(Expr::Var(name, span)),
                        r: Box::new(tree),
                        span,
                    },
                });
                i = j;
                continue;
            }
        }
        out.push(stmts[i].clone());
        i += 1;
    }
    out
}

fn balanced_tree(terms: &[Expr], span: crate::error::Span) -> Expr {
    if terms.len() == 1 {
        return terms[0].clone();
    }
    let mid = terms.len() / 2;
    Expr::Bin {
        op: crate::ast::BinKind::Add,
        l: Box::new(balanced_tree(&terms[..mid], span)),
        r: Box::new(balanced_tree(&terms[mid..], span)),
        span,
    }
}

struct Ctx<'k> {
    kernel: &'k Kernel,
    n_tiles: u32,
    options: UnrollOptions,
}

impl Ctx<'_> {
    fn unroll_stmts(&self, stmts: &[Stmt]) -> Vec<Stmt> {
        stmts.iter().flat_map(|s| self.unroll_stmt(s)).collect()
    }

    fn unroll_stmt(&self, stmt: &Stmt) -> Vec<Stmt> {
        match stmt {
            Stmt::Assign { .. } => vec![stmt.clone()],
            Stmt::If { cond, then, els } => vec![Stmt::If {
                cond: cond.clone(),
                then: self.unroll_stmts(then),
                els: self.unroll_stmts(els),
            }],
            Stmt::While { cond, body } => vec![Stmt::While {
                cond: cond.clone(),
                body: self.unroll_stmts(body),
            }],
            Stmt::For {
                var,
                init,
                bound,
                inclusive,
                step,
                body,
                span,
            } => {
                // Innermost-ness is judged on the ORIGINAL nest: a fully
                // peeled inner loop must not promote its parent to
                // "innermost" (that would cascade into one giant block).
                let originally_innermost = !contains_for(body);
                // Unroll bottom-up: inner loops first.
                let body = self.unroll_stmts(body);
                let fallback = |body: Vec<Stmt>| {
                    vec![Stmt::For {
                        var: var.clone(),
                        init: init.clone(),
                        bound: bound.clone(),
                        inclusive: *inclusive,
                        step: step.clone(),
                        body,
                        span: *span,
                    }]
                };

                let Some(step_c) = const_eval(step) else {
                    return fallback(body);
                };
                if step_c <= 0 || assigns_var(&body, var) {
                    return fallback(body);
                }

                // Factor needed to staticize the affine accesses.
                let strides = collect_strides(self.kernel, &body, var)
                    .into_iter()
                    .map(|a| a * step_c);
                let u_static = unroll_factor(strides, self.n_tiles);
                let is_innermost = originally_innermost;
                // Bodies with internal control flow gain nothing from extra
                // unrolling (blocks are split at every branch anyway) and the
                // replication only raises register pressure.
                let ilp = if contains_branchy(&body) {
                    self.options.ilp_factor.min(self.n_tiles.max(1))
                } else {
                    self.options.ilp_factor
                };
                let mut u = if is_innermost {
                    lcm(u_static as u64, ilp as u64) as u32
                } else {
                    u_static
                };

                let (Some(init_c), Some(bound_c)) = (const_eval(init), const_eval(bound)) else {
                    // Unknown trip count: unrolling can't preserve it exactly.
                    return fallback(body);
                };
                let upper = if *inclusive { bound_c + 1 } else { bound_c };
                let trip = ((upper - init_c).max(0) + step_c - 1) / step_c;

                // Triangular nests: if an inner loop's bounds depend on this
                // variable, only fully peeling this loop makes the inner loop
                // analyzable (constant bounds). Peel when the expansion is
                // reasonable.
                let triangular = inner_bounds_mention(&body, var) && trip <= PEEL_LIMIT;
                if triangular {
                    u = trip.max(1) as u32;
                }

                u = u.min(trip.max(1) as u32);
                if u <= 1 && trip > 1 {
                    return fallback(body);
                }

                let mut out = Vec::new();
                // A main loop that would run only once is fully peeled instead.
                let main_loop_trips = trip / u as i64;
                let main_iters = if main_loop_trips <= 1 {
                    0
                } else {
                    main_loop_trips * u as i64
                };
                if main_iters > 0 {
                    let mut unrolled = Vec::new();
                    for k in 0..u as i64 {
                        let replacement = if k == 0 {
                            Expr::Var(var.clone(), *span)
                        } else {
                            Expr::Bin {
                                op: crate::ast::BinKind::Add,
                                l: Box::new(Expr::Var(var.clone(), *span)),
                                r: Box::new(Expr::Lit(Literal::Int(k * step_c), *span)),
                                span: *span,
                            }
                        };
                        unrolled.extend(subst_stmts(&body, var, &replacement));
                    }
                    out.push(Stmt::For {
                        var: var.clone(),
                        init: Expr::Lit(Literal::Int(init_c), *span),
                        bound: Expr::Lit(Literal::Int(init_c + main_iters * step_c), *span),
                        inclusive: false,
                        step: Expr::Lit(Literal::Int(u as i64 * step_c), *span),
                        body: unrolled,
                        span: *span,
                    });
                }
                // Epilogue: peel the remaining iterations with literal values.
                for r in main_iters..trip {
                    let value = Expr::Lit(Literal::Int(init_c + r * step_c), *span);
                    let peeled = subst_stmts(&body, var, &value);
                    if triangular {
                        // Inner loops now have constant bounds: unroll them too.
                        out.extend(self.unroll_stmts(&peeled));
                    } else {
                        out.extend(peeled);
                    }
                }
                // Leave the induction variable with its post-loop value.
                let final_value = init_c + trip * step_c;
                out.push(Stmt::Assign {
                    target: LValue::Var(var.clone(), *span),
                    value: Expr::Lit(Literal::Int(final_value), *span),
                });
                out
            }
        }
    }
}

/// Constant-folds an integer expression.
pub fn const_eval(e: &Expr) -> Option<i64> {
    use crate::ast::BinKind::*;
    match e {
        Expr::Lit(Literal::Int(v), _) => Some(*v),
        Expr::Bin { op, l, r, .. } => {
            let (a, b) = (const_eval(l)?, const_eval(r)?);
            match op {
                Add => Some(a + b),
                Sub => Some(a - b),
                Mul => Some(a * b),
                Div => (b != 0).then(|| a / b),
                Rem => (b != 0).then(|| a % b),
                _ => None,
            }
        }
        Expr::Un {
            op: crate::ast::UnKind::Neg,
            e,
            ..
        } => Some(-const_eval(e)?),
        _ => None,
    }
}

/// The coefficient of `var` in `e`, if `e` is affine in `var`
/// (sub-expressions not involving `var` may be arbitrary).
pub fn affine_coeff(e: &Expr, var: &str) -> Option<i64> {
    use crate::ast::BinKind::*;
    match e {
        Expr::Lit(..) => Some(0),
        Expr::Var(name, _) => Some(if name == var { 1 } else { 0 }),
        Expr::Bin { op, l, r, .. } => {
            let (cl, cr) = (affine_coeff(l, var)?, affine_coeff(r, var)?);
            match op {
                Add => Some(cl + cr),
                Sub => Some(cl - cr),
                Mul => {
                    if cl != 0 && cr != 0 {
                        None
                    } else if cl != 0 {
                        Some(cl * const_eval(r)?)
                    } else if cr != 0 {
                        Some(cr * const_eval(l)?)
                    } else {
                        Some(0)
                    }
                }
                Div | Rem => {
                    if cl == 0 && cr == 0 {
                        Some(0)
                    } else {
                        None
                    }
                }
                _ => {
                    if cl == 0 && cr == 0 {
                        Some(0)
                    } else {
                        None
                    }
                }
            }
        }
        Expr::Un {
            op: crate::ast::UnKind::Neg,
            e,
            ..
        } => Some(-affine_coeff(e, var)?),
        Expr::Un { e, .. } => {
            if affine_coeff(e, var)? == 0 {
                Some(0)
            } else {
                None
            }
        }
        Expr::Index { indices, .. } => {
            if indices
                .iter()
                .all(|i| affine_coeff(i, var) == Some(0) || !mentions(i, var))
            {
                if indices.iter().any(|i| mentions(i, var)) {
                    None
                } else {
                    Some(0)
                }
            } else {
                None
            }
        }
        Expr::Call { arg, .. } => {
            if mentions(arg, var) {
                None
            } else {
                Some(0)
            }
        }
    }
}

fn mentions(e: &Expr, var: &str) -> bool {
    match e {
        Expr::Lit(..) => false,
        Expr::Var(name, _) => name == var,
        Expr::Bin { l, r, .. } => mentions(l, var) || mentions(r, var),
        Expr::Un { e, .. } => mentions(e, var),
        Expr::Index { indices, .. } => indices.iter().any(|i| mentions(i, var)),
        Expr::Call { arg, .. } => mentions(arg, var),
    }
}

/// Linearized affine strides (in elements) of every array access in `stmts`
/// with respect to `var`.
fn collect_strides(kernel: &Kernel, stmts: &[Stmt], var: &str) -> Vec<i64> {
    let mut strides = Vec::new();
    let dims_of = |array: &str| -> Option<Vec<u32>> {
        kernel
            .arrays
            .iter()
            .find(|a| a.name == array)
            .map(|a| a.dims.clone())
    };
    let mut on_access = |array: &str, indices: &[Expr]| {
        let Some(dims) = dims_of(array) else { return };
        let mut stride = 0i64;
        let mut mult = 1i64;
        // Row-major: last index has multiplier 1.
        for (idx, dim) in indices.iter().zip(&dims).rev() {
            match affine_coeff(idx, var) {
                Some(c) => stride += c * mult,
                None => return, // not staticizable via unrolling
            }
            mult *= *dim as i64;
        }
        if stride != 0 {
            strides.push(stride);
        }
    };
    visit_accesses(stmts, &mut on_access);
    strides
}

fn visit_accesses(stmts: &[Stmt], f: &mut dyn FnMut(&str, &[Expr])) {
    fn expr(e: &Expr, f: &mut dyn FnMut(&str, &[Expr])) {
        match e {
            Expr::Index { array, indices, .. } => {
                f(array, indices);
                for i in indices {
                    expr(i, f);
                }
            }
            Expr::Bin { l, r, .. } => {
                expr(l, f);
                expr(r, f);
            }
            Expr::Un { e, .. } => expr(e, f),
            Expr::Call { arg, .. } => expr(arg, f),
            Expr::Lit(..) | Expr::Var(..) => {}
        }
    }
    for s in stmts {
        match s {
            Stmt::Assign { target, value } => {
                if let LValue::Index { array, indices, .. } = target {
                    f(array, indices);
                    for i in indices {
                        expr(i, f);
                    }
                }
                expr(value, f);
            }
            Stmt::If { cond, then, els } => {
                expr(cond, f);
                visit_accesses(then, f);
                visit_accesses(els, f);
            }
            Stmt::While { cond, body } => {
                expr(cond, f);
                visit_accesses(body, f);
            }
            Stmt::For {
                init, bound, body, ..
            } => {
                expr(init, f);
                expr(bound, f);
                visit_accesses(body, f);
            }
        }
    }
}

fn assigns_var(stmts: &[Stmt], var: &str) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign {
            target: LValue::Var(name, _),
            ..
        } => name == var,
        Stmt::Assign { .. } => false,
        Stmt::If { then, els, .. } => assigns_var(then, var) || assigns_var(els, var),
        Stmt::While { body, .. } => assigns_var(body, var),
        Stmt::For {
            var: inner, body, ..
        } => inner == var || assigns_var(body, var),
    })
}

/// Largest trip count an outer loop of a triangular nest is fully peeled at.
const PEEL_LIMIT: i64 = 64;

/// True if any `for` loop nested in `stmts` has an init/bound/step mentioning
/// `var` (a triangular or trapezoidal nest).
fn inner_bounds_mention(stmts: &[Stmt], var: &str) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::For {
            init,
            bound,
            step,
            body,
            ..
        } => {
            mentions(init, var)
                || mentions(bound, var)
                || mentions(step, var)
                || inner_bounds_mention(body, var)
        }
        Stmt::If { then, els, .. } => {
            inner_bounds_mention(then, var) || inner_bounds_mention(els, var)
        }
        Stmt::While { body, .. } => inner_bounds_mention(body, var),
        Stmt::Assign { .. } => false,
    })
}

fn contains_branchy(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::If { .. } | Stmt::While { .. } => true,
        Stmt::For { body, .. } => contains_branchy(body),
        Stmt::Assign { .. } => false,
    })
}

fn contains_for(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::For { .. } => true,
        Stmt::If { then, els, .. } => contains_for(then) || contains_for(els),
        Stmt::While { body, .. } => contains_for(body),
        Stmt::Assign { .. } => false,
    })
}

fn subst_stmts(stmts: &[Stmt], var: &str, replacement: &Expr) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| subst_stmt(s, var, replacement))
        .collect()
}

fn subst_stmt(stmt: &Stmt, var: &str, rep: &Expr) -> Stmt {
    match stmt {
        Stmt::Assign { target, value } => Stmt::Assign {
            target: match target {
                LValue::Var(name, span) => {
                    debug_assert_ne!(name, var, "unroller never substitutes assigned vars");
                    LValue::Var(name.clone(), *span)
                }
                LValue::Index {
                    array,
                    indices,
                    span,
                } => LValue::Index {
                    array: array.clone(),
                    indices: indices.iter().map(|i| subst_expr(i, var, rep)).collect(),
                    span: *span,
                },
            },
            value: subst_expr(value, var, rep),
        },
        Stmt::If { cond, then, els } => Stmt::If {
            cond: subst_expr(cond, var, rep),
            then: subst_stmts(then, var, rep),
            els: subst_stmts(els, var, rep),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: subst_expr(cond, var, rep),
            body: subst_stmts(body, var, rep),
        },
        Stmt::For {
            var: inner,
            init,
            bound,
            inclusive,
            step,
            body,
            span,
        } => Stmt::For {
            var: inner.clone(),
            init: subst_expr(init, var, rep),
            bound: subst_expr(bound, var, rep),
            inclusive: *inclusive,
            step: subst_expr(step, var, rep),
            body: if inner == var {
                body.clone() // shadowed
            } else {
                subst_stmts(body, var, rep)
            },
            span: *span,
        },
    }
}

/// Substitutes the literal `0` for `var` in `e` (used to isolate the constant
/// part of an affine index during home classification).
pub(crate) fn subst_var_zero(e: &Expr, var: &str) -> Expr {
    subst_expr(e, var, &Expr::Lit(Literal::Int(0), e.span()))
}

fn subst_expr(e: &Expr, var: &str, rep: &Expr) -> Expr {
    match e {
        Expr::Var(name, _) if name == var => rep.clone(),
        Expr::Lit(..) | Expr::Var(..) => e.clone(),
        Expr::Index {
            array,
            indices,
            span,
        } => Expr::Index {
            array: array.clone(),
            indices: indices.iter().map(|i| subst_expr(i, var, rep)).collect(),
            span: *span,
        },
        Expr::Bin { op, l, r, span } => Expr::Bin {
            op: *op,
            l: Box::new(subst_expr(l, var, rep)),
            r: Box::new(subst_expr(r, var, rep)),
            span: *span,
        },
        Expr::Un { op, e, span } => Expr::Un {
            op: *op,
            e: Box::new(subst_expr(e, var, rep)),
            span: *span,
        },
        Expr::Call { f, arg, span } => Expr::Call {
            f: *f,
            arg: Box::new(subst_expr(arg, var, rep)),
            span: *span,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn unrolled(src: &str, n_tiles: u32) -> Kernel {
        let k = parse("t", src).unwrap();
        unroll_kernel(&k, n_tiles, UnrollOptions::for_tiles(n_tiles))
    }

    fn count_fors(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::For { body, .. } => 1 + count_fors(body),
                Stmt::If { then, els, .. } => count_fors(then) + count_fors(els),
                Stmt::While { body, .. } => count_fors(body),
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn innermost_loop_unrolls_by_ilp_factor() {
        // Default policy: innermost straight-line loops unroll 2N-way.
        let k = unrolled(
            "int i; float A[32]; for (i = 0; i < 32; i = i + 1) A[i] = 1.0;",
            4,
        );
        match &k.stmts[0] {
            Stmt::For { step, body, .. } => {
                assert_eq!(const_eval(step), Some(8));
                // 8 unrolled assignments inside.
                assert_eq!(body.len(), 8);
            }
            other => panic!("expected for, got {other:?}"),
        }
        // Final induction-variable fix-up.
        assert!(matches!(
            k.stmts.last(),
            Some(Stmt::Assign {
                value: Expr::Lit(Literal::Int(32), _),
                ..
            })
        ));
    }

    #[test]
    fn remainder_is_peeled_with_literals() {
        let k = unrolled(
            "int i; float A[10]; for (i = 0; i < 10; i = i + 1) A[i] = 1.0;",
            2,
        );
        // ILP factor 4 on 2 tiles: the main loop covers 8, epilogue peels 2.
        match &k.stmts[0] {
            Stmt::For { bound, .. } => assert_eq!(const_eval(bound), Some(8)),
            other => panic!("{other:?}"),
        }
        // Two peeled assignments + final fix-up.
        assert_eq!(k.stmts.len(), 1 + 2 + 1);
    }

    #[test]
    fn paper_example_lcm_unroll() {
        // A[i] and A[2i] on 4 tiles: distances 4 and 2 → the static factor is
        // lcm(4, 2) = 4 (paper §5.3); combined with the ILP factor 8 the loop
        // steps by 8.
        let k = unrolled(
            "int i; float A[64]; for (i = 0; i < 16; i = i + 1) A[i] = A[2*i];",
            4,
        );
        match &k.stmts[0] {
            Stmt::For { step, .. } => assert_eq!(const_eval(step), Some(8)),
            other => panic!("{other:?}"),
        }
        // With ILP unrolling disabled, the pure staticizing factor shows.
        let k2 = parse(
            "t",
            "int i; float A[64]; for (i = 0; i < 16; i = i + 1) A[i] = A[2*i];",
        )
        .unwrap();
        let u = unroll_kernel(
            &k2,
            4,
            UnrollOptions {
                ilp_factor: 1,
                reassociate: false,
            },
        );
        match &u.stmts[0] {
            Stmt::For { step, .. } => assert_eq!(const_eval(step), Some(4)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn outer_loop_unrolls_only_for_staticizing() {
        // A[i][j]: row-major with 8 columns → stride 8 over i. On 4 tiles the
        // repetition distance of 8 mod 4 = 0 is 1, so the outer loop should
        // stay rolled while the inner unrolls 4x.
        let k = unrolled(
            "int i; int j; float A[8][8];
             for (i = 0; i < 8; i = i + 1)
               for (j = 0; j < 8; j = j + 1)
                 A[i][j] = 0.0;",
            4,
        );
        match &k.stmts[0] {
            Stmt::For { step, body, .. } => {
                assert_eq!(const_eval(step), Some(1), "outer stays rolled");
                // The inner loop (trip 8, ILP factor 8) is fully peeled.
                assert_eq!(count_fors(body), 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn outer_loop_unrolls_when_column_stride_demands_it() {
        // A[j][i] walks a column: stride over i is 1 (inner index) — wait, the
        // *outer* variable i appears as the last index → stride 1 over i, so
        // the OUTER loop must unroll 4x to staticize (paper: "the affine
        // function theory sometimes requires unrolling the outer loop").
        let k = unrolled(
            "int i; int j; float A[8][8];
             for (i = 0; i < 8; i = i + 1)
               for (j = 0; j < 8; j = j + 1)
                 A[j][i] = 0.0;",
            4,
        );
        match &k.stmts[0] {
            Stmt::For { step, .. } => assert_eq!(const_eval(step), Some(4)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trip_smaller_than_factor_fully_unrolls() {
        let k = unrolled(
            "int i; float A[4]; for (i = 0; i < 2; i = i + 1) A[i] = 1.0;",
            8,
        );
        // Fully peeled: no for loop remains.
        assert_eq!(count_fors(&k.stmts), 0);
    }

    #[test]
    fn non_constant_bound_left_alone() {
        let k = unrolled(
            "int i; int n = 7; float A[8]; for (i = 0; i < n; i = i + 1) A[i] = 1.0;",
            4,
        );
        assert_eq!(count_fors(&k.stmts), 1);
    }

    #[test]
    fn affine_coeff_handles_composition() {
        let k = parse("t", "int i; int j; float A[8]; A[3*i + 2*j - 1] = 0.0;").unwrap();
        let Stmt::Assign { target, .. } = &k.stmts[0] else {
            unreachable!()
        };
        let LValue::Index { indices, .. } = target else {
            unreachable!()
        };
        assert_eq!(affine_coeff(&indices[0], "i"), Some(3));
        assert_eq!(affine_coeff(&indices[0], "j"), Some(2));
        assert_eq!(affine_coeff(&indices[0], "k"), Some(0));
    }

    #[test]
    fn non_affine_index_detected() {
        let k = parse("t", "int i; float A[8]; A[i*i] = 0.0;").unwrap();
        let Stmt::Assign { target, .. } = &k.stmts[0] else {
            unreachable!()
        };
        let LValue::Index { indices, .. } = target else {
            unreachable!()
        };
        assert_eq!(affine_coeff(&indices[0], "i"), None);
    }

    #[test]
    fn triangular_nest_fully_peels() {
        let k = unrolled(
            "int j; int kx; float A[8][8]; float s = 0.0;
             for (j = 0; j < 6; j = j + 1)
               for (kx = 0; kx < j; kx = kx + 1)
                 s = s + A[j][kx];",
            4,
        );
        // All loops gone: outer peeled, inners unrolled/peeled with const bounds.
        assert_eq!(count_fors(&k.stmts), 0);
    }

    #[test]
    fn unrolled_reduction_is_reassociated() {
        let k = unrolled(
            "int i; float A[16]; float s = 0.0;
             for (i = 0; i < 16; i = i + 1) s = s + A[i];",
            4,
        );
        // The unrolled body should contain ONE accumulation into s per block,
        // not four.
        fn count_s_assigns(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Assign {
                        target: LValue::Var(n, _),
                        ..
                    } if n == "s" => 1,
                    Stmt::For { body, .. } => count_s_assigns(body),
                    _ => 0,
                })
                .sum()
        }
        match &k.stmts[0] {
            Stmt::For { body, .. } => assert_eq!(count_s_assigns(body), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reassociation_preserves_integer_semantics() {
        use crate::lower::lower_kernel;
        use raw_ir::interp::Interpreter;
        let src = "int i; int A[16]; int s = 100;
                   for (i = 0; i < 16; i = i + 1) A[i] = i;
                   for (i = 0; i < 16; i = i + 1) s = s - A[i];";
        let run = |n: u32| {
            let k = parse("t", src).unwrap();
            let u = unroll_kernel(&k, n, UnrollOptions::for_tiles(n));
            let p = lower_kernel(&u, n).unwrap();
            let r = Interpreter::new(&p).run().unwrap();
            r.var_value(p.var_by_name("s").unwrap())
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(1), raw_ir::Imm::I(100 - 120));
    }

    #[test]
    fn single_tile_means_no_unrolling() {
        let k = unrolled(
            "int i; float A[8]; for (i = 0; i < 8; i = i + 1) A[i] = 1.0;",
            1,
        );
        assert_eq!(count_fors(&k.stmts), 1);
        match &k.stmts[0] {
            Stmt::For { step, .. } => assert_eq!(const_eval(step), Some(1)),
            other => panic!("{other:?}"),
        }
    }
}

//! Recursive-descent parser for the mini-C kernel language.
//!
//! Grammar (informally):
//!
//! ```text
//! kernel   := decl* stmt*
//! decl     := type ident ('=' literal)? ';'
//!           | type ident ('[' int ']')+ ';'
//! stmt     := lvalue '=' expr ';'
//!           | 'for' '(' ident '=' expr ';' ident ('<'|'<=') expr ';'
//!                       ident '=' ident '+' expr ')' block-or-stmt
//!           | 'while' '(' expr ')' block-or-stmt
//!           | 'if' '(' expr ')' block-or-stmt ('else' block-or-stmt)?
//! expr     := or ; or := and ('||' and)* ; and := cmp ('&&' cmp)*
//! cmp      := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?
//! add      := mul (('+'|'-') mul)* ; mul := unary (('*'|'/'|'%') unary)*
//! unary    := ('-'|'!') unary | primary
//! primary  := literal | ident | ident '[' expr ']'+ | intrinsic '(' expr ')'
//!           | '(' expr ')'
//! ```

use crate::ast::*;
use crate::error::{LangError, Span};
use crate::token::{lex, Tok, Token};

/// Parses a kernel from source text.
///
/// # Errors
///
/// Returns the first syntax error with its position.
pub fn parse(name: &str, source: &str) -> Result<Kernel, LangError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.kernel(name)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok, what: &str) -> Result<Span, LangError> {
        if self.peek() == want {
            Ok(self.next().span)
        } else {
            Err(LangError::new(
                self.span(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), LangError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let span = self.next().span;
                Ok((name, span))
            }
            other => Err(LangError::new(
                self.span(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn kernel(&mut self, name: &str) -> Result<Kernel, LangError> {
        let mut kernel = Kernel {
            name: name.to_string(),
            ..Default::default()
        };
        // Declarations: a run of `int`/`float` headed items.
        while matches!(self.peek(), Tok::KwInt | Tok::KwFloat) {
            let ty = match self.next().tok {
                Tok::KwInt => Type::Int,
                Tok::KwFloat => Type::Float,
                _ => unreachable!(),
            };
            let (ident, span) = self.ident()?;
            if *self.peek() == Tok::LBracket {
                let mut dims = Vec::new();
                while *self.peek() == Tok::LBracket {
                    self.next();
                    match self.next().tok {
                        Tok::Int(d) if d > 0 => dims.push(d as u32),
                        other => {
                            return Err(LangError::new(
                                span,
                                format!(
                                    "array dimension must be a positive integer, found {other:?}"
                                ),
                            ))
                        }
                    }
                    self.eat(&Tok::RBracket, "']'")?;
                }
                self.eat(&Tok::Semi, "';'")?;
                kernel.arrays.push(ArrayDef {
                    name: ident,
                    ty,
                    dims,
                    span,
                });
            } else {
                let init = if *self.peek() == Tok::Assign {
                    self.next();
                    Some(self.literal()?)
                } else {
                    None
                };
                self.eat(&Tok::Semi, "';'")?;
                kernel.vars.push(VarDef {
                    name: ident,
                    ty,
                    init,
                    span,
                });
            }
        }
        // Statements until EOF.
        while *self.peek() != Tok::Eof {
            kernel.stmts.push(self.stmt()?);
        }
        Ok(kernel)
    }

    fn literal(&mut self) -> Result<Literal, LangError> {
        let negative = if *self.peek() == Tok::Minus {
            self.next();
            true
        } else {
            false
        };
        match self.next().tok {
            Tok::Int(v) => Ok(Literal::Int(if negative { -v } else { v })),
            Tok::Float(v) => Ok(Literal::Float(if negative { -v } else { v })),
            other => Err(LangError::new(
                self.span(),
                format!("expected literal, found {other:?}"),
            )),
        }
    }

    fn block_or_stmt(&mut self) -> Result<Vec<Stmt>, LangError> {
        if *self.peek() == Tok::LBrace {
            self.next();
            let mut stmts = Vec::new();
            while *self.peek() != Tok::RBrace {
                if *self.peek() == Tok::Eof {
                    return Err(LangError::new(self.span(), "unterminated block"));
                }
                stmts.push(self.stmt()?);
            }
            self.next();
            Ok(stmts)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek().clone() {
            Tok::KwFor => self.for_stmt(),
            Tok::KwWhile => {
                self.next();
                self.eat(&Tok::LParen, "'('")?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen, "')'")?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::KwIf => {
                self.next();
                self.eat(&Tok::LParen, "'('")?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen, "')'")?;
                let then = self.block_or_stmt()?;
                let els = if *self.peek() == Tok::KwElse {
                    self.next();
                    self.block_or_stmt()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::Ident(_) => {
                let target = self.lvalue()?;
                self.eat(&Tok::Assign, "'='")?;
                let value = self.expr()?;
                self.eat(&Tok::Semi, "';'")?;
                Ok(Stmt::Assign { target, value })
            }
            other => Err(LangError::new(
                self.span(),
                format!("expected statement, found {other:?}"),
            )),
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        self.next(); // for
        self.eat(&Tok::LParen, "'('")?;
        let (var, _) = self.ident()?;
        self.eat(&Tok::Assign, "'='")?;
        let init = self.expr()?;
        self.eat(&Tok::Semi, "';'")?;
        let (cvar, cspan) = self.ident()?;
        if cvar != var {
            return Err(LangError::new(
                cspan,
                format!("for-loop condition must test '{var}'"),
            ));
        }
        let inclusive = match self.next().tok {
            Tok::Lt => false,
            Tok::Le => true,
            other => {
                return Err(LangError::new(
                    cspan,
                    format!("for-loop condition must be '<' or '<=', found {other:?}"),
                ))
            }
        };
        let bound = self.expr()?;
        self.eat(&Tok::Semi, "';'")?;
        let (ivar, ispan) = self.ident()?;
        if ivar != var {
            return Err(LangError::new(
                ispan,
                format!("for-loop increment must update '{var}'"),
            ));
        }
        self.eat(&Tok::Assign, "'='")?;
        let (ivar2, ispan2) = self.ident()?;
        if ivar2 != var {
            return Err(LangError::new(
                ispan2,
                format!("for-loop increment must have the form {var} = {var} + step"),
            ));
        }
        self.eat(&Tok::Plus, "'+'")?;
        let step = self.expr()?;
        self.eat(&Tok::RParen, "')'")?;
        let body = self.block_or_stmt()?;
        Ok(Stmt::For {
            var,
            init,
            bound,
            inclusive,
            step,
            body,
            span,
        })
    }

    fn lvalue(&mut self) -> Result<LValue, LangError> {
        let (name, span) = self.ident()?;
        if *self.peek() == Tok::LBracket {
            let mut indices = Vec::new();
            while *self.peek() == Tok::LBracket {
                self.next();
                indices.push(self.expr()?);
                self.eat(&Tok::RBracket, "']'")?;
            }
            Ok(LValue::Index {
                array: name,
                indices,
                span,
            })
        } else {
            Ok(LValue::Var(name, span))
        }
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut l = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            let span = self.next().span;
            let r = self.and_expr()?;
            l = Expr::Bin {
                op: BinKind::Or,
                l: Box::new(l),
                r: Box::new(r),
                span,
            };
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut l = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            let span = self.next().span;
            let r = self.cmp_expr()?;
            l = Expr::Bin {
                op: BinKind::And,
                l: Box::new(l),
                r: Box::new(r),
                span,
            };
        }
        Ok(l)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let l = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinKind::Eq,
            Tok::Ne => BinKind::Ne,
            Tok::Lt => BinKind::Lt,
            Tok::Le => BinKind::Le,
            Tok::Gt => BinKind::Gt,
            Tok::Ge => BinKind::Ge,
            _ => return Ok(l),
        };
        let span = self.next().span;
        let r = self.add_expr()?;
        Ok(Expr::Bin {
            op,
            l: Box::new(l),
            r: Box::new(r),
            span,
        })
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut l = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinKind::Add,
                Tok::Minus => BinKind::Sub,
                _ => return Ok(l),
            };
            let span = self.next().span;
            let r = self.mul_expr()?;
            l = Expr::Bin {
                op,
                l: Box::new(l),
                r: Box::new(r),
                span,
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut l = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinKind::Mul,
                Tok::Slash => BinKind::Div,
                Tok::Percent => BinKind::Rem,
                _ => return Ok(l),
            };
            let span = self.next().span;
            let r = self.unary_expr()?;
            l = Expr::Bin {
                op,
                l: Box::new(l),
                r: Box::new(r),
                span,
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        match self.peek() {
            Tok::Minus => {
                let span = self.next().span;
                let e = self.unary_expr()?;
                Ok(Expr::Un {
                    op: UnKind::Neg,
                    e: Box::new(e),
                    span,
                })
            }
            Tok::Bang => {
                let span = self.next().span;
                let e = self.unary_expr()?;
                Ok(Expr::Un {
                    op: UnKind::Not,
                    e: Box::new(e),
                    span,
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.next();
                Ok(Expr::Lit(Literal::Int(v), span))
            }
            Tok::Float(v) => {
                self.next();
                Ok(Expr::Lit(Literal::Float(v), span))
            }
            Tok::LParen => {
                self.next();
                let e = self.expr()?;
                self.eat(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.next();
                if *self.peek() == Tok::LParen {
                    let f = Intrinsic::by_name(&name).ok_or_else(|| {
                        LangError::new(span, format!("unknown intrinsic '{name}'"))
                    })?;
                    self.next();
                    let arg = self.expr()?;
                    self.eat(&Tok::RParen, "')'")?;
                    Ok(Expr::Call {
                        f,
                        arg: Box::new(arg),
                        span,
                    })
                } else if *self.peek() == Tok::LBracket {
                    let mut indices = Vec::new();
                    while *self.peek() == Tok::LBracket {
                        self.next();
                        indices.push(self.expr()?);
                        self.eat(&Tok::RBracket, "']'")?;
                    }
                    Ok(Expr::Index {
                        array: name,
                        indices,
                        span,
                    })
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            other => Err(LangError::new(
                span,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations() {
        let k = parse("t", "int x = 3; float y; float A[4][8];").unwrap();
        assert_eq!(k.vars.len(), 2);
        assert_eq!(k.vars[0].init, Some(Literal::Int(3)));
        assert_eq!(k.arrays[0].dims, vec![4, 8]);
    }

    #[test]
    fn parses_for_loop() {
        let k = parse(
            "t",
            "int i; float A[8]; for (i = 0; i < 8; i = i + 1) A[i] = 1.0;",
        )
        .unwrap();
        match &k.stmts[0] {
            Stmt::For {
                var,
                inclusive,
                body,
                ..
            } => {
                assert_eq!(var, "i");
                assert!(!inclusive);
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_and_while() {
        let k = parse(
            "t",
            "int x = 0; while (x < 10) { if (x == 5) x = x + 2; else x = x + 1; }",
        )
        .unwrap();
        assert_eq!(k.stmts.len(), 1);
    }

    #[test]
    fn precedence_mul_before_add() {
        let k = parse("t", "int x; x = 1 + 2 * 3;").unwrap();
        match &k.stmts[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Bin {
                    op: BinKind::Add,
                    r,
                    ..
                } => {
                    assert!(matches!(
                        **r,
                        Expr::Bin {
                            op: BinKind::Mul,
                            ..
                        }
                    ));
                }
                other => panic!("bad tree {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_intrinsics_and_negation() {
        let k = parse("t", "float y; y = sqrt(abs(-y));").unwrap();
        assert_eq!(k.stmts.len(), 1);
    }

    #[test]
    fn rejects_malformed_for() {
        assert!(parse("t", "int i; for (i = 0; j < 8; i = i + 1) i = 0;").is_err());
        assert!(parse("t", "int i; for (i = 0; i < 8; j = j + 1) i = 0;").is_err());
    }

    #[test]
    fn rejects_unknown_call() {
        assert!(parse("t", "float y; y = frobnicate(y);").is_err());
    }
}

//! Abstract syntax tree of the mini-C kernel language.
//!
//! The language covers what the paper's benchmarks need: `int`/`float`
//! scalars and multi-dimensional arrays, `for`/`while`/`if` control flow,
//! arithmetic/comparison/logic expressions, and a few intrinsics (`sqrt`,
//! `abs`, `toint`, `tofloat`). There are no functions: a program is one
//! kernel, exactly like the per-benchmark kernels RAWCC compiled.

use crate::error::Span;

/// Scalar types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Type {
    /// 32-bit integer.
    Int,
    /// 32-bit float.
    Float,
}

/// A scalar declaration: `int i = 3;`.
#[derive(Clone, Debug, PartialEq)]
pub struct VarDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Optional initializer literal.
    pub init: Option<Literal>,
    /// Source position.
    pub span: Span,
}

/// An array declaration: `float A[32][32];`.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDef {
    /// Name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Dimensions (row-major).
    pub dims: Vec<u32>,
    /// Source position.
    pub span: Span,
}

/// A literal value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f32),
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (non-short-circuit over 0/1 values)
    And,
    /// `||` (non-short-circuit over 0/1 values)
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnKind {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`), integers only.
    Not,
}

/// Intrinsic functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Intrinsic {
    /// `sqrt(float) -> float`
    Sqrt,
    /// `abs(float) -> float`
    Abs,
    /// `toint(float) -> int` (truncation)
    ToInt,
    /// `tofloat(int) -> float`
    ToFloat,
}

impl Intrinsic {
    /// Looks up an intrinsic by source name.
    pub fn by_name(name: &str) -> Option<Intrinsic> {
        match name {
            "sqrt" => Some(Intrinsic::Sqrt),
            "abs" => Some(Intrinsic::Abs),
            "toint" => Some(Intrinsic::ToInt),
            "tofloat" => Some(Intrinsic::ToFloat),
            _ => None,
        }
    }
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal.
    Lit(Literal, Span),
    /// Scalar variable reference.
    Var(String, Span),
    /// Array element reference.
    Index {
        /// Array name.
        array: String,
        /// One index expression per dimension.
        indices: Vec<Expr>,
        /// Source position.
        span: Span,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinKind,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnKind,
        /// Operand.
        e: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// Intrinsic call.
    Call {
        /// Which intrinsic.
        f: Intrinsic,
        /// Argument.
        arg: Box<Expr>,
        /// Source position.
        span: Span,
    },
}

impl Expr {
    /// The expression's source position.
    pub fn span(&self) -> Span {
        match self {
            Expr::Lit(_, s) | Expr::Var(_, s) => *s,
            Expr::Index { span, .. }
            | Expr::Bin { span, .. }
            | Expr::Un { span, .. }
            | Expr::Call { span, .. } => *span,
        }
    }
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String, Span),
    /// Array element.
    Index {
        /// Array name.
        array: String,
        /// One index per dimension.
        indices: Vec<Expr>,
        /// Source position.
        span: Span,
    },
}

impl LValue {
    /// The target's source position.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(_, s) => *s,
            LValue::Index { span, .. } => *span,
        }
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `target = value;`
    Assign {
        /// Target.
        target: LValue,
        /// Value.
        value: Expr,
    },
    /// `if (cond) then else els`
    If {
        /// Condition (integer).
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (may be empty).
        els: Vec<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Condition (integer).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (var = init; var < bound; var = var + step) body`
    For {
        /// Induction variable name.
        var: String,
        /// Initial value.
        init: Expr,
        /// Loop bound.
        bound: Expr,
        /// True for `<=`, false for `<`.
        inclusive: bool,
        /// Step expression (validated constant by the unroller).
        step: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
}

/// A whole kernel: declarations then statements.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Kernel {
    /// Kernel name (for the generated program).
    pub name: String,
    /// Scalar declarations.
    pub vars: Vec<VarDef>,
    /// Array declarations.
    pub arrays: Vec<ArrayDef>,
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsics_by_name() {
        assert_eq!(Intrinsic::by_name("sqrt"), Some(Intrinsic::Sqrt));
        assert_eq!(Intrinsic::by_name("abs"), Some(Intrinsic::Abs));
        assert_eq!(Intrinsic::by_name("nope"), None);
    }

    #[test]
    fn spans_propagate() {
        let s = Span { line: 2, col: 5 };
        let e = Expr::Lit(Literal::Int(3), s);
        assert_eq!(e.span(), s);
        let lv = LValue::Var("x".into(), s);
        assert_eq!(lv.span(), s);
    }
}

//! Property tests for the frontend: randomly parameterised affine loops
//! lower to IR that computes the host-model answer, and the unrolled
//! (multi-tile) lowering agrees with the rolled one.

use raw_ir::interp::Interpreter;
use raw_ir::Imm;
use raw_testkit::prelude::*;

fn var_value(p: &raw_ir::Program, r: &raw_ir::interp::ExecResult, name: &str) -> Imm {
    let idx = p
        .vars
        .iter()
        .position(|v| v.name == name)
        .unwrap_or_else(|| panic!("no var '{name}'"));
    r.vars[idx]
}

raw_testkit::proptest! {
    /// `s = c0 + sum(k*i for i in 0..trip)` evaluates exactly.
    #[test]
    fn lowered_loop_matches_closed_form(
        trip in 1i64..12,
        k in 1i64..6,
        c0 in 0i64..50,
    ) {
        let src = format!(
            "int i; int s;
             s = {c0};
             for (i = 0; i < {trip}; i = i + 1) s = s + {k}*i;"
        );
        let expected = c0 + k * trip * (trip - 1) / 2;
        let p = raw_lang::compile_source("prop-loop", &src, 1).unwrap();
        let r = Interpreter::new(&p).run().unwrap();
        prop_assert_eq!(var_value(&p, &r, "s"), Imm::I(expected as i32));
    }

    /// After full lowering (parse → unroll → rename → three-operand IR),
    /// every instruction's source span lies within the source text, and the
    /// program still passes the IR verifier.
    #[test]
    fn spans_stay_within_source_after_unrolling(
        trip in 1i64..16,
        k in 1i64..6,
        tiles_log2 in 0u32..4,
    ) {
        let src = format!(
            "int i; int j; int s; int A[{trip}];
             s = 0;
             for (i = 0; i < {trip}; i = i + 1) {{
               A[i] = {k}*i;
             }}
             for (j = 0; j < {trip}; j = j + 1) {{
               s = s + A[j];
             }}"
        );
        let n_tiles = 1u32 << tiles_log2;
        let p = raw_lang::compile_source("prop-span", &src, n_tiles).unwrap();
        raw_ir::verify::verify(&p).expect("lowered program verifies");
        let lines: Vec<&str> = src.lines().collect();
        let mut stamped = 0usize;
        for (_, block) in p.iter_blocks() {
            for inst in &block.insts {
                let span = inst.span;
                if !span.is_some() {
                    continue;
                }
                stamped += 1;
                prop_assert!(
                    (span.line as usize) <= lines.len(),
                    "span line {} beyond source ({} lines)", span.line, lines.len()
                );
                let text = lines[span.line as usize - 1];
                prop_assert!(span.col >= 1, "column is 1-based");
                prop_assert!(
                    (span.col as usize) <= text.chars().count() + 1,
                    "span col {} beyond line {} ({:?})", span.col, span.line, text
                );
            }
        }
        prop_assert!(stamped > 0, "source-lowered program must carry spans");
    }

    /// Unrolling for larger machines must not change loop semantics.
    #[test]
    fn unrolling_preserves_semantics(
        trip in 1i64..16,
        stride in 1i64..4,
        k in 1i64..5,
    ) {
        let len = stride * (trip - 1) + 1;
        let src = format!(
            "int i; int A[{len}];
             for (i = 0; i < {trip}; i = i + 1)
               A[{stride}*i] = A[{stride}*i] + {k}*i;"
        );
        let rolled = raw_lang::compile_source_with(
            "rolled", &src, 1,
            raw_lang::UnrollOptions { ilp_factor: 1, reassociate: false },
        ).unwrap();
        let golden = Interpreter::new(&rolled).run().unwrap();
        let a_rolled = rolled.array_by_name("A").unwrap();
        for n in [2u32, 4] {
            let unrolled = raw_lang::compile_source("unrolled", &src, n).unwrap();
            let check = Interpreter::new(&unrolled).run().unwrap();
            let a = unrolled.array_by_name("A").unwrap();
            prop_assert_eq!(
                check.array_values(a),
                golden.array_values(a_rolled),
                "unrolling changed semantics at {} tiles", n
            );
        }
    }
}

//! The paper's benchmark suite (Table 2), re-implemented for the RAWCC
//! reproduction.
//!
//! | name          | origin         | shape (paper)     | character |
//! |---------------|----------------|-------------------|-----------|
//! | life          | Rawbench (C)   | 32×32             | control flow inside loop bodies → low speedup |
//! | vpenta        | nasa7 (F)      | 32×32             | serial recurrences → low speedup |
//! | cholesky      | nasa7 (F)      | 3×15×15           | triangular nests, fine-grain parallelism |
//! | tomcatv       | Spec92 (F)     | 32×32             | heavy FP residuals + `if` reductions |
//! | fpppp-kernel  | Spec92 (F)     | one basic block   | irregular ILP, register pressure |
//! | mxm           | nasa7 (F)      | 32×64 · 64×8      | reduction-rich, regular parallelism |
//! | jacobi        | Rawbench (C)   | 32×32             | embarrassingly parallel stencils |
//!
//! Each benchmark carries its mini-C source plus deterministic host-side
//! array initial data (seeded), and compiles per machine size through
//! [`raw_lang`]. Long-running originals are scaled in iteration count (see
//! `EXPERIMENTS.md`); shapes and access patterns match the originals.

pub mod fpppp;
pub mod sources;

pub use fpppp::{fpppp_source, FppppShape};

use raw_ir::{Imm, Program};
use raw_lang::{compile_source_with, LangError, UnrollOptions};
use raw_testkit::Rng;

/// A benchmark: source, data, and Table-2 metadata.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Short name (as in Table 2).
    pub name: &'static str,
    /// One-line description (as in Table 2).
    pub description: &'static str,
    /// "Array size" column of Table 2.
    pub array_size: &'static str,
    source: String,
    inits: Vec<(String, Vec<Imm>)>,
}

impl Benchmark {
    /// The benchmark's mini-C source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Non-blank source line count (Table 2 "lines of code").
    pub fn lines(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Compiles for an `n_tiles` machine with the default (RAWCC) unrolling
    /// policy and installs the benchmark's initial data.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (none occur for the shipped sources).
    pub fn program(&self, n_tiles: u32) -> Result<Program, LangError> {
        self.program_with(n_tiles, UnrollOptions::for_tiles(n_tiles))
    }

    /// Compiles with an explicit unrolling policy.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors.
    pub fn program_with(&self, n_tiles: u32, options: UnrollOptions) -> Result<Program, LangError> {
        let mut program = compile_source_with(self.name, &self.source, n_tiles, options)?;
        for (array, values) in &self.inits {
            let id = program
                .array_by_name(array)
                .unwrap_or_else(|| panic!("benchmark '{}' has no array '{array}'", self.name));
            program.arrays[id.index()].init = values.clone();
        }
        Ok(program)
    }

    /// Compiles the sequential baseline variant: one tile, original rolled
    /// loops, no reassociation (the stand-in for the paper's Machine-SUIF
    /// MIPS compilation).
    ///
    /// # Errors
    ///
    /// Propagates frontend errors.
    pub fn baseline_program(&self) -> Result<Program, LangError> {
        self.program_with(
            1,
            UnrollOptions {
                ilp_factor: 1,
                reassociate: false,
            },
        )
    }
}

fn rng(name: &str) -> Rng {
    Rng::from_name(name)
}

fn floats(rng: &mut Rng, n: usize, lo: f32, hi: f32) -> Vec<Imm> {
    (0..n).map(|_| Imm::F(rng.gen_range(lo..hi))).collect()
}

/// Conway's Game of Life, `n × n`, `gens` generations.
pub fn life(n: u32, gens: u32) -> Benchmark {
    let source = sources::instantiate(
        sources::LIFE,
        &[("N", n as i64), ("N1", n as i64 - 1), ("GENS", gens as i64)],
    );
    let mut r = rng("life");
    let cells = (n * n) as usize;
    let init: Vec<Imm> = (0..cells).map(|_| Imm::I(r.gen_range(0..2))).collect();
    Benchmark {
        name: "life",
        description: "Conway's Game of Life",
        array_size: "32x32",
        source,
        inits: vec![("A".into(), init)],
    }
}

/// Jacobi relaxation, `n × n`, `iters` sweeps.
pub fn jacobi(n: u32, iters: u32) -> Benchmark {
    let source = sources::instantiate(
        sources::JACOBI,
        &[
            ("N", n as i64),
            ("N1", n as i64 - 1),
            ("ITERS", iters as i64),
        ],
    );
    let mut r = rng("jacobi");
    let cells = (n * n) as usize;
    Benchmark {
        name: "jacobi",
        description: "Jacobi Relaxation",
        array_size: "32x32",
        source,
        inits: vec![("A".into(), floats(&mut r, cells, 0.0, 1.0))],
    }
}

/// Matrix multiply `m×k · k×p`.
pub fn mxm(m: u32, k: u32, p: u32) -> Benchmark {
    let source = sources::instantiate(
        sources::MXM,
        &[("M", m as i64), ("K", k as i64), ("P", p as i64)],
    );
    let mut r = rng("mxm");
    Benchmark {
        name: "mxm",
        description: "Matrix Multiplication",
        array_size: "32x64, 64x8",
        source,
        inits: vec![
            ("A".into(), floats(&mut r, (m * k) as usize, -1.0, 1.0)),
            ("B".into(), floats(&mut r, (k * p) as usize, -1.0, 1.0)),
        ],
    }
}

/// Batched Cholesky decomposition + forward substitution: `mats` SPD systems
/// of size `n × n`.
pub fn cholesky(mats: u32, n: u32) -> Benchmark {
    let source = sources::instantiate(sources::CHOLESKY, &[("MATS", mats as i64), ("N", n as i64)]);
    // Build SPD matrices host-side: A = G·Gᵀ + n·I with G uniform in [0,1).
    let mut r = rng("cholesky");
    let nn = n as usize;
    let mut a = Vec::with_capacity(mats as usize * nn * nn);
    for _ in 0..mats {
        let g: Vec<f32> = (0..nn * nn).map(|_| r.gen_range(0.0..1.0)).collect();
        for i in 0..nn {
            for j in 0..nn {
                let mut s = 0.0f32;
                for k in 0..nn {
                    s += g[i * nn + k] * g[j * nn + k];
                }
                if i == j {
                    s += n as f32;
                }
                a.push(Imm::F(s));
            }
        }
    }
    let mut r2 = rng("cholesky-rhs");
    Benchmark {
        name: "cholesky",
        description: "Cholesky Decomposition/Substitution",
        array_size: "3x15x15",
        source,
        inits: vec![
            ("A".into(), a),
            (
                "RHS".into(),
                floats(&mut r2, (mats * n) as usize, -1.0, 1.0),
            ),
        ],
    }
}

/// Pentadiagonal-style simultaneous elimination over `n` independent systems.
pub fn vpenta(n: u32) -> Benchmark {
    let source = sources::instantiate(
        sources::VPENTA,
        &[
            ("N", n as i64),
            ("N1", n as i64 - 1),
            ("N2", n as i64 - 2),
            ("N3", n as i64 - 3),
        ],
    );
    let mut r = rng("vpenta");
    let cells = (n * n) as usize;
    Benchmark {
        name: "vpenta",
        description: "Inverts 3 Pentadiagonals Simultaneously",
        array_size: "32x32",
        source,
        inits: vec![
            ("X".into(), floats(&mut r, cells, 0.0, 1.0)),
            // Diagonals bounded away from zero: they are divisors.
            ("D".into(), floats(&mut r, cells, 2.0, 4.0)),
            ("E".into(), floats(&mut r, cells, 0.0, 0.5)),
            ("F".into(), floats(&mut r, cells, 0.0, 0.5)),
            ("A".into(), floats(&mut r, cells, 0.0, 0.5)),
            ("B".into(), floats(&mut r, cells, 0.0, 0.5)),
        ],
    }
}

/// Reduced tomcatv: `iters` mesh-generation iterations on an `n × n` mesh.
pub fn tomcatv(n: u32, iters: u32) -> Benchmark {
    let source = sources::instantiate(
        sources::TOMCATV,
        &[
            ("N", n as i64),
            ("N1", n as i64 - 1),
            ("ITERS", iters as i64),
        ],
    );
    // A gently perturbed regular mesh.
    let mut r = rng("tomcatv");
    let mut x = Vec::with_capacity((n * n) as usize);
    let mut y = Vec::with_capacity((n * n) as usize);
    for i in 0..n {
        for j in 0..n {
            let jitter_x: f32 = r.gen_range(-0.05..0.05);
            let jitter_y: f32 = r.gen_range(-0.05..0.05);
            x.push(Imm::F(i as f32 + jitter_x));
            y.push(Imm::F(j as f32 + jitter_y));
        }
    }
    Benchmark {
        name: "tomcatv",
        description: "Mesh Generation with Thompson's Solver",
        array_size: "32x32",
        source,
        inits: vec![("X".into(), x), ("Y".into(), y)],
    }
}

/// Pointer chase: `steps` hops of `cur = P[cur]` over a host-seeded
/// single-cycle permutation of `n` slots, accumulating payloads from `V`.
/// Latency-bound dynamic-network traffic: each hop's address depends on the
/// previous hop's reply.
pub fn pointer_chase(n: u32, steps: u32) -> Benchmark {
    let source = sources::instantiate(
        sources::POINTER_CHASE,
        &[("N", n as i64), ("STEPS", steps as i64)],
    );
    // Sattolo's algorithm: a uniformly random permutation with a single cycle,
    // so the walk keeps hopping between homes instead of settling into a
    // short loop.
    let mut r = rng("pointer-chase");
    let mut perm: Vec<i32> = (0..n as i32).collect();
    for i in (1..n as usize).rev() {
        let j = r.gen_range(0..i as i32) as usize;
        perm.swap(i, j);
    }
    let mut r2 = rng("pointer-chase-v");
    Benchmark {
        name: "pointer-chase",
        description: "Serial permutation walk over the dynamic network",
        array_size: "-",
        source,
        inits: vec![
            ("P".into(), perm.into_iter().map(Imm::I).collect()),
            (
                "V".into(),
                (0..n).map(|_| Imm::I(r2.gen_range(0..100))).collect(),
            ),
        ],
    }
}

/// Scatter/histogram: `n` data-dependent read-modify-writes into `bins`
/// colliding histogram slots.
pub fn scatter(n: u32, bins: u32) -> Benchmark {
    let source = sources::instantiate(sources::SCATTER, &[("N", n as i64), ("BINS", bins as i64)]);
    let mut r = rng("scatter");
    Benchmark {
        name: "scatter",
        description: "Data-dependent histogram scatter",
        array_size: "-",
        source,
        inits: vec![(
            "D".into(),
            (0..n).map(|_| Imm::I(r.gen_range(0..1000))).collect(),
        )],
    }
}

/// Indirect gather: `n` independent data-dependent loads `A[IDX[i]]` summed.
pub fn gather(n: u32) -> Benchmark {
    let source = sources::instantiate(sources::GATHER, &[("N", n as i64)]);
    let mut r = rng("gather");
    let idx: Vec<Imm> = (0..n).map(|_| Imm::I(r.gen_range(0..n as i32))).collect();
    let mut r2 = rng("gather-a");
    Benchmark {
        name: "gather",
        description: "Indirect gather over the dynamic network",
        array_size: "-",
        source,
        inits: vec![
            ("IDX".into(), idx),
            (
                "A".into(),
                (0..n).map(|_| Imm::I(r2.gen_range(-50..50))).collect(),
            ),
        ],
    }
}

/// The fpppp-kernel stand-in (see [`fpppp`]).
pub fn fpppp_kernel(shape: FppppShape) -> Benchmark {
    Benchmark {
        name: "fpppp-kernel",
        description: "Electron Interval Derivatives",
        array_size: "-",
        source: fpppp_source(shape),
        inits: Vec::new(),
    }
}

/// The full suite at the paper's Table-2 sizes (long-running originals are
/// scaled in iteration count; see `EXPERIMENTS.md`).
pub fn suite() -> Vec<Benchmark> {
    vec![
        life(32, 4),
        vpenta(32),
        cholesky(3, 15),
        tomcatv(32, 2),
        fpppp_kernel(FppppShape::default()),
        mxm(32, 64, 8),
        jacobi(32, 2),
    ]
}

/// A scaled-down suite for fast tests (same kernels, smaller shapes).
pub fn tiny_suite() -> Vec<Benchmark> {
    vec![
        life(8, 1),
        vpenta(8),
        cholesky(1, 5),
        tomcatv(8, 1),
        fpppp_kernel(FppppShape {
            inputs: 8,
            intermediates: 12,
            outputs: 4,
            seed: 3,
        }),
        mxm(4, 8, 2),
        jacobi(8, 1),
    ]
}

/// The adversarial scenario suite: dynamic-network-heavy kernels whose every
/// address is data-dependent. Kept separate from [`suite`] (whose workloads
/// are golden-pinned); the scenario harness (`raw-bench scenario`) runs these
/// under faulty-tile masks, co-residency, and chaos.
pub fn scenario_suite() -> Vec<Benchmark> {
    vec![pointer_chase(16, 48), scatter(32, 4), gather(32)]
}

/// Looks up a suite benchmark by name, searching [`suite`] then
/// [`scenario_suite`].
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite()
        .into_iter()
        .chain(scenario_suite())
        .find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_ir::interp::Interpreter;

    #[test]
    fn tiny_suite_compiles_and_runs_everywhere() {
        for bench in tiny_suite() {
            for n in [1u32, 2, 4] {
                let p = bench.program(n).expect(bench.name);
                let r = Interpreter::new(&p)
                    .run()
                    .unwrap_or_else(|e| panic!("{} @{n}: {e}", bench.name));
                assert!(r.insts_executed > 0, "{}", bench.name);
            }
        }
    }

    #[test]
    fn suite_has_paper_benchmarks() {
        let names: Vec<&str> = suite().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "life",
                "vpenta",
                "cholesky",
                "tomcatv",
                "fpppp-kernel",
                "mxm",
                "jacobi"
            ]
        );
        assert!(by_name("mxm").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn cholesky_produces_valid_decomposition() {
        // L·Lᵀ must reconstruct A (on the lower triangle) to fp tolerance.
        let bench = cholesky(1, 5);
        let p = bench.program(1).unwrap();
        let r = Interpreter::new(&p).run().unwrap();
        let a = r.array_values(p.array_by_name("A").unwrap());
        let l = r.array_values(p.array_by_name("L").unwrap());
        let n = 5usize;
        let get = |vals: &[Imm], i: usize, j: usize| -> f64 {
            match vals[i * n + j] {
                Imm::F(v) => v as f64,
                Imm::I(v) => v as f64,
            }
        };
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += get(&l, i, k) * get(&l, j, k);
                }
                let expect = get(&a, i, j);
                assert!(
                    (s - expect).abs() < 1e-3 * expect.abs().max(1.0),
                    "A[{i}][{j}]: {s} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn mxm_matches_host_multiplication() {
        let bench = mxm(4, 8, 2);
        let p = bench.baseline_program().unwrap();
        let r = Interpreter::new(&p).run().unwrap();
        let a = r.array_values(p.array_by_name("A").unwrap());
        let b = r.array_values(p.array_by_name("B").unwrap());
        let c = r.array_values(p.array_by_name("C").unwrap());
        let f = |x: &Imm| match x {
            Imm::F(v) => *v,
            Imm::I(v) => *v as f32,
        };
        for i in 0..4 {
            for j in 0..2 {
                let mut s = 0.0f32;
                for k in 0..8 {
                    s += f(&a[i * 8 + k]) * f(&b[k * 2 + j]);
                }
                let got = f(&c[i * 2 + j]);
                assert!((got - s).abs() < 1e-4, "C[{i}][{j}]: {got} vs {s}");
            }
        }
    }

    #[test]
    fn life_preserves_cell_invariants() {
        // Life must keep cells in {0,1}.
        let bench = life(8, 2);
        let p = bench.program(1).unwrap();
        let r = Interpreter::new(&p).run().unwrap();
        let a = r.array_values(p.array_by_name("A").unwrap());
        for v in &a {
            match v {
                Imm::I(x) => assert!(*x == 0 || *x == 1),
                other => panic!("non-integer cell {other:?}"),
            }
        }
    }

    #[test]
    fn jacobi_stays_in_range() {
        let bench = jacobi(8, 1);
        let p = bench.program(1).unwrap();
        let r = Interpreter::new(&p).run().unwrap();
        let a = r.array_values(p.array_by_name("A").unwrap());
        for v in &a {
            if let Imm::F(x) = v {
                assert!(x.is_finite() && *x >= 0.0 && *x <= 1.0);
            }
        }
    }

    #[test]
    fn table2_metadata_present() {
        for b in suite() {
            assert!(!b.description.is_empty());
            assert!(b.lines() > 0);
            assert!(!b.array_size.is_empty());
        }
    }

    /// Hashes a benchmark's full generated identity: source text plus every
    /// initial-data array (name and bit-exact values).
    fn workload_hash(b: &Benchmark) -> u64 {
        let mut bytes = b.source.clone().into_bytes();
        for (name, vals) in &b.inits {
            bytes.extend_from_slice(name.as_bytes());
            for v in vals {
                match v {
                    Imm::I(x) => bytes.extend_from_slice(&x.to_le_bytes()),
                    Imm::F(x) => bytes.extend_from_slice(&x.to_bits().to_le_bytes()),
                }
            }
        }
        raw_testkit::hash64(&bytes)
    }

    #[test]
    fn suite_workloads_are_pinned() {
        // Golden hashes pin every generated workload bit-for-bit across PRs:
        // if the testkit RNG or a generator changes, this fails loudly and the
        // values below must be consciously re-pinned (the assertion message
        // prints the replacement table).
        let expected: &[(&str, u64)] = &[
            ("life", 0x4f7b783fbffc84f1),
            ("vpenta", 0x60e0d6adc0564ff6),
            ("cholesky", 0xe0de23c4081f6a63),
            ("tomcatv", 0xe92316df5782d37a),
            ("fpppp-kernel", 0x6fbc5667f0a7c2e1),
            ("mxm", 0x6e2ca2315ad024ac),
            ("jacobi", 0x6d497a5771479eb8),
        ];
        let got: Vec<(&str, u64)> = suite().iter().map(|b| (b.name, workload_hash(b))).collect();
        let repin: Vec<String> = got
            .iter()
            .map(|(n, h)| format!("(\"{n}\", {h:#018x}),"))
            .collect();
        assert_eq!(
            got,
            expected.to_vec(),
            "generated workloads drifted; if intentional, re-pin:\n{}",
            repin.join("\n")
        );
    }

    #[test]
    fn scenario_suite_compiles_and_runs_everywhere() {
        for bench in scenario_suite() {
            for n in [1u32, 2, 4] {
                let p = bench.program(n).expect(bench.name);
                let r = Interpreter::new(&p)
                    .run()
                    .unwrap_or_else(|e| panic!("{} @{n}: {e}", bench.name));
                assert!(r.insts_executed > 0, "{}", bench.name);
            }
        }
        assert!(by_name("pointer-chase").is_some());
    }

    #[test]
    fn pointer_chase_matches_host_walk() {
        let bench = pointer_chase(16, 48);
        let p = bench.program(1).unwrap();
        let r = Interpreter::new(&p).run().unwrap();
        let perm = r.array_values(p.array_by_name("P").unwrap());
        let vals = r.array_values(p.array_by_name("V").unwrap());
        let out = r.array_values(p.array_by_name("OUT").unwrap());
        let geti = |v: &Imm| match v {
            Imm::I(x) => *x,
            Imm::F(_) => panic!("integer expected"),
        };
        let (mut cur, mut sum) = (0i32, 0i32);
        for _ in 0..48 {
            sum += geti(&vals[cur as usize]);
            cur = geti(&perm[cur as usize]);
        }
        assert_eq!(geti(&out[0]), sum);
        assert_eq!(geti(&out[1]), cur);
        // Sattolo permutation: single cycle covering all slots.
        let (mut seen, mut at) = (0, 0usize);
        loop {
            at = geti(&perm[at]) as usize;
            seen += 1;
            if at == 0 {
                break;
            }
        }
        assert_eq!(seen, 16, "P must be one full cycle");
    }

    #[test]
    fn deterministic_inits() {
        let a = mxm(4, 8, 2);
        let b = mxm(4, 8, 2);
        assert_eq!(a.inits.len(), b.inits.len());
        for ((n1, v1), (n2, v2)) in a.inits.iter().zip(&b.inits) {
            assert_eq!(n1, n2);
            assert!(v1.iter().zip(v2).all(|(x, y)| x.bits_eq(*y)));
        }
    }
}

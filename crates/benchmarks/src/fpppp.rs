//! Deterministic generator for the **fpppp-kernel** stand-in.
//!
//! The paper's fpppp-kernel is the single basic block that accounts for half
//! of Spec92 fpppp's runtime: 735 lines of straight-line single-precision
//! code with large amounts of *irregular* instruction-level parallelism, no
//! loop-level parallelism, and register pressure far beyond 32 GPRs. We cannot
//! ship Spec92 sources, so this generator emits a kernel with the same
//! character (see `DESIGN.md`): one straight-line block of several hundred FP
//! operations forming an irregular DAG — long dependence chains cross-linked
//! at random, dozens of simultaneously live intermediates, and a wide fan-in
//! into the output values.
//!
//! Generation is seeded and reproducible; the same seed always yields the
//! same kernel.

use raw_testkit::Rng;
use std::fmt::Write;

/// Shape parameters of the generated kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FppppShape {
    /// Number of input scalars.
    pub inputs: usize,
    /// Number of intermediate values (each a statement with a random
    /// expression over earlier values).
    pub intermediates: usize,
    /// Number of output scalars.
    pub outputs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FppppShape {
    fn default() -> Self {
        // Sized so the lowered kernel's sequential runtime lands on the
        // paper's (Table 2: 8.98K cycles; this shape measures ~8.5K) — which
        // also reproduces Figure 8's scaling to 32 tiles.
        FppppShape {
            inputs: 40,
            intermediates: 400,
            outputs: 80,
            seed: 0x0f99_9921,
        }
    }
}

/// Generates the fpppp-kernel mini-C source for `shape`.
pub fn fpppp_source(shape: FppppShape) -> String {
    let mut rng = Rng::new(shape.seed);
    let mut src = String::new();

    // Inputs with fixed pseudo-random initial values.
    for k in 0..shape.inputs {
        let v: f32 = rng.gen_range(0.25..1.75);
        writeln!(src, "float in{k} = {v:.4};").unwrap();
    }
    for k in 0..shape.intermediates {
        writeln!(src, "float t{k};").unwrap();
    }
    for k in 0..shape.outputs {
        writeln!(src, "float o{k};").unwrap();
    }

    // A pool of available value names; later entries are referenced more
    // often than earlier ones (recency bias), creating chains with random
    // cross-links — the "irregular parallelism" structure.
    let mut pool: Vec<String> = (0..shape.inputs).map(|k| format!("in{k}")).collect();
    let pick = |rng: &mut Rng, pool: &[String]| -> String {
        let n = pool.len();
        // Square-biased towards recent values.
        let r: f64 = rng.gen_f64();
        let idx = ((r * r) * n as f64) as usize;
        pool[n - 1 - idx.min(n - 1)].clone()
    };

    for k in 0..shape.intermediates {
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let c = pick(&mut rng, &pool);
        let d = pick(&mut rng, &pool);
        let expr = match rng.gen_range(0..6) {
            // Mostly multiply-accumulate shapes; scaled to keep magnitudes
            // bounded over long chains.
            0 => format!("0.5 * ({a} * {b} + {c})"),
            1 => format!("0.5 * ({a} + {b}) - 0.25 * {c}"),
            2 => format!("{a} * 0.375 + {b} * 0.125 + {c} * 0.0625"),
            3 => format!("0.5 * ({a} - {b}) * {c} + 0.2 * {d}"),
            4 => format!("sqrt(abs({a} * {b}) + 0.5)"),
            _ => format!("{a} / (abs({b}) + 1.5) + 0.25 * {c}"),
        };
        writeln!(src, "t{k} = {expr};").unwrap();
        pool.push(format!("t{k}"));
    }

    for k in 0..shape.outputs {
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let c = pick(&mut rng, &pool);
        writeln!(src, "o{k} = {a} * {b} + 0.5 * {c};").unwrap();
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_ir::interp::Interpreter;

    #[test]
    fn generation_is_deterministic() {
        let a = fpppp_source(FppppShape::default());
        let b = fpppp_source(FppppShape::default());
        assert_eq!(a, b);
        let c = fpppp_source(FppppShape {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn default_kernel_is_pinned() {
        // Golden hash of the default-shape kernel source: the fpppp workload
        // must stay bit-identical across PRs (re-pin consciously on change;
        // the assertion message prints the replacement value).
        let got = raw_testkit::hash_str(&fpppp_source(FppppShape::default()));
        assert_eq!(
            got, 0x6fbc5667f0a7c2e1,
            "fpppp kernel drifted; if intentional, re-pin to {got:#018x}"
        );
    }

    #[test]
    fn kernel_is_one_large_basic_block() {
        let src = fpppp_source(FppppShape::default());
        let p = raw_lang::compile_source("fpppp", &src, 1).unwrap();
        // Straight-line: a single block holding several hundred instructions.
        assert_eq!(p.blocks.len(), 1);
        assert!(
            p.num_insts() > 400,
            "kernel too small: {} instructions",
            p.num_insts()
        );
    }

    #[test]
    fn kernel_runs_and_produces_finite_outputs() {
        let src = fpppp_source(FppppShape::default());
        let p = raw_lang::compile_source("fpppp", &src, 1).unwrap();
        let r = Interpreter::new(&p).run().unwrap();
        let mut checked = 0;
        for (i, decl) in p.vars.iter().enumerate() {
            if decl.name.starts_with('o') {
                if let raw_ir::Imm::F(v) = r.vars[i] {
                    assert!(v.is_finite(), "{} = {v}", decl.name);
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, FppppShape::default().outputs);
    }

    #[test]
    fn small_shape_scales_down() {
        let src = fpppp_source(FppppShape {
            inputs: 4,
            intermediates: 6,
            outputs: 2,
            seed: 7,
        });
        let p = raw_lang::compile_source("fpppp-small", &src, 2).unwrap();
        assert!(p.num_insts() < 120);
    }
}

//! Mini-C sources of the six loop benchmarks (fpppp-kernel is generated, see
//! [`fpppp`](crate::fpppp)).
//!
//! Each source is a template with `@..@` placeholders substituted by the
//! constructors in [`lib`](crate), so tests can build scaled-down variants
//! while the paper-sized suite uses Table 2's dimensions.

/// Conway's Game of Life (Rawbench), `@N@×@N@` toroidal-interior grid for
/// `@GENS@` generations. The cell update keeps the original `if` control flow
/// inside the loop body, which is exactly why the paper reports low speedup
/// for life: unrolling cannot remove branches from the loop body.
pub const LIFE: &str = "
int i; int j; int g;
int cnt;
int A[@N@][@N@];
int B[@N@][@N@];
for (g = 0; g < @GENS@; g = g + 1) {
  for (i = 1; i < @N1@; i = i + 1) {
    for (j = 1; j < @N1@; j = j + 1) {
      cnt = A[i-1][j-1] + A[i-1][j] + A[i-1][j+1]
          + A[i][j-1] + A[i][j+1]
          + A[i+1][j-1] + A[i+1][j] + A[i+1][j+1];
      if (cnt == 3) {
        B[i][j] = 1;
      } else {
        if (cnt == 2) {
          B[i][j] = A[i][j];
        } else {
          B[i][j] = 0;
        }
      }
    }
  }
  for (i = 1; i < @N1@; i = i + 1) {
    for (j = 1; j < @N1@; j = j + 1) {
      A[i][j] = B[i][j];
    }
  }
}
";

/// Jacobi relaxation (Rawbench), `@N@×@N@`, `@ITERS@` sweeps.
pub const JACOBI: &str = "
int i; int j; int t;
float A[@N@][@N@];
float B[@N@][@N@];
for (t = 0; t < @ITERS@; t = t + 1) {
  for (i = 1; i < @N1@; i = i + 1) {
    for (j = 1; j < @N1@; j = j + 1) {
      B[i][j] = 0.25 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);
    }
  }
  for (i = 1; i < @N1@; i = i + 1) {
    for (j = 1; j < @N1@; j = j + 1) {
      A[i][j] = B[i][j];
    }
  }
}
";

/// Matrix multiplication (nasa7): `C[@M@][@P@] = A[@M@][@K@] × B[@K@][@P@]`.
pub const MXM: &str = "
int i; int j; int k;
float A[@M@][@K@];
float B[@K@][@P@];
float C[@M@][@P@];
float s;
for (i = 0; i < @M@; i = i + 1) {
  for (j = 0; j < @P@; j = j + 1) {
    s = 0.0;
    for (k = 0; k < @K@; k = k + 1) {
      s = s + A[i][k] * B[k][j];
    }
    C[i][j] = s;
  }
}
";

/// Cholesky decomposition/substitution (nasa7): `@MATS@` batched SPD systems
/// of size `@N@×@N@`, decomposed in place into `L`, then one forward
/// substitution per system into `Y`.
pub const CHOLESKY: &str = "
int m; int i; int j; int k;
float A[@MATS@][@N@][@N@];
float L[@MATS@][@N@][@N@];
float RHS[@MATS@][@N@];
float Y[@MATS@][@N@];
float s;
for (m = 0; m < @MATS@; m = m + 1) {
  for (j = 0; j < @N@; j = j + 1) {
    s = A[m][j][j];
    for (k = 0; k < j; k = k + 1) {
      s = s - L[m][j][k] * L[m][j][k];
    }
    L[m][j][j] = sqrt(s);
    for (i = j + 1; i < @N@; i = i + 1) {
      s = A[m][i][j];
      for (k = 0; k < j; k = k + 1) {
        s = s - L[m][i][k] * L[m][j][k];
      }
      L[m][i][j] = s / L[m][j][j];
    }
  }
  for (i = 0; i < @N@; i = i + 1) {
    s = RHS[m][i];
    for (k = 0; k < i; k = k + 1) {
      s = s - L[m][i][k] * Y[m][k];
    }
    Y[m][i] = s / L[m][i][i];
  }
}
";

/// Pentadiagonal-style elimination (nasa7 vpenta): `@N@` independent systems
/// along the first index, a serial second-order recurrence along the second —
/// the layout that defeats basic-block growth, as the paper reports.
pub const VPENTA: &str = "
int i; int j;
float X[@N@][@N@];
float D[@N@][@N@];
float E[@N@][@N@];
float F[@N@][@N@];
float A[@N@][@N@];
float B[@N@][@N@];
float m1; float m2;
for (i = 0; i < @N@; i = i + 1) {
  for (j = 2; j < @N@; j = j + 1) {
    m1 = A[i][j] / D[i][j-2];
    m2 = (B[i][j] - m1 * E[i][j-2]) / D[i][j-1];
    D[i][j] = D[i][j] - m1 * F[i][j-2] - m2 * E[i][j-1];
    E[i][j] = E[i][j] - m2 * F[i][j-1];
    X[i][j] = X[i][j] - m1 * X[i][j-2] - m2 * X[i][j-1];
  }
}
for (i = 0; i < @N@; i = i + 1) {
  X[i][@N1@] = X[i][@N1@] / D[i][@N1@];
  X[i][@N2@] = (X[i][@N2@] - E[i][@N2@] * X[i][@N1@]) / D[i][@N2@];
  for (j = 0; j < @N2@; j = j + 1) {
    X[i][@N3@-j] = (X[i][@N3@-j] - E[i][@N3@-j] * X[i][@N2@-j]
                  - F[i][@N3@-j] * X[i][@N1@-j]) / D[i][@N3@-j];
  }
}
";

/// Mesh generation with Thompson's solver (Spec92 tomcatv), reduced to
/// `@ITERS@` iterations on a `@N@×@N@` mesh: residual computation, maximum
/// error reduction (with `if` control flow), and relaxation update.
pub const TOMCATV: &str = "
int i; int j; int t;
float X[@N@][@N@];
float Y[@N@][@N@];
float RX[@N@][@N@];
float RY[@N@][@N@];
float xx; float yx; float xy; float yy;
float a; float b; float c;
float rel = 0.18;
float errx; float erry; float ax; float ay;
for (t = 0; t < @ITERS@; t = t + 1) {
  for (i = 1; i < @N1@; i = i + 1) {
    for (j = 1; j < @N1@; j = j + 1) {
      xx = 0.5 * (X[i+1][j] - X[i-1][j]);
      yx = 0.5 * (Y[i+1][j] - Y[i-1][j]);
      xy = 0.5 * (X[i][j+1] - X[i][j-1]);
      yy = 0.5 * (Y[i][j+1] - Y[i][j-1]);
      a = 0.25 * (xy*xy + yy*yy);
      b = 0.25 * (xx*xx + yx*yx);
      c = 0.125 * (xx*xy + yx*yy);
      RX[i][j] = a*(X[i+1][j] + X[i-1][j]) + b*(X[i][j+1] + X[i][j-1])
               - 0.5*c*(X[i+1][j+1] - X[i+1][j-1] - X[i-1][j+1] + X[i-1][j-1])
               - (a+b)*2.0*X[i][j];
      RY[i][j] = a*(Y[i+1][j] + Y[i-1][j]) + b*(Y[i][j+1] + Y[i][j-1])
               - 0.5*c*(Y[i+1][j+1] - Y[i+1][j-1] - Y[i-1][j+1] + Y[i-1][j-1])
               - (a+b)*2.0*Y[i][j];
    }
  }
  errx = 0.0;
  erry = 0.0;
  for (i = 1; i < @N1@; i = i + 1) {
    for (j = 1; j < @N1@; j = j + 1) {
      ax = abs(RX[i][j]);
      ay = abs(RY[i][j]);
      if (errx < ax) { errx = ax; }
      if (erry < ay) { erry = ay; }
      X[i][j] = X[i][j] + rel * RX[i][j];
      Y[i][j] = Y[i][j] + rel * RY[i][j];
    }
  }
}
";

/// Pointer chasing over a host-seeded permutation: `@STEPS@` hops of
/// `cur = P[cur]`, accumulating the visited payloads. Every subscript is
/// data-dependent, so each hop is a serial round trip on the dynamic
/// network — the adversarial workload for wormhole routing and the tracked
/// stepper's sleep gating.
pub const POINTER_CHASE: &str = "
int i; int cur; int sum;
int P[@N@];
int V[@N@];
int OUT[2];
cur = 0;
sum = 0;
for (i = 0; i < @STEPS@; i = i + 1) {
  sum = sum + V[cur];
  cur = P[cur];
}
OUT[0] = sum;
OUT[1] = cur;
";

/// Scatter/histogram: data-dependent read-modify-write `H[D[i] % @BINS@]`,
/// stressing in-flight dynamic loads and stores to colliding homes.
pub const SCATTER: &str = "
int i; int k;
int D[@N@];
int H[@BINS@];
for (i = 0; i < @N@; i = i + 1) {
  k = D[i] % @BINS@;
  H[k] = H[k] + 1;
}
";

/// Indirect gather: `S += A[IDX[i]]` with a host-seeded index array — many
/// independent dynamic loads in flight at once (the throughput counterpart to
/// the latency-bound pointer chase).
pub const GATHER: &str = "
int i; int s;
int IDX[@N@];
int A[@N@];
int OUT[1];
s = 0;
for (i = 0; i < @N@; i = i + 1) {
  s = s + A[IDX[i]];
}
OUT[0] = s;
";

/// Substitutes `@KEY@` placeholders.
pub fn instantiate(template: &str, substitutions: &[(&str, i64)]) -> String {
    let mut out = template.to_string();
    for (key, value) in substitutions {
        out = out.replace(&format!("@{key}@"), &value.to_string());
    }
    debug_assert!(!out.contains('@'), "unsubstituted placeholder in:\n{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_fills_all_placeholders() {
        let s = instantiate(JACOBI, &[("N", 8), ("N1", 7), ("ITERS", 1)]);
        assert!(!s.contains('@'));
        assert!(s.contains("float A[8][8];"));
        assert!(s.contains("i < 7"));
    }

    #[test]
    fn all_templates_parse_at_small_sizes() {
        let cases: Vec<(&str, Vec<(&str, i64)>)> = vec![
            (LIFE, vec![("N", 8), ("N1", 7), ("GENS", 1)]),
            (JACOBI, vec![("N", 8), ("N1", 7), ("ITERS", 1)]),
            (MXM, vec![("M", 4), ("K", 8), ("P", 2)]),
            (CHOLESKY, vec![("MATS", 1), ("N", 4)]),
            (VPENTA, vec![("N", 8), ("N1", 7), ("N2", 6), ("N3", 5)]),
            (TOMCATV, vec![("N", 8), ("N1", 7), ("ITERS", 1)]),
            (POINTER_CHASE, vec![("N", 8), ("STEPS", 16)]),
            (SCATTER, vec![("N", 16), ("BINS", 4)]),
            (GATHER, vec![("N", 16)]),
        ];
        for (template, subs) in cases {
            let src = instantiate(template, &subs);
            raw_lang::parser::parse("t", &src).expect(&src);
        }
    }
}

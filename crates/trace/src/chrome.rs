//! Chrome-trace (`chrome://tracing` / Perfetto) JSON export.
//!
//! The export uses the Trace Event Format's JSON-object form: complete
//! duration events (`"ph": "X"`) on one track per tile processor (`tid =
//! 2·tile`) and one per switch (`tid = 2·tile + 1`), with thread-name
//! metadata records. Timestamps are simulator cycles (the `ts` unit is
//! nominally microseconds; one cycle maps to one microsecond).

use std::fmt::Write as _;

use raw_machine::trace::Unit;

use crate::{Event, Trace};

/// Per-cycle activity label of one unit, later run-length encoded.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Cell {
    Empty,
    Named(&'static str),
}

/// Serializes `trace` as Chrome-trace JSON (a single `traceEvents` object).
pub fn chrome_trace(trace: &Trace) -> String {
    let n = trace.n_tiles();
    let horizon = trace.total_cycles as usize;
    // timeline[unit-track][cycle]
    let mut timeline = vec![vec![Cell::Empty; horizon]; n * 2];
    let track = |tile: u32, unit: Unit| -> usize {
        tile as usize * 2
            + match unit {
                Unit::Proc => 0,
                Unit::Switch => 1,
            }
    };
    let set = |tl: &mut Vec<Vec<Cell>>, tr: usize, cycle: u64, name: &'static str| {
        if (cycle as usize) < horizon {
            tl[tr][cycle as usize] = Cell::Named(name);
        }
    };
    for ev in &trace.events {
        match *ev {
            Event::Issue { cycle, tile, .. } => {
                set(&mut timeline, track(tile, Unit::Proc), cycle, "exec");
            }
            Event::Stall {
                cycle,
                tile,
                unit,
                reason,
            } => {
                set(&mut timeline, track(tile, unit), cycle, reason.name());
            }
            Event::StallSpan {
                tile,
                unit,
                reason,
                from,
                to,
                ..
            } => {
                for c in from..to {
                    set(&mut timeline, track(tile, unit), c, reason.name());
                }
            }
            Event::Route { cycle, tile, .. } => {
                set(&mut timeline, track(tile, Unit::Switch), cycle, "route");
            }
            Event::SwitchControl { cycle, tile } => {
                set(&mut timeline, track(tile, Unit::Switch), cycle, "ctrl");
            }
            Event::ChannelCommit { .. } | Event::Idle { .. } | Event::DynActive { .. } => {}
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, record: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&record);
    };
    push(
        &mut out,
        &mut first,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"raw {}x{} mesh\"}}}}",
            trace.config.rows, trace.config.cols
        ),
    );
    for t in 0..n {
        for (unit, off) in [(Unit::Proc, 0usize), (Unit::Switch, 1usize)] {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                     \"args\":{{\"name\":\"tile {} {}\"}}}}",
                    t * 2 + off,
                    t,
                    unit.name()
                ),
            );
        }
    }
    for (tid, cells) in timeline.iter().enumerate() {
        let mut c = 0usize;
        while c < cells.len() {
            let Cell::Named(name) = cells[c] else {
                c += 1;
                continue;
            };
            let mut end = c + 1;
            while end < cells.len() && cells[end] == cells[c] {
                end += 1;
            }
            let mut record = String::new();
            let _ = write!(
                record,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                name,
                tid,
                c,
                end - c
            );
            push(&mut out, &mut first, record);
            c = end;
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn empty_trace_is_valid_json() {
        let trace = Trace {
            config: raw_machine::MachineConfig::grid(1, 1),
            total_cycles: 0,
            channels: Vec::new(),
            events: Vec::new(),
            proc_idle: vec![0],
            switch_idle: vec![0],
        };
        let doc = json::parse(&chrome_trace(&trace)).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        // Process-name metadata plus two thread-name records.
        assert_eq!(events.len(), 3);
    }
}

//! Chrome-trace (`chrome://tracing` / Perfetto) JSON export.
//!
//! The export uses the Trace Event Format's JSON-object form: complete
//! duration events (`"ph": "X"`) on one track per tile processor (`tid =
//! 2·tile`) and one per switch (`tid = 2·tile + 1`), with thread-name
//! metadata records. Timestamps are simulator cycles (the `ts` unit is
//! nominally microseconds; one cycle maps to one microsecond).
//!
//! When a [`ProvenanceMap`] is supplied, every duration event whose cycles
//! are attributable to a source-level operation carries an `"args"` object
//! with the originating source `line`/`col`, the IR `value` name, and the
//! operation mnemonic — clicking a slice in Perfetto shows which Mini-C line
//! produced it. Runs are split at provenance boundaries so two adjacent
//! `exec` cycles from different source lines render as separate slices.

use std::fmt::Write as _;

use raw_machine::trace::Unit;
use rawcc::{ProvenanceMap, NO_PROV};

use crate::{Event, Trace};

/// Per-cycle activity label of one unit, later run-length encoded. The
/// provenance record id participates in equality so the encoder splits runs
/// at source-attribution boundaries.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Cell {
    Empty,
    Named(&'static str, u32),
}

/// Serializes `trace` as Chrome-trace JSON (a single `traceEvents` object)
/// without provenance annotations.
pub fn chrome_trace(trace: &Trace) -> String {
    chrome_trace_annotated(trace, None)
}

/// Serializes `trace` as Chrome-trace JSON, attaching source-provenance
/// `args` to every slice that joins to a record in `prov`.
pub fn chrome_trace_annotated(trace: &Trace, prov: Option<&ProvenanceMap>) -> String {
    let n = trace.n_tiles();
    let horizon = trace.total_cycles as usize;
    // timeline[unit-track][cycle]
    let mut timeline = vec![vec![Cell::Empty; horizon]; n * 2];
    let track = |tile: u32, unit: Unit| -> usize {
        tile as usize * 2
            + match unit {
                Unit::Proc => 0,
                Unit::Switch => 1,
            }
    };
    let rec_of = |tile: u32, unit: Unit, pc: usize| -> u32 {
        let Some(p) = prov else { return NO_PROV };
        match unit {
            Unit::Proc => p.proc_id(tile as usize, pc),
            Unit::Switch => p.switch_id(tile as usize, pc),
        }
    };
    let set = |tl: &mut Vec<Vec<Cell>>, tr: usize, cycle: u64, name: &'static str, rec: u32| {
        if (cycle as usize) < horizon {
            tl[tr][cycle as usize] = Cell::Named(name, rec);
        }
    };
    for ev in &trace.events {
        match *ev {
            Event::Issue {
                cycle, tile, pc, ..
            } => {
                let rec = rec_of(tile, Unit::Proc, pc);
                set(&mut timeline, track(tile, Unit::Proc), cycle, "exec", rec);
            }
            Event::Stall {
                cycle,
                tile,
                unit,
                reason,
                pc,
            } => {
                let rec = rec_of(tile, unit, pc);
                set(&mut timeline, track(tile, unit), cycle, reason.name(), rec);
            }
            Event::StallSpan {
                tile,
                unit,
                reason,
                from,
                to,
                pc,
                ..
            } => {
                let rec = rec_of(tile, unit, pc);
                for c in from..to {
                    set(&mut timeline, track(tile, unit), c, reason.name(), rec);
                }
            }
            Event::Route {
                cycle, tile, pc, ..
            } => {
                let rec = rec_of(tile, Unit::Switch, pc);
                set(
                    &mut timeline,
                    track(tile, Unit::Switch),
                    cycle,
                    "route",
                    rec,
                );
            }
            Event::SwitchControl { cycle, tile, pc } => {
                let rec = rec_of(tile, Unit::Switch, pc);
                set(&mut timeline, track(tile, Unit::Switch), cycle, "ctrl", rec);
            }
            Event::ChannelCommit { .. } | Event::Idle { .. } | Event::DynActive { .. } => {}
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, record: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&record);
    };
    push(
        &mut out,
        &mut first,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"raw {}x{} mesh\"}}}}",
            trace.config.rows, trace.config.cols
        ),
    );
    for t in 0..n {
        for (unit, off) in [(Unit::Proc, 0usize), (Unit::Switch, 1usize)] {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                     \"args\":{{\"name\":\"tile {} {}\"}}}}",
                    t * 2 + off,
                    t,
                    unit.name()
                ),
            );
        }
    }
    for (tid, cells) in timeline.iter().enumerate() {
        let mut c = 0usize;
        while c < cells.len() {
            let Cell::Named(name, rec) = cells[c] else {
                c += 1;
                continue;
            };
            let mut end = c + 1;
            while end < cells.len() && cells[end] == cells[c] {
                end += 1;
            }
            let mut record = String::new();
            let _ = write!(
                record,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}",
                name,
                tid,
                c,
                end - c
            );
            if let Some(r) = prov.and_then(|p| {
                (rec != NO_PROV)
                    .then(|| p.records.get(rec as usize))
                    .flatten()
            }) {
                let _ = write!(
                    record,
                    ",\"args\":{{\"line\":{},\"col\":{},\"op\":\"{}\",\"tile\":{}",
                    r.span.line, r.span.col, r.kind, r.tile
                );
                if let Some(v) = r.value {
                    let _ = write!(record, ",\"value\":\"%{}\"", v.index());
                }
                record.push('}');
            }
            record.push('}');
            push(&mut out, &mut first, record);
            c = end;
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn empty_trace_is_valid_json() {
        let trace = Trace {
            config: raw_machine::MachineConfig::grid(1, 1),
            total_cycles: 0,
            channels: Vec::new(),
            events: Vec::new(),
            proc_idle: vec![0],
            switch_idle: vec![0],
        };
        let doc = json::parse(&chrome_trace(&trace)).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        // Process-name metadata plus two thread-name records.
        assert_eq!(events.len(), 3);
    }
}

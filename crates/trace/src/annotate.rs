//! Source-level hotspot attribution: the annotated-source listing and the
//! placement audit log.
//!
//! Both reports join runtime events back to Mini-C source positions through
//! the compiler's [`ProvenanceMap`]: every recorded event carries the program
//! counter of the instruction it refers to, and the per-tile pc → record
//! tables recover the task-graph node — and from it the source span, IR
//! value, assigned tile, and placement bin — behind each cycle.
//!
//! The attribution is **exact**, not sampled: it mirrors the active-window
//! accounting of [`Trace::accounts`] event for event (issues, routes, and
//! switch-control cycles window-filtered; retroactive stall spans taken
//! whole), so the cycles attributed across all rows — including the
//! `(other)` bucket for jumps, halts, and other unattributed instructions —
//! sum to exactly `Σ (proc_window + switch_window)` over all tiles.
//! [`SourceAnnotation::selfcheck`] asserts that equality.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;

use raw_machine::trace::{StallReason, Unit};
use rawcc::{CompileReport, ProvenanceMap};

use crate::{Event, Trace};

/// Cycles attributed to one provenance record (or one source line).
#[derive(Clone, Debug, Default)]
pub struct AttrStats {
    /// Processor issue cycles.
    pub exec: u64,
    /// Switch route cycles.
    pub routes: u64,
    /// Switch control-flow cycles.
    pub controls: u64,
    /// Stall cycles (processor and switch combined) by [`StallReason::index`].
    pub stalls: [u64; 5],
    /// Tiles whose processor or switch spent cycles here.
    pub tiles: BTreeSet<u32>,
}

impl AttrStats {
    /// All cycles attributed to this row.
    pub fn total(&self) -> u64 {
        self.exec + self.routes + self.controls + self.stalls.iter().sum::<u64>()
    }

    /// Total stall cycles (all reasons).
    pub fn stall_total(&self) -> u64 {
        self.stalls.iter().sum()
    }

    fn add(&mut self, other: &AttrStats) {
        self.exec += other.exec;
        self.routes += other.routes;
        self.controls += other.controls;
        for i in 0..5 {
            self.stalls[i] += other.stalls[i];
        }
        self.tiles.extend(other.tiles.iter().copied());
    }
}

/// Per-record cycle attribution for a whole trace.
///
/// Record id [`NO_PROV`](rawcc::NO_PROV) collects every cycle with no source-level origin
/// (jumps, halts, the spilled-condition reload, switch halt padding).
pub fn attribute_records(trace: &Trace, prov: &ProvenanceMap) -> HashMap<u32, AttrStats> {
    let mut by_rec: HashMap<u32, AttrStats> = HashMap::new();
    let mut touch = |rec: u32, tile: u32, f: &dyn Fn(&mut AttrStats)| {
        let s = by_rec.entry(rec).or_default();
        f(s);
        s.tiles.insert(tile);
    };
    let rec_of = |tile: u32, unit: Unit, pc: usize| -> u32 {
        match unit {
            Unit::Proc => prov.proc_id(tile as usize, pc),
            Unit::Switch => prov.switch_id(tile as usize, pc),
        }
    };
    // Mirrors Trace::accounts: single-cycle events are filtered to the unit's
    // active window; retroactive stall spans are taken whole.
    for ev in &trace.events {
        match *ev {
            Event::Issue {
                cycle, tile, pc, ..
            } => {
                if cycle < trace.window(tile as usize, Unit::Proc) {
                    let rec = rec_of(tile, Unit::Proc, pc);
                    touch(rec, tile, &|s| s.exec += 1);
                }
            }
            Event::Stall {
                cycle,
                tile,
                unit,
                reason,
                pc,
            } => {
                if cycle < trace.window(tile as usize, unit) {
                    let rec = rec_of(tile, unit, pc);
                    touch(rec, tile, &|s| s.stalls[reason.index()] += 1);
                }
            }
            Event::StallSpan {
                tile,
                unit,
                reason,
                from,
                to,
                chaos,
                pc,
            } => {
                let rec = rec_of(tile, unit, pc);
                let len = to - from;
                touch(rec, tile, &|s| {
                    s.stalls[reason.index()] += len - chaos;
                    s.stalls[StallReason::Chaos.index()] += chaos;
                });
            }
            Event::Route {
                cycle, tile, pc, ..
            } => {
                if cycle < trace.window(tile as usize, Unit::Switch) {
                    let rec = rec_of(tile, Unit::Switch, pc);
                    touch(rec, tile, &|s| s.routes += 1);
                }
            }
            Event::SwitchControl { cycle, tile, pc } => {
                if cycle < trace.window(tile as usize, Unit::Switch) {
                    let rec = rec_of(tile, Unit::Switch, pc);
                    touch(rec, tile, &|s| s.controls += 1);
                }
            }
            Event::ChannelCommit { .. } | Event::Idle { .. } | Event::DynActive { .. } => {}
        }
    }
    by_rec
}

/// The annotated-source model: per-line cycle attribution plus the totals
/// needed for the conservation self-check.
#[derive(Clone, Debug)]
pub struct SourceAnnotation {
    /// Per source line (1-based): attributed cycles. Lines never executed are
    /// absent.
    pub lines: BTreeMap<u32, AttrStats>,
    /// Cycles with provenance but no source span (compiler-synthesized IR).
    pub synthetic: AttrStats,
    /// Cycles with no provenance at all (jumps, halts, prologue/epilogue).
    pub other: AttrStats,
    /// `Σ (proc_window + switch_window)` over all tiles.
    pub window_cycles: u64,
}

impl SourceAnnotation {
    /// Attributes every active-window cycle of `trace` to a source line.
    pub fn build(trace: &Trace, prov: &ProvenanceMap) -> SourceAnnotation {
        let by_rec = attribute_records(trace, prov);
        let mut lines: BTreeMap<u32, AttrStats> = BTreeMap::new();
        let mut synthetic = AttrStats::default();
        let mut other = AttrStats::default();
        for (rec, stats) in &by_rec {
            match prov.records.get(*rec as usize) {
                Some(r) if r.span.is_some() => lines.entry(r.span.line).or_default().add(stats),
                Some(_) => synthetic.add(stats),
                None => other.add(stats),
            }
        }
        let window_cycles = (0..trace.n_tiles())
            .map(|t| trace.window(t, Unit::Proc) + trace.window(t, Unit::Switch))
            .sum();
        SourceAnnotation {
            lines,
            synthetic,
            other,
            window_cycles,
        }
    }

    /// Total cycles attributed across all rows (must equal
    /// [`window_cycles`](Self::window_cycles)).
    pub fn attributed_cycles(&self) -> u64 {
        self.lines.values().map(AttrStats::total).sum::<u64>()
            + self.synthetic.total()
            + self.other.total()
    }

    /// Returns `Ok(cycles)` when attribution conserves the active-window
    /// accounting, or `Err((attributed, window))` on a mismatch.
    pub fn selfcheck(&self) -> Result<u64, (u64, u64)> {
        let a = self.attributed_cycles();
        if a == self.window_cycles {
            Ok(a)
        } else {
            Err((a, self.window_cycles))
        }
    }

    /// Renders the perf-annotate-style listing against the Mini-C `source`
    /// the program was compiled from.
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        out.push_str("annotated source (cycles attributed per line, active windows)\n");
        let _ = writeln!(
            out,
            "{:>4} {:>9} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>5} | source",
            "line", "cycles", "exec", "comm", "scbd", "sfull", "rempty", "dynnet", "chaos", "tiles"
        );
        let empty = AttrStats::default();
        let row = |out: &mut String, label: &str, s: &AttrStats, src: &str| {
            if s.total() == 0 && src.trim().is_empty() {
                let _ = writeln!(out, "{label:>4} {:>66} |", "");
                return;
            }
            let cell = |v: u64| -> String {
                if v == 0 {
                    ".".to_string()
                } else {
                    v.to_string()
                }
            };
            let _ = writeln!(
                out,
                "{:>4} {:>9} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>5} | {}",
                label,
                cell(s.total()),
                cell(s.exec),
                cell(s.routes + s.controls),
                cell(s.stalls[0]),
                cell(s.stalls[1]),
                cell(s.stalls[2]),
                cell(s.stalls[3]),
                cell(s.stalls[4]),
                if s.tiles.is_empty() {
                    ".".to_string()
                } else {
                    format!("x{}", s.tiles.len())
                },
                src
            );
        };
        for (i, text) in source.lines().enumerate() {
            let n = i as u32 + 1;
            let s = self.lines.get(&n).unwrap_or(&empty);
            row(&mut out, &n.to_string(), s, text);
        }
        // Attributed lines beyond the source text (should not happen for a
        // matching source, but never silently drop cycles).
        let n_src = source.lines().count() as u32;
        for (line, s) in self.lines.range(n_src + 1..) {
            row(&mut out, &line.to_string(), s, "<beyond source text>");
        }
        if self.synthetic.total() > 0 {
            row(&mut out, "syn", &self.synthetic, "(compiler-synthesized)");
        }
        row(&mut out, "-", &self.other, "(jumps, halts, no provenance)");
        match self.selfcheck() {
            Ok(total) => {
                let _ = writeln!(
                    out,
                    "total: {total} cycles attributed == {} active-window cycles",
                    self.window_cycles
                );
            }
            Err((a, w)) => {
                let _ = writeln!(
                    out,
                    "total: MISMATCH — {a} cycles attributed != {w} active-window cycles"
                );
            }
        }
        out
    }
}

/// Renders the placement audit log: the hottest values by stall cycles, each
/// joined with the placement decision that put it on its tile.
///
/// For every hot record the report names the accepted placement swap (if any)
/// that last moved the record's bin, so a hot line reads as "this value
/// stalled N cycles on tile T, which the placer chose at step S". `top`
/// bounds the number of rows per block.
pub fn placement_audit(
    trace: &Trace,
    prov: &ProvenanceMap,
    report: &CompileReport,
    top: usize,
) -> String {
    let by_rec = attribute_records(trace, prov);
    let mut out = String::new();
    out.push_str("placement audit (runtime stalls joined with placement decisions)\n");
    for (b, block) in report.blocks.iter().enumerate() {
        let log = &block.placement;
        let _ = writeln!(
            out,
            "block {b}: placement '{}', comm cost {} -> {}, {} accepted move(s)",
            log.algorithm,
            log.initial_cost,
            log.final_cost,
            log.steps.len()
        );
        // Hottest records of this block by stall cycles (ties broken by
        // record id for determinism).
        let base = prov.block_base.get(b).copied().unwrap_or(0);
        let end = prov
            .block_base
            .get(b + 1)
            .copied()
            .unwrap_or(prov.records.len() as u32);
        let mut hot: Vec<(u32, &AttrStats)> = (base..end)
            .filter_map(|rec| by_rec.get(&rec).map(|s| (rec, s)))
            .filter(|(_, s)| s.stall_total() > 0)
            .collect();
        hot.sort_by_key(|(rec, s)| (std::cmp::Reverse(s.stall_total()), *rec));
        hot.truncate(top);
        if hot.is_empty() {
            out.push_str("  (no stall cycles attributed to this block)\n");
            continue;
        }
        for (rec, s) in hot {
            let r = &prov.records[rec as usize];
            let value = match r.value {
                Some(v) => format!("%{}", v.index()),
                None => "-".to_string(),
            };
            let span = if r.span.is_some() {
                format!("line {}", r.span.line)
            } else {
                "<synthesized>".to_string()
            };
            let placed = match log.last_move_of_bin(r.bin as usize) {
                Some(step) => format!(
                    "moved by step {} (bins {}<->{}, delta {})",
                    step.step, step.bins.0, step.bins.1, step.delta
                ),
                None => "initial placement (never moved)".to_string(),
            };
            let _ = writeln!(
                out,
                "  {span} {value} ({}) tile {} bin {}: {} stall cycle(s) \
                 [scbd {} sfull {} rempty {} dyn {} chaos {}]; {placed}",
                r.kind,
                r.tile,
                r.bin,
                s.stall_total(),
                s.stalls[0],
                s.stalls[1],
                s.stalls[2],
                s.stalls[3],
                s.stalls[4],
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_machine::MachineConfig;
    use rawcc::{compile, CompilerOptions};

    #[test]
    fn attribution_conserves_window_accounting() {
        let bench = raw_benchmarks::mxm(4, 8, 2);
        let program = bench.program(4).unwrap();
        let config = MachineConfig::square(4);
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
        let run = crate::run_traced(&compiled, &program).unwrap();
        let ann = SourceAnnotation::build(&run.trace, &compiled.provenance);
        let total = ann.selfcheck().expect("attribution must conserve cycles");
        assert!(total > 0);
        // Real source lines must carry the bulk of the execution.
        let line_cycles: u64 = ann.lines.values().map(AttrStats::total).sum();
        assert!(
            line_cycles > ann.other.total(),
            "most cycles should attribute to source lines ({line_cycles} vs {})",
            ann.other.total()
        );
        // Every attributed line exists in the source text.
        let n_src = bench.source().lines().count() as u32;
        for line in ann.lines.keys() {
            assert!(*line >= 1 && *line <= n_src, "line {line} outside source");
        }
    }

    #[test]
    fn placement_audit_names_moves() {
        let bench = raw_benchmarks::mxm(4, 8, 2);
        let program = bench.program(4).unwrap();
        let config = MachineConfig::square(4);
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
        let run = crate::run_traced(&compiled, &program).unwrap();
        let audit = placement_audit(&run.trace, &compiled.provenance, &compiled.report, 5);
        assert!(audit.contains("placement audit"));
        assert!(audit.contains("block 0"));
    }
}

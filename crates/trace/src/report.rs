//! Human-readable renderings of a [`Trace`]: occupancy table, mesh-link
//! heatmap, critical-path walk, and the predicted-vs-observed diff.
//!
//! All renderers are deterministic for a deterministic run, so their output is
//! suitable for golden-snapshot tests.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

use raw_machine::isa::{SDst, SSrc, TileId};
use raw_machine::trace::{ChannelRole, StallReason, Unit};
use rawcc::{CompileReport, PhaseTimings};

use crate::{Event, Trace};

/// Renders the per-tile occupancy / stall-attribution table.
///
/// One row per tile plus a totals row. The left half accounts for the
/// processor (`issues + stalls == window`), the right half for the switch
/// (`routes + ctrl + stall == window`); `window` is the unit's live span
/// (cycles until it went idle, clamped to the run length).
pub fn occupancy_table(trace: &Trace) -> String {
    let accounts = trace.accounts();
    let mut out = String::new();
    out.push_str("per-tile occupancy and stall attribution\n");
    let _ = writeln!(
        out,
        "{:>4} | {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} | {:>7} {:>7} {:>6} {:>6}",
        "tile",
        "window",
        "issues",
        "busy%",
        "scbd",
        "sfull",
        "rempty",
        "dynnet",
        "chaos",
        "window",
        "routes",
        "ctrl",
        "stall"
    );
    let busy = |issues: u64, window: u64| -> f64 {
        if window == 0 {
            0.0
        } else {
            100.0 * issues as f64 / window as f64
        }
    };
    let mut tot = crate::TileAccount::default();
    for (t, a) in accounts.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>4} | {:>7} {:>7} {:>6.1} {:>6} {:>6} {:>6} {:>6} {:>6} | {:>7} {:>7} {:>6} {:>6}",
            t,
            a.proc_window,
            a.issues,
            busy(a.issues, a.proc_window),
            a.proc_stalls[0],
            a.proc_stalls[1],
            a.proc_stalls[2],
            a.proc_stalls[3],
            a.proc_stalls[4],
            a.switch_window,
            a.routes,
            a.controls,
            a.switch_stall_total(),
        );
        tot.issues += a.issues;
        tot.routes += a.routes;
        tot.controls += a.controls;
        tot.proc_window += a.proc_window;
        tot.switch_window += a.switch_window;
        for i in 0..5 {
            tot.proc_stalls[i] += a.proc_stalls[i];
            tot.switch_stalls[i] += a.switch_stalls[i];
        }
    }
    let _ = writeln!(
        out,
        "{:>4} | {:>7} {:>7} {:>6.1} {:>6} {:>6} {:>6} {:>6} {:>6} | {:>7} {:>7} {:>6} {:>6}",
        "all",
        tot.proc_window,
        tot.issues,
        busy(tot.issues, tot.proc_window),
        tot.proc_stalls[0],
        tot.proc_stalls[1],
        tot.proc_stalls[2],
        tot.proc_stalls[3],
        tot.proc_stalls[4],
        tot.switch_window,
        tot.routes,
        tot.controls,
        tot.switch_stall_total(),
    );
    let _ = writeln!(
        out,
        "total cycles: {}   dynamic-network active cycles: {}",
        trace.total_cycles,
        trace.dyn_active_cycles()
    );
    out
}

/// Renders an ASCII heatmap of mesh-link utilization.
///
/// Each directed link is labelled with the percentage of run cycles on which
/// it committed a word (`>`/`<` for east/west, `v`/`^` for south/north,
/// written next to the sending tile).
pub fn link_heatmap(trace: &Trace) -> String {
    let (rows, cols) = (trace.config.rows as usize, trace.config.cols as usize);
    let commits = trace.channel_commits();
    // util[(from, to)] = integer percent of cycles the link carried a commit.
    let mut util: HashMap<(u32, u32), u64> = HashMap::new();
    for info in &trace.channels {
        if let ChannelRole::Link { from, to, .. } = info.role {
            let c = commits[info.id];
            let pct = (100 * c + trace.total_cycles / 2)
                .checked_div(trace.total_cycles)
                .unwrap_or(0);
            util.insert((from, to), pct.min(99));
        }
    }
    let pct =
        |from: usize, to: usize| -> u64 { *util.get(&(from as u32, to as u32)).unwrap_or(&0) };
    let mut out = String::new();
    out.push_str("mesh link utilization (% of cycles carrying a word)\n");
    for r in 0..rows {
        // Tile row: [ id] >east% <west% [ id] ...
        let mut line = String::new();
        for c in 0..cols {
            let t = r * cols + c;
            let _ = write!(line, "[{t:>3}]");
            if c + 1 < cols {
                let _ = write!(line, " >{:02} <{:02} ", pct(t, t + 1), pct(t + 1, t));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        // Vertical links between row r and r + 1, aligned under each tile.
        if r + 1 < rows {
            let mut line = String::new();
            for c in 0..cols {
                let t = r * cols + c;
                let d = t + cols;
                let _ = write!(line, " v{:02} ^{:02}", pct(t, d), pct(d, t));
                if c + 1 < cols {
                    // Pad to the same width as "[xxx] >xx <xx " minus the cell.
                    line.push_str("  ");
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
    }
    out
}

/// Per-tile cycle-indexed view of the trace used by the critical-path walk.
struct Index<'a> {
    issues: Vec<BTreeSet<u64>>,
    proc_stall: Vec<HashMap<u64, StallReason>>,
    routes: Vec<HashMap<u64, &'a [(SSrc, SDst)]>>,
    /// Sorted commit cycles per channel.
    commits: Vec<Vec<u64>>,
    sp_chan: Vec<Option<usize>>,
    ps_chan: Vec<Option<usize>>,
    /// `(writing tile, dir from writer)` → link channel id.
    link_chan: HashMap<(u32, usize), usize>,
}

impl<'a> Index<'a> {
    fn build(trace: &'a Trace) -> Index<'a> {
        let n = trace.n_tiles();
        let mut idx = Index {
            issues: vec![BTreeSet::new(); n],
            proc_stall: vec![HashMap::new(); n],
            routes: vec![HashMap::new(); n],
            commits: vec![Vec::new(); trace.channels.len()],
            sp_chan: vec![None; n],
            ps_chan: vec![None; n],
            link_chan: HashMap::new(),
        };
        for info in &trace.channels {
            match info.role {
                ChannelRole::ProcToSwitch { tile } => idx.ps_chan[tile as usize] = Some(info.id),
                ChannelRole::SwitchToProc { tile } => idx.sp_chan[tile as usize] = Some(info.id),
                ChannelRole::Link { from, dir, .. } => {
                    idx.link_chan.insert((from, dir.index()), info.id);
                }
            }
        }
        for ev in &trace.events {
            match ev {
                Event::Issue { cycle, tile, .. } => {
                    idx.issues[*tile as usize].insert(*cycle);
                }
                Event::Stall {
                    cycle,
                    tile,
                    unit: Unit::Proc,
                    reason,
                    ..
                } => {
                    idx.proc_stall[*tile as usize].insert(*cycle, *reason);
                }
                Event::StallSpan {
                    tile,
                    unit: Unit::Proc,
                    reason,
                    from,
                    to,
                    ..
                } => {
                    // Chaos skips inside a span are not positionally
                    // observable; attribute the whole span to its cause.
                    for c in *from..*to {
                        idx.proc_stall[*tile as usize].insert(c, *reason);
                    }
                }
                Event::Route {
                    cycle, tile, pairs, ..
                } => {
                    idx.routes[*tile as usize].insert(*cycle, pairs.as_slice());
                }
                Event::ChannelCommit { cycle, channel, .. } => {
                    idx.commits[*channel].push(*cycle);
                }
                _ => {}
            }
        }
        for c in &mut idx.commits {
            c.sort_unstable();
        }
        idx
    }

    /// Latest commit on `channel` at or before `cycle`.
    fn latest_commit_le(&self, channel: usize, cycle: u64) -> Option<u64> {
        let v = &self.commits[channel];
        let i = v.partition_point(|&c| c <= cycle);
        if i == 0 {
            None
        } else {
            Some(v[i - 1])
        }
    }

    /// Follows the word that ended a receive-empty wait on `tile` backwards
    /// through the switch fabric to the proc that injected it. Returns the
    /// `(tile, cycle)` of the injecting send, pushing one line per hop.
    ///
    /// Attribution through a FIFO is heuristic (the most recent commit before
    /// each consumption is followed, which is exact for depth-1 traffic).
    fn follow_word(
        &self,
        trace: &Trace,
        tile: usize,
        recv_cycle: u64,
        lines: &mut Vec<String>,
    ) -> Option<(usize, u64)> {
        let mut cur = tile;
        let mut want = SDst::Proc;
        let ch = self.sp_chan[tile]?;
        let mut x = self.latest_commit_le(ch, recv_cycle.saturating_sub(1))?;
        for _ in 0..64 {
            let pairs = self.routes[cur].get(&x)?;
            let (src, _) = pairs.iter().find(|(_, d)| *d == want)?;
            match *src {
                SSrc::Proc => {
                    let z = self.latest_commit_le(self.ps_chan[cur]?, x.saturating_sub(1))?;
                    lines.push(format!(
                        "        <- word injected by tile {cur} proc (send @{z}, routed @{x})"
                    ));
                    return Some((cur, z));
                }
                SSrc::Dir(d) => {
                    let u = trace
                        .config
                        .neighbor(TileId::from_raw(cur as u32), d)?
                        .index();
                    let back = d.opposite();
                    let ch = *self.link_chan.get(&(u as u32, back.index()))?;
                    let y = self.latest_commit_le(ch, x.saturating_sub(1))?;
                    lines.push(format!(
                        "        <- via switch {cur} route @{x} over link from tile {u}"
                    ));
                    cur = u;
                    want = SDst::Dir(back);
                    x = y;
                }
                SSrc::Reg(r) => {
                    lines.push(format!(
                        "        <- switch {cur} register ${r} (broadcast latch); chain ends"
                    ));
                    return None;
                }
            }
        }
        None
    }
}

/// Walks the observed critical path backwards from the last-finishing tile.
///
/// The walk alternates between execution runs and stall runs on a tile; a
/// receive-empty stall is crossed by following the word that ended it back
/// through the recorded routes to the processor that injected it, and the walk
/// resumes there. The result is the chain of work and waiting that determined
/// the run length (heuristic across deep FIFOs, exact for rendezvous-style
/// static traffic).
pub fn critical_path(trace: &Trace) -> String {
    let idx = Index::build(trace);
    let accounts = trace.accounts();
    // Start at the processor with the latest live window, at its last issue.
    let start = accounts
        .iter()
        .enumerate()
        .filter(|(t, _)| !idx.issues[*t].is_empty())
        .max_by_key(|(_, a)| a.proc_window)
        .map(|(t, _)| t);
    let Some(mut tile) = start else {
        return "critical path: no issues recorded\n".to_string();
    };
    let Some(&last) = idx.issues[tile].iter().next_back() else {
        return "critical path: no issues recorded\n".to_string();
    };
    let mut c = last;
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!(
        "    end: tile {tile} proc, last issue at cycle {c}"
    ));
    let mut budget = 256;
    loop {
        budget -= 1;
        if budget == 0 {
            lines.push("    ... (walk truncated)".to_string());
            break;
        }
        if idx.issues[tile].contains(&c) {
            let mut lo = c;
            while lo > 0 && idx.issues[tile].contains(&(lo - 1)) {
                lo -= 1;
            }
            lines.push(format!(
                "    tile {:>2} proc  cycles {:>6}..{:<6} exec  ({} issues)",
                tile,
                lo,
                c + 1,
                c + 1 - lo
            ));
            if lo == 0 {
                break;
            }
            c = lo - 1;
            continue;
        }
        if let Some(&reason) = idx.proc_stall[tile].get(&c) {
            let mut lo = c;
            while lo > 0 && idx.proc_stall[tile].get(&(lo - 1)) == Some(&reason) {
                lo -= 1;
            }
            lines.push(format!(
                "    tile {:>2} proc  cycles {:>6}..{:<6} wait  ({}, {} cycles)",
                tile,
                lo,
                c + 1,
                reason.name(),
                c + 1 - lo
            ));
            if reason == StallReason::ReceiveEmpty {
                if let Some((t, z)) = idx.follow_word(trace, tile, c + 1, &mut lines) {
                    tile = t;
                    c = z;
                    continue;
                }
            }
            if lo == 0 {
                break;
            }
            c = lo - 1;
            continue;
        }
        lines.push(format!(
            "    tile {tile:>2} proc  cycle {c:>7} unattributed; walk stops"
        ));
        break;
    }
    let mut out = String::new();
    out.push_str("observed critical path (walked backward; read top-down in time)\n");
    for l in lines.iter().rev() {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Renders the scheduler's predicted space-time map against the observed
/// trace: makespans, per-tile issue counts, and per-tile route counts.
pub fn predicted_vs_observed(trace: &Trace, report: &CompileReport) -> String {
    let accounts = trace.accounts();
    let n = trace.n_tiles();
    let mut pred_issues = vec![0u64; n];
    let mut pred_routes = vec![0u64; n];
    for b in &report.blocks {
        for (t, slot) in pred_issues.iter_mut().enumerate() {
            if t < b.predicted.proc_ops.len() {
                *slot += b.predicted.proc_issues(t) as u64;
            }
        }
        for (t, slot) in pred_routes.iter_mut().enumerate() {
            if t < b.predicted.route_cycles.len() {
                *slot += b.predicted.route_cycles[t].len() as u64;
            }
        }
    }
    let mut out = String::new();
    out.push_str("predicted (scheduler cost model) vs observed (simulator)\n");
    let predicted = report.predicted_makespan();
    let observed = trace.total_cycles;
    let ratio = if predicted == 0 {
        0.0
    } else {
        observed as f64 / predicted as f64
    };
    let _ = writeln!(
        out,
        "makespan: predicted {predicted} cycles, observed {observed} cycles ({ratio:.2}x)"
    );
    let _ = writeln!(
        out,
        "{:>4} | {:>10} {:>10} {:>7} | {:>10} {:>10}",
        "tile", "pred-issue", "obs-issue", "delta", "pred-route", "obs-route"
    );
    for (t, a) in accounts.iter().enumerate() {
        let delta = a.issues as i64 - pred_issues[t] as i64;
        let _ = writeln!(
            out,
            "{:>4} | {:>10} {:>10} {:>+7} | {:>10} {:>10}",
            t, pred_issues[t], a.issues, delta, pred_routes[t], a.routes
        );
    }
    out.push_str(
        "note: predicted counts cover one straight-line pass (loops once); the\n\
         observed column includes every dynamic repetition, so deltas beyond\n\
         control-flow effects indicate cost-model divergence.\n",
    );
    out
}

/// Renders per-phase compile timings (wall clock).
pub fn phase_table(timings: &PhaseTimings) -> String {
    let mut out = String::new();
    out.push_str("compile phase timings\n");
    for (name, d) in timings.rows() {
        let _ = writeln!(out, "{:>10}: {:>9.3} ms", name, d.as_secs_f64() * 1e3);
    }
    let _ = writeln!(
        out,
        "{:>10}: {:>9.3} ms",
        "total",
        timings.total().as_secs_f64() * 1e3
    );
    out
}

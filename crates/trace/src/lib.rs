//! **raw-trace** — space-time observability for the Raw reproduction.
//!
//! The simulator's [`EventSink`] interface (see [`raw_machine::trace`]) streams
//! per-cycle events; this crate records them ([`RecordingSink`]), freezes them
//! into a queryable [`Trace`], and renders the reports that make a schedule's
//! behaviour explainable:
//!
//! * a per-tile occupancy / stall breakdown table ([`report::occupancy_table`]),
//! * an ASCII mesh-link utilization heatmap ([`report::link_heatmap`]),
//! * a critical-path walk through the observed trace
//!   ([`report::critical_path`]),
//! * a predicted-vs-observed diff against the scheduler's space-time map
//!   ([`report::predicted_vs_observed`]),
//! * Chrome-trace JSON export for `chrome://tracing` / Perfetto
//!   ([`chrome::chrome_trace`]), with an in-tree JSON parser ([`json`]) used by
//!   the CI round-trip check.
//!
//! Recording is strictly observational: a traced run is bit-identical (cycle
//! counts, statistics, final memory) to an untraced one, which the workspace's
//! differential test suite asserts across every workload and a chaos sweep.
//!
//! # Example
//!
//! ```
//! use raw_machine::MachineConfig;
//! use rawcc::{compile, CompilerOptions};
//!
//! let bench = raw_benchmarks_demo();
//! # fn raw_benchmarks_demo() -> raw_ir::Program {
//! #     let mut b = raw_ir::builder::ProgramBuilder::new("demo");
//! #     let out = b.var_i32("out", 0);
//! #     let x = b.const_i32(6);
//! #     let y = b.const_i32(7);
//! #     let p = b.mul(x, y);
//! #     b.write_var(out, p);
//! #     b.halt();
//! #     b.finish().unwrap()
//! # }
//! let config = MachineConfig::square(4);
//! let compiled = compile(&bench, &config, &CompilerOptions::default())?;
//! let run = raw_trace::run_traced(&compiled, &bench)?;
//! assert_eq!(run.trace.total_cycles, run.report.cycles);
//! println!("{}", raw_trace::report::occupancy_table(&run.trace));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod annotate;
pub mod chrome;
pub mod json;
pub mod report;

use raw_ir::interp::ExecResult;
use raw_ir::Program;
use raw_machine::isa::{SDst, SSrc};
use raw_machine::trace::{ChannelInfo, EventSink, StallReason, Unit};
use raw_machine::{Machine, MachineConfig, RunReport, SimError, TileId};
use rawcc::{CoResident, CompiledProgram};

/// One recorded simulator event (see [`EventSink`] for the semantics).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A processor issued (or completed a pending port/dynamic event).
    Issue {
        /// Cycle of the issue.
        cycle: u64,
        /// Issuing tile.
        tile: u32,
        /// Program counter before the step.
        pc: usize,
        /// Result latency of the issued operation.
        latency: u32,
    },
    /// A unit stalled (or was chaos-skipped) for exactly one cycle.
    Stall {
        /// Cycle of the stall.
        cycle: u64,
        /// Stalling tile.
        tile: u32,
        /// Processor or switch.
        unit: Unit,
        /// Why it stalled.
        reason: StallReason,
        /// Program counter of the stalled instruction.
        pc: usize,
    },
    /// A unit slept for `from..to`; `chaos` of those cycles were chaos skips.
    StallSpan {
        /// Sleeping tile.
        tile: u32,
        /// Processor or switch.
        unit: Unit,
        /// Why it slept.
        reason: StallReason,
        /// First skipped cycle.
        from: u64,
        /// One past the last skipped cycle.
        to: u64,
        /// Chaos-skip cycles folded into the span.
        chaos: u64,
        /// Program counter of the blocked instruction (constant over the span).
        pc: usize,
    },
    /// A switch fired a `ROUTE`.
    Route {
        /// Cycle of the route.
        cycle: u64,
        /// Routing tile.
        tile: u32,
        /// The route's source→destination pairs.
        pairs: Vec<(SSrc, SDst)>,
        /// Switch program counter of the route instruction.
        pc: usize,
    },
    /// A switch executed a control-flow instruction.
    SwitchControl {
        /// Cycle of the instruction.
        cycle: u64,
        /// Tile.
        tile: u32,
        /// Switch program counter before the step.
        pc: usize,
    },
    /// A channel committed its staged word.
    ChannelCommit {
        /// Cycle of the commit.
        cycle: u64,
        /// Channel id (see [`Trace::channels`]).
        channel: usize,
        /// Queue length after the commit.
        occupancy: usize,
    },
    /// A unit reported idle (halted and drained) from `cycle` on.
    Idle {
        /// First idle cycle.
        cycle: u64,
        /// Tile.
        tile: u32,
        /// Processor or switch.
        unit: Unit,
    },
    /// The dynamic network moved a flit.
    DynActive {
        /// Cycle of the activity.
        cycle: u64,
    },
}

/// An [`EventSink`] that records every event verbatim.
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// Recorded events, in emission order.
    pub events: Vec<Event>,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for RecordingSink {
    fn issue(&mut self, cycle: u64, tile: u32, pc: usize, latency: u32) {
        self.events.push(Event::Issue {
            cycle,
            tile,
            pc,
            latency,
        });
    }

    fn stall(&mut self, cycle: u64, tile: u32, unit: Unit, reason: StallReason, pc: usize) {
        self.events.push(Event::Stall {
            cycle,
            tile,
            unit,
            reason,
            pc,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn stall_span(
        &mut self,
        tile: u32,
        unit: Unit,
        reason: StallReason,
        from: u64,
        to: u64,
        chaos_cycles: u64,
        pc: usize,
    ) {
        self.events.push(Event::StallSpan {
            tile,
            unit,
            reason,
            from,
            to,
            chaos: chaos_cycles,
            pc,
        });
    }

    fn route(&mut self, cycle: u64, tile: u32, pairs: &[(SSrc, SDst)], pc: usize) {
        self.events.push(Event::Route {
            cycle,
            tile,
            pairs: pairs.to_vec(),
            pc,
        });
    }

    fn switch_control(&mut self, cycle: u64, tile: u32, pc: usize) {
        self.events.push(Event::SwitchControl { cycle, tile, pc });
    }

    fn channel_commit(&mut self, cycle: u64, channel: usize, occupancy: usize) {
        self.events.push(Event::ChannelCommit {
            cycle,
            channel,
            occupancy,
        });
    }

    fn idle(&mut self, cycle: u64, tile: u32, unit: Unit) {
        self.events.push(Event::Idle { cycle, tile, unit });
    }

    fn dyn_active(&mut self, cycle: u64) {
        self.events.push(Event::DynActive { cycle });
    }
}

/// A frozen, queryable record of one run.
#[derive(Debug)]
pub struct Trace {
    /// Machine configuration of the run.
    pub config: MachineConfig,
    /// Reported cycle count (trailing no-progress cycles excluded).
    pub total_cycles: u64,
    /// Static-network channel topology, indexed by channel id.
    pub channels: Vec<ChannelInfo>,
    /// All recorded events, in emission order.
    pub events: Vec<Event>,
    /// Per tile: first cycle the processor was idle (`u64::MAX` = never).
    pub proc_idle: Vec<u64>,
    /// Per tile: first cycle the switch was idle (`u64::MAX` = never).
    pub switch_idle: Vec<u64>,
}

/// Per-tile accounting derived from a [`Trace`].
///
/// The *window* of a unit is `min(first idle cycle, total_cycles)`: the span
/// in which the unit was live. Within its window every cycle is exactly one of
/// issue / stall / chaos-skip (processors) or route / control / stall /
/// chaos-skip (switches), so
/// `issues + Σ proc_stalls == proc_window` and
/// `routes + controls + Σ switch_stalls == switch_window`
/// — the invariant the workspace's property test asserts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TileAccount {
    /// Instructions issued (incl. pending-send drains and dynamic completions).
    pub issues: u64,
    /// Routes fired by the switch.
    pub routes: u64,
    /// Control-flow instructions executed by the switch.
    pub controls: u64,
    /// Processor stall cycles by [`StallReason::index`].
    pub proc_stalls: [u64; 5],
    /// Switch stall cycles by [`StallReason::index`].
    pub switch_stalls: [u64; 5],
    /// Cycles the processor was live.
    pub proc_window: u64,
    /// Cycles the switch was live.
    pub switch_window: u64,
}

impl TileAccount {
    /// Total processor stall cycles (all reasons).
    pub fn proc_stall_total(&self) -> u64 {
        self.proc_stalls.iter().sum()
    }

    /// Total switch stall cycles (all reasons).
    pub fn switch_stall_total(&self) -> u64 {
        self.switch_stalls.iter().sum()
    }

    /// Accumulates `other` into `self` (used to aggregate a tile group).
    pub fn absorb(&mut self, other: &TileAccount) {
        self.issues += other.issues;
        self.routes += other.routes;
        self.controls += other.controls;
        for i in 0..self.proc_stalls.len() {
            self.proc_stalls[i] += other.proc_stalls[i];
            self.switch_stalls[i] += other.switch_stalls[i];
        }
        self.proc_window += other.proc_window;
        self.switch_window += other.switch_window;
    }
}

impl Trace {
    /// Freezes a finished traced machine into a [`Trace`].
    ///
    /// Call after [`Machine::run`]; `report` is the run's report.
    pub fn capture(machine: Machine<RecordingSink>, report: &RunReport) -> Trace {
        let config = machine.config().clone();
        let channels = machine.channel_infos();
        let n = config.n_tiles() as usize;
        let sink = machine.into_sink();
        let mut proc_idle = vec![u64::MAX; n];
        let mut switch_idle = vec![u64::MAX; n];
        for ev in &sink.events {
            if let Event::Idle { cycle, tile, unit } = *ev {
                let slot = match unit {
                    Unit::Proc => &mut proc_idle[tile as usize],
                    Unit::Switch => &mut switch_idle[tile as usize],
                };
                *slot = (*slot).min(cycle);
            }
        }
        Trace {
            config,
            total_cycles: report.cycles,
            channels,
            events: sink.events,
            proc_idle,
            switch_idle,
        }
    }

    /// Number of tiles in the traced machine.
    pub fn n_tiles(&self) -> usize {
        self.config.n_tiles() as usize
    }

    /// The live window (`min(first idle, total_cycles)`) of a tile's unit.
    pub fn window(&self, tile: usize, unit: Unit) -> u64 {
        let idle = match unit {
            Unit::Proc => self.proc_idle[tile],
            Unit::Switch => self.switch_idle[tile],
        };
        idle.min(self.total_cycles)
    }

    /// Derives per-tile accounting (see [`TileAccount`] for the invariant).
    pub fn accounts(&self) -> Vec<TileAccount> {
        let n = self.n_tiles();
        let mut acc = vec![TileAccount::default(); n];
        for (t, a) in acc.iter_mut().enumerate() {
            a.proc_window = self.window(t, Unit::Proc);
            a.switch_window = self.window(t, Unit::Switch);
        }
        for ev in &self.events {
            match *ev {
                Event::Issue { cycle, tile, .. } => {
                    let a = &mut acc[tile as usize];
                    if cycle < a.proc_window {
                        a.issues += 1;
                    }
                }
                Event::Stall {
                    cycle,
                    tile,
                    unit,
                    reason,
                    ..
                } => {
                    let a = &mut acc[tile as usize];
                    match unit {
                        Unit::Proc => {
                            if cycle < a.proc_window {
                                a.proc_stalls[reason.index()] += 1;
                            }
                        }
                        Unit::Switch => {
                            if cycle < a.switch_window {
                                a.switch_stalls[reason.index()] += 1;
                            }
                        }
                    }
                }
                Event::StallSpan {
                    tile,
                    unit,
                    reason,
                    from,
                    to,
                    chaos,
                    ..
                } => {
                    let a = &mut acc[tile as usize];
                    let len = to - from;
                    let stalls = match unit {
                        Unit::Proc => &mut a.proc_stalls,
                        Unit::Switch => &mut a.switch_stalls,
                    };
                    stalls[reason.index()] += len - chaos;
                    stalls[StallReason::Chaos.index()] += chaos;
                }
                Event::Route { cycle, tile, .. } => {
                    let a = &mut acc[tile as usize];
                    if cycle < a.switch_window {
                        a.routes += 1;
                    }
                }
                Event::SwitchControl { cycle, tile, .. } => {
                    let a = &mut acc[tile as usize];
                    if cycle < a.switch_window {
                        a.controls += 1;
                    }
                }
                Event::ChannelCommit { .. } | Event::Idle { .. } | Event::DynActive { .. } => {}
            }
        }
        acc
    }

    /// Commit count per channel (static-network word traffic).
    pub fn channel_commits(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.channels.len()];
        for ev in &self.events {
            if let Event::ChannelCommit { channel, .. } = *ev {
                counts[channel] += 1;
            }
        }
        counts
    }

    /// Cycles on which the dynamic network was active.
    pub fn dyn_active_cycles(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::DynActive { .. }))
            .count() as u64
    }

    /// Aggregates per-tile accounting over each tile group (e.g. the two
    /// partitions of a co-resident run), attributing issues, routes, and
    /// stalls to the program that owns the tile. Tiles outside every group
    /// (faulty tiles of a merged mesh) are ignored.
    pub fn group_accounts(&self, groups: &[Vec<TileId>]) -> Vec<TileAccount> {
        let per_tile = self.accounts();
        groups
            .iter()
            .map(|tiles| {
                let mut sum = TileAccount::default();
                for t in tiles {
                    sum.absorb(&per_tile[t.index()]);
                }
                sum
            })
            .collect()
    }
}

/// A completed traced run: the frozen trace plus the run report.
#[derive(Debug)]
pub struct TraceRun {
    /// The frozen trace.
    pub trace: Trace,
    /// The simulator's run report.
    pub report: RunReport,
}

/// Compiles nothing — runs an already-compiled program with a recording sink
/// attached and freezes the result.
///
/// # Errors
///
/// Propagates simulation errors ([`SimError`]).
pub fn run_traced(compiled: &CompiledProgram, program: &Program) -> Result<TraceRun, SimError> {
    let mut machine = compiled.instantiate_with_sink(program, RecordingSink::new());
    let report = machine.run()?;
    let trace = Trace::capture(machine, &report);
    Ok(TraceRun { trace, report })
}

/// A traced co-resident run: the shared-mesh trace, each program's final
/// state, and per-program accounting aggregated over the tiles it owns.
#[derive(Debug)]
pub struct CoTraceRun {
    /// The frozen trace of the merged mesh.
    pub trace: Trace,
    /// The simulator's run report (shared cycle clock).
    pub report: RunReport,
    /// Each program's final state, in link order.
    pub results: [ExecResult; 2],
    /// Accounting summed over each program's own tiles.
    pub per_program: [TileAccount; 2],
}

/// Runs a co-resident pair with a recording sink attached and attributes the
/// trace to each program by tile ownership.
///
/// # Errors
///
/// Propagates simulation errors ([`SimError`]).
pub fn run_coresident_traced(
    co: &CoResident,
    progs: [&Program; 2],
) -> Result<CoTraceRun, SimError> {
    let mut machine = co.instantiate_with_sink(progs, RecordingSink::new());
    let report = machine.run()?;
    let results = [
        co.parts[0].extract_result(progs[0], &machine),
        co.parts[1].extract_result(progs[1], &machine),
    ];
    let trace = Trace::capture(machine, &report);
    let groups = trace.group_accounts(&[co.tiles_of(0), co.tiles_of(1)]);
    let per_program = [groups[0], groups[1]];
    Ok(CoTraceRun {
        trace,
        report,
        results,
        per_program,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_ir::builder::ProgramBuilder;
    use rawcc::{compile, CompilerOptions};

    fn demo_program() -> Program {
        let mut b = ProgramBuilder::new("demo");
        let out = b.var_i32("out", 0);
        let x = b.const_i32(6);
        let y = b.const_i32(7);
        let p = b.mul(x, y);
        b.write_var(out, p);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn traced_run_matches_untraced_and_accounts_balance() {
        let program = demo_program();
        let config = MachineConfig::square(4);
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
        let (_, plain) = compiled.run(&program).unwrap();
        let run = run_traced(&compiled, &program).unwrap();
        assert_eq!(run.report.cycles, plain.cycles);
        assert_eq!(run.report.stats, plain.stats);
        assert_eq!(run.trace.total_cycles, plain.cycles);
        for (t, a) in run.trace.accounts().iter().enumerate() {
            assert_eq!(
                a.issues + a.proc_stall_total(),
                a.proc_window,
                "tile {t} proc accounting"
            );
            assert_eq!(
                a.routes + a.controls + a.switch_stall_total(),
                a.switch_window,
                "tile {t} switch accounting"
            );
        }
    }

    #[test]
    fn channel_topology_covers_mesh() {
        let program = demo_program();
        let config = MachineConfig::grid(2, 2);
        let compiled = compile(&program, &config, &CompilerOptions::default()).unwrap();
        let run = run_traced(&compiled, &program).unwrap();
        // 2 port channels per tile + 2 directed link channels per mesh edge.
        let n_ports = 2 * 4;
        let n_links = 2 * 4; // 4 undirected edges on a 2x2 mesh
        assert_eq!(run.trace.channels.len(), n_ports + n_links);
    }
}

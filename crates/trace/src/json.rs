//! A minimal JSON parser (recursive descent, no dependencies).
//!
//! Used by the CI trace-smoke stage and the round-trip test to prove the
//! Chrome-trace export is well-formed without pulling in an external JSON
//! crate (the workspace is dependency-free by policy).

/// A JSON syntax error: what the parser expected and where it gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub kind: JsonErrorKind,
    /// Byte offset of the first offending position.
    pub offset: usize,
}

/// The kinds of syntax error the parser reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// A specific punctuation byte was required.
    Expected(char),
    /// A `true`/`false`/`null` keyword was misspelled.
    InvalidLiteral,
    /// Any JSON value was required.
    ExpectedValue,
    /// An object needed `,` or `}` after a member.
    ExpectedCommaOrBrace,
    /// An array needed `,` or `]` after an element.
    ExpectedCommaOrBracket,
    /// A string ran off the end of the input.
    UnterminatedString,
    /// A backslash escape ran off the end of the input.
    UnterminatedEscape,
    /// An unknown backslash escape.
    InvalidEscape,
    /// A raw control character inside a string.
    ControlCharacter,
    /// Invalid UTF-8 inside a string.
    InvalidUtf8,
    /// A malformed or truncated `\uXXXX` escape.
    InvalidUnicodeEscape,
    /// A malformed number token.
    InvalidNumber,
    /// Extra input after the top-level value.
    TrailingData,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use JsonErrorKind::*;
        let what: String = match &self.kind {
            Expected(c) => format!("expected '{c}'"),
            InvalidLiteral => "invalid literal".into(),
            ExpectedValue => "expected a value".into(),
            ExpectedCommaOrBrace => "expected ',' or '}'".into(),
            ExpectedCommaOrBracket => "expected ',' or ']'".into(),
            UnterminatedString => "unterminated string".into(),
            UnterminatedEscape => "unterminated escape".into(),
            InvalidEscape => "invalid escape".into(),
            ControlCharacter => "control character in string".into(),
            InvalidUtf8 => "invalid UTF-8".into(),
            InvalidUnicodeEscape => "invalid \\u escape".into(),
            InvalidNumber => "invalid number".into(),
            TrailingData => "trailing data".into(),
        };
        write!(f, "{what} at byte {}", self.offset)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first syntax error,
/// including trailing garbage after the top-level value.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError {
            kind: JsonErrorKind::TrailingData,
            offset: p.pos,
        });
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, kind: JsonErrorKind) -> Result<T, JsonError> {
        Err(JsonError {
            kind,
            offset: self.pos,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(JsonErrorKind::Expected(b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(JsonErrorKind::InvalidLiteral)
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err(JsonErrorKind::ExpectedValue),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err(JsonErrorKind::ExpectedCommaOrBrace),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err(JsonErrorKind::ExpectedCommaOrBracket),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err(JsonErrorKind::UnterminatedString);
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err(JsonErrorKind::UnterminatedEscape);
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair?
                            let ch = if (0xD800..0xDC00).contains(&cp)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.unwrap_or('\u{FFFD}'));
                        }
                        _ => return self.err(JsonErrorKind::InvalidEscape),
                    }
                }
                0x00..=0x1F => return self.err(JsonErrorKind::ControlCharacter),
                _ => {
                    // Re-consume the full UTF-8 scalar starting at b.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return self.err(JsonErrorKind::InvalidUtf8),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let bad = JsonError {
            kind: JsonErrorKind::InvalidUnicodeEscape,
            offset: self.pos,
        };
        if self.pos + 4 > self.bytes.len() {
            return Err(bad);
        }
        let s =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|_| bad.clone())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| bad)?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII by construction, so UTF-8 decoding can
        // only fail if the scanner logic is wrong; surface that as a syntax
        // error rather than a panic.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(JsonError {
                kind: JsonErrorKind::InvalidNumber,
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x\nA😀"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x\nA😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "01x", "\"abc", "{} junk", "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(Vec::new()));
        assert_eq!(parse(" { } ").unwrap(), Json::Obj(Vec::new()));
    }
}

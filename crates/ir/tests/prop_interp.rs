//! Property tests for the reference interpreter: random arithmetic folds
//! must match host evaluation exactly, and execution must be deterministic.

use raw_ir::builder::ProgramBuilder;
use raw_ir::interp::Interpreter;
use raw_ir::{BinOp, Imm};
use raw_testkit::prelude::*;

raw_testkit::proptest! {
    /// A random chain of overflow-safe integer ops evaluates exactly as on
    /// the host.
    #[test]
    fn interpreter_matches_host_arithmetic(
        vals in vec(any::<i16>(), 1..40),
        ops in vec(0u8..4, 1..40),
    ) {
        let mut b = ProgramBuilder::new("prop-arith");
        let out = b.var_i32("out", 0);
        let mut acc_host: i32 = 1;
        let mut acc = b.const_i32(1);
        for (&v, &o) in vals.iter().zip(ops.iter()) {
            let rhs_host = v as i32;
            let rhs = b.const_i32(rhs_host);
            let op = [BinOp::Add, BinOp::Sub, BinOp::And, BinOp::Xor][o as usize];
            acc_host = match op {
                BinOp::Add => acc_host + rhs_host,
                BinOp::Sub => acc_host - rhs_host,
                BinOp::And => acc_host & rhs_host,
                _ => acc_host ^ rhs_host,
            };
            acc = b.bin(op, acc, rhs);
        }
        b.write_var(out, acc);
        b.halt();
        let p = b.finish().expect("generated program is valid");
        let r = Interpreter::new(&p).run().unwrap();
        prop_assert_eq!(r.vars[0], Imm::I(acc_host));
        // Determinism: a second run reproduces the same state bit-for-bit.
        let r2 = Interpreter::new(&p).run().unwrap();
        prop_assert!(r2.state_eq(&r));
    }
}

//! Structural verification of [`Program`]s.
//!
//! The compiler assumes the invariants checked here; running [`verify`] after
//! any hand construction or transformation catches violations early with a
//! precise error instead of a mis-compile.

use crate::ids::{BlockId, ValueId, VarId};
use crate::inst::{InstKind, Ty, UnOp};
use crate::program::{Program, Terminator};
use std::error::Error;
use std::fmt;

/// A violation of the IR's structural invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A block was never given a terminator (builder-level error).
    UnterminatedBlock {
        /// The offending block.
        block: BlockId,
    },
    /// A value id is outside the program's value table.
    ValueOutOfRange {
        /// The offending value.
        value: ValueId,
        /// Block where it appeared.
        block: BlockId,
    },
    /// A value is defined more than once (single-assignment violation).
    Redefinition {
        /// The value defined twice.
        value: ValueId,
        /// Block of the second definition.
        block: BlockId,
    },
    /// A value is used before (or without) a definition in its block.
    ///
    /// Cross-block uses also produce this error: all inter-block dataflow must
    /// go through variables.
    UseBeforeDef {
        /// The value used.
        value: ValueId,
        /// Block of the use.
        block: BlockId,
    },
    /// Operand or destination type does not match the operator.
    TypeMismatch {
        /// Block of the ill-typed instruction.
        block: BlockId,
        /// Index of the instruction within the block.
        inst: usize,
        /// Human-readable description.
        detail: String,
    },
    /// A block, variable, or array id is out of range.
    BadReference {
        /// Block where the reference appeared.
        block: BlockId,
        /// Description of the dangling reference.
        detail: String,
    },
    /// More than one `WriteVar` to the same variable within one block.
    ///
    /// The renaming performed by initial code transformation guarantees a single
    /// persistent write per variable per block (paper §3.3, footnote 2).
    MultipleVarWrites {
        /// The variable written twice.
        var: VarId,
        /// The offending block.
        block: BlockId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnterminatedBlock { block } => {
                write!(f, "block {block} has no terminator")
            }
            VerifyError::ValueOutOfRange { value, block } => {
                write!(f, "value {value} referenced in {block} is out of range")
            }
            VerifyError::Redefinition { value, block } => {
                write!(f, "value {value} redefined in {block}")
            }
            VerifyError::UseBeforeDef { value, block } => {
                write!(f, "value {value} used in {block} before definition")
            }
            VerifyError::TypeMismatch {
                block,
                inst,
                detail,
            } => write!(f, "type mismatch in {block} instruction {inst}: {detail}"),
            VerifyError::BadReference { block, detail } => {
                write!(f, "dangling reference in {block}: {detail}")
            }
            VerifyError::MultipleVarWrites { var, block } => {
                write!(f, "variable {var} written more than once in {block}")
            }
        }
    }
}

impl Error for VerifyError {}

/// Checks all structural invariants of `program`.
///
/// # Errors
///
/// Returns the first violation found; see [`VerifyError`] for the catalogue.
pub fn verify(program: &Program) -> Result<(), VerifyError> {
    let n_values = program.num_values();
    // Global single-definition tracking.
    let mut defined_in: Vec<Option<BlockId>> = vec![None; n_values];

    if program.entry.index() >= program.blocks.len() {
        return Err(VerifyError::BadReference {
            block: program.entry,
            detail: format!("entry block {} out of range", program.entry),
        });
    }

    for (bid, block) in program.iter_blocks() {
        // Values defined so far in this block, in order.
        let mut local_defs: Vec<bool> = vec![false; n_values];

        let check_use = |v: ValueId, local: &Vec<bool>| -> Result<(), VerifyError> {
            if v.index() >= n_values {
                return Err(VerifyError::ValueOutOfRange {
                    value: v,
                    block: bid,
                });
            }
            if !local[v.index()] {
                return Err(VerifyError::UseBeforeDef {
                    value: v,
                    block: bid,
                });
            }
            Ok(())
        };

        let mut written_vars: Vec<VarId> = Vec::new();

        for (i, inst) in block.insts.iter().enumerate() {
            // Uses first.
            for src in inst.sources() {
                check_use(src, &local_defs)?;
            }
            // Kind-specific checks.
            match &inst.kind {
                InstKind::Const(imm) => {
                    self::expect_dst_ty(program, bid, i, inst.dst, imm.ty())?;
                }
                InstKind::Un(op, src) => {
                    if let Some(want) = op.operand_ty() {
                        expect_ty(program, bid, i, *src, want, "unary operand")?;
                    }
                    let src_ty = program.ty(*src);
                    self::expect_dst_ty(program, bid, i, inst.dst, op.result_ty(src_ty))?;
                    if *op == UnOp::Mov {
                        // mov preserves type
                        self::expect_dst_ty(program, bid, i, inst.dst, src_ty)?;
                    }
                }
                InstKind::Bin(op, lhs, rhs) => {
                    expect_ty(program, bid, i, *lhs, op.operand_ty(), "left operand")?;
                    expect_ty(program, bid, i, *rhs, op.operand_ty(), "right operand")?;
                    self::expect_dst_ty(program, bid, i, inst.dst, op.result_ty())?;
                }
                InstKind::Load { array, index, .. } => {
                    if array.index() >= program.arrays.len() {
                        return Err(VerifyError::BadReference {
                            block: bid,
                            detail: format!("array {array}"),
                        });
                    }
                    expect_ty(program, bid, i, *index, Ty::I32, "load index")?;
                    self::expect_dst_ty(program, bid, i, inst.dst, program.array(*array).ty)?;
                }
                InstKind::Store {
                    array,
                    index,
                    value,
                    ..
                } => {
                    if array.index() >= program.arrays.len() {
                        return Err(VerifyError::BadReference {
                            block: bid,
                            detail: format!("array {array}"),
                        });
                    }
                    expect_ty(program, bid, i, *index, Ty::I32, "store index")?;
                    expect_ty(
                        program,
                        bid,
                        i,
                        *value,
                        program.array(*array).ty,
                        "store value",
                    )?;
                    if inst.dst.is_some() {
                        return Err(VerifyError::TypeMismatch {
                            block: bid,
                            inst: i,
                            detail: "store must not define a value".into(),
                        });
                    }
                }
                InstKind::ReadVar(var) => {
                    if var.index() >= program.vars.len() {
                        return Err(VerifyError::BadReference {
                            block: bid,
                            detail: format!("variable {var}"),
                        });
                    }
                    self::expect_dst_ty(program, bid, i, inst.dst, program.var(*var).ty)?;
                }
                InstKind::WriteVar(var, value) => {
                    if var.index() >= program.vars.len() {
                        return Err(VerifyError::BadReference {
                            block: bid,
                            detail: format!("variable {var}"),
                        });
                    }
                    expect_ty(program, bid, i, *value, program.var(*var).ty, "var write")?;
                    if written_vars.contains(var) {
                        return Err(VerifyError::MultipleVarWrites {
                            var: *var,
                            block: bid,
                        });
                    }
                    written_vars.push(*var);
                    if inst.dst.is_some() {
                        return Err(VerifyError::TypeMismatch {
                            block: bid,
                            inst: i,
                            detail: "write_var must not define a value".into(),
                        });
                    }
                }
            }
            // Definition last.
            if let Some(dst) = inst.dst {
                if dst.index() >= n_values {
                    return Err(VerifyError::ValueOutOfRange {
                        value: dst,
                        block: bid,
                    });
                }
                if defined_in[dst.index()].is_some() {
                    return Err(VerifyError::Redefinition {
                        value: dst,
                        block: bid,
                    });
                }
                defined_in[dst.index()] = Some(bid);
                local_defs[dst.index()] = true;
            }
        }

        // Terminator checks.
        match &block.term {
            Terminator::Jump(t) => {
                if t.index() >= program.blocks.len() {
                    return Err(VerifyError::BadReference {
                        block: bid,
                        detail: format!("jump target {t}"),
                    });
                }
            }
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => {
                check_use(*cond, &local_defs)?;
                if program.ty(*cond) != Ty::I32 {
                    return Err(VerifyError::TypeMismatch {
                        block: bid,
                        inst: block.insts.len(),
                        detail: "branch condition must be i32".into(),
                    });
                }
                for t in [if_true, if_false] {
                    if t.index() >= program.blocks.len() {
                        return Err(VerifyError::BadReference {
                            block: bid,
                            detail: format!("branch target {t}"),
                        });
                    }
                }
            }
            Terminator::Halt => {}
        }
    }
    Ok(())
}

fn expect_ty(
    program: &Program,
    block: BlockId,
    inst: usize,
    v: ValueId,
    want: Ty,
    what: &str,
) -> Result<(), VerifyError> {
    let got = program.ty(v);
    if got != want {
        return Err(VerifyError::TypeMismatch {
            block,
            inst,
            detail: format!("{what} {v}: expected {want}, found {got}"),
        });
    }
    Ok(())
}

fn expect_dst_ty(
    program: &Program,
    block: BlockId,
    inst: usize,
    dst: Option<ValueId>,
    want: Ty,
) -> Result<(), VerifyError> {
    match dst {
        Some(d) => expect_ty(program, block, inst, d, want, "destination"),
        None => Err(VerifyError::TypeMismatch {
            block,
            inst,
            detail: "instruction must define a value".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{BinOp, Imm, Inst};
    use crate::program::Block;

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new("ok");
        let x = b.var_i32("x", 0);
        let v = b.read_var(x);
        let w = b.add(v, v);
        b.write_var(x, w);
        b.halt();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn use_before_def_rejected() {
        // Hand-build a broken program (the builder cannot produce this).
        let program = Program {
            name: "bad".into(),
            vars: vec![],
            arrays: vec![],
            blocks: vec![Block {
                name: "entry".into(),
                insts: vec![Inst::new(
                    Some(ValueId::from_raw(1)),
                    InstKind::Bin(BinOp::Add, ValueId::from_raw(0), ValueId::from_raw(0)),
                )],
                term: Terminator::Halt,
            }],
            entry: BlockId::from_raw(0),
            value_types: vec![Ty::I32, Ty::I32],
            value_names: Default::default(),
        };
        assert!(matches!(
            verify(&program),
            Err(VerifyError::UseBeforeDef { .. })
        ));
    }

    #[test]
    fn cross_block_use_rejected() {
        let program = Program {
            value_types: vec![Ty::I32],
            blocks: vec![
                Block {
                    name: "a".into(),
                    insts: vec![Inst::new(
                        Some(ValueId::from_raw(0)),
                        InstKind::Const(Imm::I(1)),
                    )],
                    term: Terminator::Jump(BlockId::from_raw(1)),
                },
                Block {
                    name: "b".into(),
                    insts: vec![],
                    term: Terminator::Branch {
                        cond: ValueId::from_raw(0),
                        if_true: BlockId::from_raw(0),
                        if_false: BlockId::from_raw(1),
                    },
                },
            ],
            ..Program::default()
        };
        assert!(matches!(
            verify(&program),
            Err(VerifyError::UseBeforeDef { .. })
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let program = Program {
            value_types: vec![Ty::F32, Ty::I32],
            blocks: vec![Block {
                name: "a".into(),
                insts: vec![
                    Inst::new(Some(ValueId::from_raw(0)), InstKind::Const(Imm::F(1.0))),
                    Inst::new(
                        Some(ValueId::from_raw(1)),
                        InstKind::Bin(BinOp::Add, ValueId::from_raw(0), ValueId::from_raw(0)),
                    ),
                ],
                term: Terminator::Halt,
            }],
            ..Program::default()
        };
        assert!(matches!(
            verify(&program),
            Err(VerifyError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn double_var_write_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let x = b.var_i32("x", 0);
        let v = b.const_i32(1);
        b.write_var(x, v);
        b.write_var(x, v);
        b.halt();
        assert!(matches!(
            b.finish(),
            Err(VerifyError::MultipleVarWrites { .. })
        ));
    }

    #[test]
    fn bad_branch_target_rejected() {
        let program = Program {
            blocks: vec![Block {
                name: "a".into(),
                insts: vec![],
                term: Terminator::Jump(BlockId::from_raw(7)),
            }],
            ..Program::default()
        };
        assert!(matches!(
            verify(&program),
            Err(VerifyError::BadReference { .. })
        ));
    }
}

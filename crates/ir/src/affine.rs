//! Affine array-access analysis for *staticizing* memory references (paper §5.3).
//!
//! Under element-wise low-order interleaving across `n` tiles, element `k` of an
//! array lives on tile `k mod n`. A memory access inside a loop satisfies the
//! *static reference property* iff the home tile of the element it touches is the
//! same on every iteration. For an access whose index is an affine function of
//! loop induction variables, the home tile follows a repetitive pattern whose
//! period — the **repetition distance** — is compile-time computable; unrolling
//! the loop by the least common multiple of the distances of all accesses makes
//! every (unrolled) access static.
//!
//! Example from the paper, with 4 tiles:
//! `A[i]` produces home tiles `[0, 1, 2, 3, 0, ...]` (distance 4) and `A[2i]`
//! produces `[0, 2, 0, 2, ...]` (distance 2); unrolling by `lcm(4, 2) = 4`
//! staticizes both.

/// An affine index expression `Σ coeffs[d] · i_d + constant` over the induction
/// variables of the enclosing loop nest (outermost first).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct AffineIndex {
    /// Per-loop-dimension coefficients, outermost loop first. Missing trailing
    /// dimensions are treated as coefficient 0.
    pub coeffs: Vec<i64>,
    /// Constant term.
    pub constant: i64,
}

impl AffineIndex {
    /// Creates an affine index.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        AffineIndex { coeffs, constant }
    }

    /// A constant index (no induction-variable dependence).
    pub fn constant(c: i64) -> Self {
        AffineIndex {
            coeffs: Vec::new(),
            constant: c,
        }
    }

    /// Coefficient for loop dimension `dim` (0 if beyond the recorded depth).
    pub fn coeff(&self, dim: usize) -> i64 {
        self.coeffs.get(dim).copied().unwrap_or(0)
    }

    /// Evaluates the index for concrete induction-variable values.
    pub fn eval(&self, ivs: &[i64]) -> i64 {
        self.coeffs.iter().zip(ivs).map(|(c, i)| c * i).sum::<i64>() + self.constant
    }
}

/// Greatest common divisor.
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple. Returns 0 when either input is 0.
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

/// The repetition distance of an access with stride `stride` (the affine
/// coefficient of the loop's induction variable, times the loop step) under
/// interleaving over `n_tiles` tiles.
///
/// This is the smallest `d > 0` such that `stride · d ≡ 0 (mod n_tiles)`:
/// `d = n_tiles / gcd(stride mod n_tiles, n_tiles)`.
///
/// # Panics
///
/// Panics if `n_tiles == 0`.
pub fn repetition_distance(stride: i64, n_tiles: u32) -> u32 {
    assert!(n_tiles > 0, "machine must have at least one tile");
    let n = n_tiles as u64;
    let s = stride.rem_euclid(n_tiles as i64) as u64;
    if s == 0 {
        1
    } else {
        (n / gcd(s, n)) as u32
    }
}

/// The unroll factor for one loop dimension: the lcm of the repetition
/// distances of all memory-access strides along that dimension.
///
/// Because each distance divides `n_tiles`, the result also divides `n_tiles`,
/// bounding per-dimension code expansion by the machine size (paper §5.3: "the
/// unroll factor per loop dimension is always at most N").
pub fn unroll_factor(strides: impl IntoIterator<Item = i64>, n_tiles: u32) -> u32 {
    let mut factor: u64 = 1;
    for s in strides {
        factor = lcm(factor, repetition_distance(s, n_tiles) as u64);
    }
    factor.max(1) as u32
}

/// The home-tile residue (`index mod n_tiles`) of an affine access at a specific
/// unrolled instance, given the loop lower bounds.
///
/// After unrolling each loop dimension by a multiple of the access's repetition
/// distance, the residue is invariant across iterations, so it can be computed
/// once from the lower bounds and the per-instance offsets.
///
/// `lower_bounds[d]` is the initial induction value of dimension `d` *for this
/// unrolled instance* (i.e. original lower bound plus the instance offset times
/// the step).
pub fn home_residue(index: &AffineIndex, lower_bounds: &[i64], n_tiles: u32) -> u32 {
    let v = index.eval(lower_bounds);
    v.rem_euclid(n_tiles as i64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
    }

    #[test]
    fn paper_example_distances() {
        // Paper §5.3: 4 tiles, A[i] has distance 4; A[2i] has distance 2.
        assert_eq!(repetition_distance(1, 4), 4);
        assert_eq!(repetition_distance(2, 4), 2);
        // Unrolling by lcm(4,2) = 4 staticizes the loop.
        assert_eq!(unroll_factor([1, 2], 4), 4);
    }

    #[test]
    fn distance_divides_n_tiles() {
        for n in [1u32, 2, 4, 8, 16, 32] {
            for stride in -10i64..=10 {
                let d = repetition_distance(stride, n);
                assert_eq!(n % d, 0, "distance {d} must divide {n}");
                // stride * d ≡ 0 (mod n)
                assert_eq!((stride * d as i64).rem_euclid(n as i64), 0);
                // Minimality.
                for smaller in 1..d {
                    assert_ne!(
                        (stride * smaller as i64).rem_euclid(n as i64),
                        0,
                        "distance {d} for stride {stride} over {n} not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn invariant_stride_needs_no_unrolling() {
        assert_eq!(repetition_distance(0, 8), 1);
        assert_eq!(repetition_distance(8, 8), 1);
        assert_eq!(repetition_distance(-8, 8), 1);
    }

    #[test]
    fn negative_strides() {
        // A[100 - i] over 4 tiles: stride -1, pattern period 4.
        assert_eq!(repetition_distance(-1, 4), 4);
        // A[-2i] over 8 tiles: period 4.
        assert_eq!(repetition_distance(-2, 8), 4);
    }

    #[test]
    fn unroll_factor_caps_at_n() {
        for n in [1u32, 2, 4, 8, 16, 32] {
            let f = unroll_factor([1, 2, 3, 5, 7], n);
            assert!(f <= n.max(1));
            assert_eq!(n % f, 0);
        }
    }

    #[test]
    fn home_residue_is_iteration_invariant_after_unroll() {
        // for i in (0..32): access A[3i + 5] on 8 tiles.
        let idx = AffineIndex::new(vec![3], 5);
        let n = 8u32;
        let d = repetition_distance(3, n);
        assert_eq!(d, 8);
        // Instance at offset t has lower bound t; stepping by d keeps residue.
        for t in 0..d as i64 {
            let r0 = home_residue(&idx, &[t], n);
            for k in 0..4 {
                let r = home_residue(&idx, &[t + (k * d as i64)], n);
                assert_eq!(r, r0);
            }
        }
    }

    #[test]
    fn affine_eval() {
        let idx = AffineIndex::new(vec![32, 1], 2); // A[i][j+2] with row width 32
        assert_eq!(idx.eval(&[3, 4]), 32 * 3 + 4 + 2);
        assert_eq!(idx.coeff(5), 0);
        assert_eq!(AffineIndex::constant(9).eval(&[1, 2]), 9);
    }
}

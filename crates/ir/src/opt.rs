//! Local (per-block) optimizations: common-subexpression elimination and
//! dead-code elimination.
//!
//! These are the standard clean-ups any real compiler performs and that the
//! paper's SUIF-based frontend provided; without them, unrolled loop bodies
//! recompute the same address arithmetic once per access, inflating both node
//! counts and critical paths.
//!
//! Both passes are purely block-local (values never cross blocks), preserve
//! single-assignment form, and leave memory operations alone except for
//! removing loads whose results are never used.

use crate::ids::ValueId;
use crate::inst::{BinOp, InstKind};
use crate::program::{Program, Terminator};
use std::collections::HashMap;

/// Runs constant folding, local CSE, and DCE on every block.
pub fn optimize(program: &mut Program) {
    fold_constants(program);
    local_cse(program);
    dce(program);
    debug_assert_eq!(crate::verify::verify(program), Ok(()));
}

/// Folds pure operations over constant operands into constants.
///
/// Integer semantics follow the reference interpreter (wrapping arithmetic,
/// division by zero yields 0); float folding is bit-exact with the simulator
/// because both use the same [`BinOp::eval`]/[`UnOp::eval`](crate::UnOp::eval) reference
/// implementations.
pub fn fold_constants(program: &mut Program) {
    use crate::inst::Imm;
    use std::collections::HashMap;
    for block in &mut program.blocks {
        let mut known: HashMap<ValueId, Imm> = HashMap::new();
        for inst in &mut block.insts {
            let folded: Option<Imm> = match &inst.kind {
                InstKind::Const(imm) => Some(*imm),
                InstKind::Un(op, s) => known.get(s).map(|&v| op.eval(v)),
                InstKind::Bin(op, a, b) => match (known.get(a), known.get(b)) {
                    (Some(&x), Some(&y)) => Some(op.eval(x, y)),
                    _ => None,
                },
                _ => None,
            };
            if let (Some(v), Some(dst)) = (folded, inst.dst) {
                known.insert(dst, v);
                if !matches!(inst.kind, InstKind::Const(_)) {
                    inst.kind = InstKind::Const(v);
                }
            }
        }
    }
}

fn commutative(op: BinOp) -> bool {
    use BinOp::*;
    matches!(
        op,
        Add | Mul | And | Or | Xor | Seq | Sne | AddF | MulF | FEq
    )
}

/// Common-subexpression elimination within each block.
///
/// Pure instructions (`Const`, unary, binary) and `ReadVar` (all reads observe
/// the block-entry value, so duplicates are identical) are deduplicated;
/// memory accesses are left untouched.
pub fn local_cse(program: &mut Program) {
    for block in &mut program.blocks {
        let mut remap: HashMap<ValueId, ValueId> = HashMap::new();
        let mut table: HashMap<Key, ValueId> = HashMap::new();
        let lookup = |remap: &HashMap<ValueId, ValueId>, v: ValueId| -> ValueId {
            remap.get(&v).copied().unwrap_or(v)
        };
        let mut kept = Vec::with_capacity(block.insts.len());
        for mut inst in block.insts.drain(..) {
            // Remap sources through earlier eliminations.
            match &mut inst.kind {
                InstKind::Const(_) | InstKind::ReadVar(_) => {}
                InstKind::Un(_, s) => *s = lookup(&remap, *s),
                InstKind::Bin(_, a, b) => {
                    *a = lookup(&remap, *a);
                    *b = lookup(&remap, *b);
                }
                InstKind::Load { index, .. } => *index = lookup(&remap, *index),
                InstKind::Store { index, value, .. } => {
                    *index = lookup(&remap, *index);
                    *value = lookup(&remap, *value);
                }
                InstKind::WriteVar(_, s) => *s = lookup(&remap, *s),
            }
            // Key for pure instructions.
            let key = match &inst.kind {
                InstKind::Const(imm) => Some(Key::Const(imm.to_bits(), imm.ty() as u8)),
                InstKind::Un(op, s) => Some(Key::Un(*op as u8, *s)),
                InstKind::Bin(op, a, b) => {
                    let (a, b) = if commutative(*op) && b < a {
                        (*b, *a)
                    } else {
                        (*a, *b)
                    };
                    Some(Key::Bin(*op as u8, a, b))
                }
                InstKind::ReadVar(v) => Some(Key::ReadVar(v.index() as u32)),
                _ => None,
            };
            if let (Some(key), Some(dst)) = (key, inst.dst) {
                if let Some(&prior) = table.get(&key) {
                    remap.insert(dst, prior);
                    continue; // drop the duplicate
                }
                table.insert(key, dst);
            }
            kept.push(inst);
        }
        block.insts = kept;
        if let Terminator::Branch { cond, .. } = &mut block.term {
            *cond = lookup(&remap, *cond);
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(u32, u8),
    Un(u8, ValueId),
    Bin(u8, ValueId, ValueId),
    ReadVar(u32),
}

/// Dead-code elimination within each block: drops instructions whose result
/// is never used. Stores and variable writes are roots; dead *loads* are
/// removed as well (a dead load has no architectural effect on the Raw
/// prototype).
pub fn dce(program: &mut Program) {
    let n_values = program.value_types.len();
    for block in &mut program.blocks {
        let mut used = vec![false; n_values];
        if let Terminator::Branch { cond, .. } = &block.term {
            used[cond.index()] = true;
        }
        // Backward sweep: an instruction is live if it has a side effect or
        // its destination is used later.
        let mut live = vec![false; block.insts.len()];
        for (i, inst) in block.insts.iter().enumerate().rev() {
            let side_effect = matches!(inst.kind, InstKind::Store { .. } | InstKind::WriteVar(..));
            let needed = side_effect || inst.dst.map(|d| used[d.index()]).unwrap_or(false);
            if needed {
                live[i] = true;
                for s in inst.sources() {
                    used[s.index()] = true;
                }
            }
        }
        let mut keep = live.into_iter();
        block.insts.retain(|_| keep.next().unwrap());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::MemHome;
    use crate::interp::Interpreter;
    use crate::Ty;

    #[test]
    fn constants_fold_through_chains() {
        let mut b = ProgramBuilder::new("t");
        let out = b.var_i32("out", 0);
        let two = b.const_i32(2);
        let three = b.const_i32(3);
        let six = b.mul(two, three); // foldable
        let twelve = b.add(six, six); // foldable via chain
        b.write_var(out, twelve);
        b.halt();
        let mut p = b.finish().unwrap();
        optimize(&mut p);
        // Only one surviving constant (12) feeds the write after CSE+DCE.
        let survivors: Vec<_> = p.blocks[0].insts.iter().collect();
        assert!(
            survivors
                .iter()
                .any(|i| matches!(i.kind, InstKind::Const(crate::Imm::I(12)))),
            "{survivors:?}"
        );
        assert!(!survivors
            .iter()
            .any(|i| matches!(i.kind, InstKind::Bin(..))));
        let r = Interpreter::new(&p).run().unwrap();
        assert_eq!(r.var_value(out), crate::Imm::I(12));
    }

    #[test]
    fn float_folding_is_bit_exact() {
        let mut b = ProgramBuilder::new("t");
        let out = b.var_f32("out", 0.0);
        let x = b.const_f32(0.1);
        let y = b.const_f32(0.2);
        let s = b.add_f(x, y);
        b.write_var(out, s);
        b.halt();
        let mut p = b.finish().unwrap();
        let unopt = Interpreter::new(&p).run().unwrap();
        optimize(&mut p);
        let opt = Interpreter::new(&p).run().unwrap();
        assert!(opt.state_eq(&unopt));
    }

    #[test]
    fn non_constant_operands_not_folded() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var_i32("x", 7);
        let out = b.var_i32("out", 0);
        let v = b.read_var(x);
        let one = b.const_i32(1);
        let s = b.add(v, one);
        b.write_var(out, s);
        b.halt();
        let mut p = b.finish().unwrap();
        optimize(&mut p);
        assert!(p.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::Bin(BinOp::Add, ..))));
    }

    #[test]
    fn cse_deduplicates_address_arithmetic() {
        let mut b = ProgramBuilder::new("t");
        let out = b.var_i32("out", 0);
        let i = b.var_i32("i", 3);
        let v1 = b.read_var(i);
        let c1 = b.const_i32(32);
        let m1 = b.mul(v1, c1);
        // Duplicate triple: read, const, mul.
        let v2 = b.read_var(i);
        let c2 = b.const_i32(32);
        let m2 = b.mul(v2, c2);
        let s = b.add(m1, m2);
        b.write_var(out, s);
        b.halt();
        let mut p = b.finish().unwrap();
        let before = p.num_insts();
        optimize(&mut p);
        assert_eq!(p.num_insts(), before - 3);
        let r = Interpreter::new(&p).run().unwrap();
        assert_eq!(r.var_value(out), crate::Imm::I(192));
    }

    #[test]
    fn cse_respects_commutativity() {
        let mut b = ProgramBuilder::new("t");
        let out = b.var_i32("out", 0);
        let xv = b.var_i32("xv", 6);
        let yv = b.var_i32("yv", 7);
        let x = b.read_var(xv);
        let y = b.read_var(yv);
        let m1 = b.mul(x, y);
        let m2 = b.mul(y, x); // same product
        let s = b.add(m1, m2);
        b.write_var(out, s);
        b.halt();
        let mut p = b.finish().unwrap();
        optimize(&mut p);
        // One of the muls must be gone.
        let muls = p.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Bin(BinOp::Mul, _, _)))
            .count();
        assert_eq!(muls, 1);
        let r = Interpreter::new(&p).run().unwrap();
        assert_eq!(r.var_value(out), crate::Imm::I(84));
    }

    #[test]
    fn non_commutative_not_merged() {
        let mut b = ProgramBuilder::new("t");
        let out = b.var_i32("out", 0);
        let xv = b.var_i32("xv", 10);
        let yv = b.var_i32("yv", 3);
        let x = b.read_var(xv);
        let y = b.read_var(yv);
        let d1 = b.sub(x, y);
        let d2 = b.sub(y, x);
        let s = b.add(d1, d2);
        b.write_var(out, s);
        b.halt();
        let mut p = b.finish().unwrap();
        optimize(&mut p);
        let subs = p.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Bin(BinOp::Sub, _, _)))
            .count();
        assert_eq!(subs, 2);
    }

    #[test]
    fn loads_never_cse_but_dead_loads_drop() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", Ty::I32, &[4]);
        let i0 = b.const_i32(0);
        let l1 = b.load(a, i0, MemHome::Static(0));
        let one = b.const_i32(1);
        let w = b.add(l1, one);
        b.store(a, i0, w, MemHome::Static(0));
        let _dead = b.load(a, i0, MemHome::Static(0)); // unused
        b.halt();
        let mut p = b.finish().unwrap();
        optimize(&mut p);
        let loads = p.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Load { .. }))
            .count();
        assert_eq!(loads, 1, "{:#?}", p.blocks[0].insts);
    }

    #[test]
    fn branch_condition_stays_live_and_remapped() {
        let mut b = ProgramBuilder::new("t");
        let exit = b.new_block("exit");
        let other = b.new_block("other");
        let x = b.const_i32(1);
        let y1 = b.const_i32(5);
        let y2 = b.const_i32(5); // CSE'd into y1
        let c = b.slt(x, y2);
        let _unused = b.add(y1, y2);
        b.branch(c, exit, other);
        b.switch_to(exit);
        b.halt();
        b.switch_to(other);
        b.halt();
        let mut p = b.finish().unwrap();
        optimize(&mut p);
        let r = Interpreter::new(&p).run().unwrap();
        assert!(r.blocks_executed >= 2);
    }

    #[test]
    fn readvar_duplicates_merge() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var_i32("x", 2);
        let out = b.var_i32("out", 0);
        let r1 = b.read_var(x);
        let r2 = b.read_var(x);
        let s = b.add(r1, r2);
        b.write_var(out, s);
        b.halt();
        let mut p = b.finish().unwrap();
        optimize(&mut p);
        let reads = p.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::ReadVar(_)))
            .count();
        assert_eq!(reads, 1);
        let r = Interpreter::new(&p).run().unwrap();
        assert_eq!(r.var_value(out), crate::Imm::I(4));
    }
}

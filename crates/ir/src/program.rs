//! Programs: declarations, basic blocks, and control flow.

use crate::ids::{ArrayId, BlockId, ValueId, VarId};
use crate::inst::{Imm, Inst, InstKind, Ty};
use std::collections::HashMap;

/// Declaration of a persistent scalar variable.
#[derive(Clone, Debug, PartialEq)]
pub struct VarDecl {
    /// Source-level name (used in diagnostics and pretty-printing).
    pub name: String,
    /// Value type.
    pub ty: Ty,
    /// Initial value before the entry block runs.
    pub init: Imm,
}

/// Declaration of an array object.
///
/// Arrays are addressed by linearized element index; `dims` records the
/// source-level shape for pretty-printing and bounds reasoning.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Source-level dimensions (row-major). Product equals `len()`.
    pub dims: Vec<u32>,
    /// Initial element values. Empty means zero-initialized.
    pub init: Vec<Imm>,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> u32 {
        self.dims.iter().product()
    }

    /// True if the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Initial value of element `index` (zero if no explicit initializer).
    pub fn init_value(&self, index: u32) -> Imm {
        self.init
            .get(index as usize)
            .copied()
            .unwrap_or(match self.ty {
                Ty::I32 => Imm::I(0),
                Ty::F32 => Imm::F(0.0),
            })
    }
}

/// How a basic block transfers control.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on an integer condition value (non-zero takes `if_true`).
    Branch {
        /// Block-local condition value.
        cond: ValueId,
        /// Successor when `cond != 0`.
        if_true: BlockId,
        /// Successor when `cond == 0`.
        if_false: BlockId,
    },
    /// Program termination.
    Halt,
}

impl Terminator {
    /// Successor blocks, in branch order.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match self {
            Terminator::Jump(t) => (Some(*t), None),
            Terminator::Branch {
                if_true, if_false, ..
            } => (Some(*if_true), Some(*if_false)),
            Terminator::Halt => (None, None),
        };
        a.into_iter().chain(b)
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Optional label for diagnostics.
    pub name: String,
    /// Instructions in program order.
    pub insts: Vec<Inst>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

/// A whole program: declarations, blocks, and the entry point.
///
/// Construct with [`ProgramBuilder`](crate::builder::ProgramBuilder); the builder
/// runs [`verify`](crate::verify::verify) so a `Program` obtained from
/// [`finish`](crate::builder::ProgramBuilder::finish) always satisfies the
/// structural invariants documented at the crate root.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// Program name, used in reports.
    pub name: String,
    /// Scalar variable declarations, indexed by [`VarId`].
    pub vars: Vec<VarDecl>,
    /// Array declarations, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Types of all values, indexed by [`ValueId`].
    pub value_types: Vec<Ty>,
    /// Optional debug names for values (e.g. `y_1` in Figure-6 style output).
    pub value_names: HashMap<ValueId, String>,
}

impl Program {
    /// Number of values in the program.
    pub fn num_values(&self) -> usize {
        self.value_types.len()
    }

    /// Type of a value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for this program.
    pub fn ty(&self, v: ValueId) -> Ty {
        self.value_types[v.index()]
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range for this program.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Variable declaration by id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&self, v: VarId) -> &VarDecl {
        &self.vars[v.index()]
    }

    /// Array declaration by id.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn array(&self, a: ArrayId) -> &ArrayDecl {
        &self.arrays[a.index()]
    }

    /// Looks up a variable by source name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId::from_raw(i as u32))
    }

    /// Looks up an array by source name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId::from_raw(i as u32))
    }

    /// Total instruction count across all blocks (excluding terminators).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_raw(i as u32), b))
    }

    /// The debug name of a value if one was recorded, else its id rendering.
    pub fn value_name(&self, v: ValueId) -> String {
        self.value_names
            .get(&v)
            .cloned()
            .unwrap_or_else(|| v.to_string())
    }

    /// Returns, for each block, the set of variables it reads and writes.
    ///
    /// Used by the stitcher and by liveness-style analyses in the compiler.
    pub fn block_var_uses(&self, b: BlockId) -> (Vec<VarId>, Vec<VarId>) {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for inst in &self.block(b).insts {
            match inst.kind {
                InstKind::ReadVar(v) if !reads.contains(&v) => {
                    reads.push(v);
                }
                InstKind::WriteVar(v, _) if !writes.contains(&v) => {
                    writes.push(v);
                }
                _ => {}
            }
        }
        (reads, writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let x = b.var_i32("x", 1);
        let v = b.read_var(x);
        let one = b.const_i32(1);
        let s = b.add(v, one);
        b.write_var(x, s);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let p = tiny();
        assert!(p.var_by_name("x").is_some());
        assert!(p.var_by_name("missing").is_none());
        assert!(p.array_by_name("missing").is_none());
    }

    #[test]
    fn block_var_uses_reports_reads_and_writes() {
        let p = tiny();
        let x = p.var_by_name("x").unwrap();
        let (reads, writes) = p.block_var_uses(p.entry);
        assert_eq!(reads, vec![x]);
        assert_eq!(writes, vec![x]);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: ValueId::from_raw(0),
            if_true: BlockId::from_raw(1),
            if_false: BlockId::from_raw(2),
        };
        let s: Vec<_> = t.successors().collect();
        assert_eq!(s, vec![BlockId::from_raw(1), BlockId::from_raw(2)]);
        assert_eq!(Terminator::Halt.successors().count(), 0);
    }

    #[test]
    fn array_decl_len_and_init() {
        let a = ArrayDecl {
            name: "a".into(),
            ty: Ty::F32,
            dims: vec![4, 8],
            init: vec![Imm::F(2.0)],
        };
        assert_eq!(a.len(), 32);
        assert!(!a.is_empty());
        assert_eq!(a.init_value(0), Imm::F(2.0));
        assert_eq!(a.init_value(5), Imm::F(0.0));
    }
}

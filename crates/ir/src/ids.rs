//! Typed index newtypes for the entities of a [`Program`](crate::Program).
//!
//! Each id is a dense index into the corresponding table of the program it was
//! created for. Ids from different programs must not be mixed; the
//! [`verify`](crate::verify) pass catches out-of-range ids.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Normally ids are minted by [`ProgramBuilder`](crate::builder::ProgramBuilder);
            /// this constructor exists for tables indexed by id in downstream crates.
            pub fn from_raw(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a single-assignment value inside a [`Program`](crate::Program).
    ///
    /// Values are block-local: every use of a `ValueId` must appear after its
    /// definition within the same basic block (paper §3.3: renaming localizes all
    /// intra-block dataflow).
    ValueId,
    "v"
);

define_id!(
    /// Identifies a basic block of a [`Program`](crate::Program).
    BlockId,
    "bb"
);

define_id!(
    /// Identifies a named persistent scalar variable.
    ///
    /// Variables are the only channel for dataflow between basic blocks; each is
    /// assigned a *home tile* by the data partitioner (paper §3.3).
    VarId,
    "var"
);

define_id!(
    /// Identifies a declared array object.
    ///
    /// Arrays are low-order interleaved element-wise across tile memories by
    /// default (paper §5.2).
    ArrayId,
    "arr"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw_index() {
        let v = ValueId::from_raw(17);
        assert_eq!(v.index(), 17);
        assert_eq!(format!("{v}"), "v17");
        assert_eq!(format!("{v:?}"), "v17");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(BlockId::from_raw(1) < BlockId::from_raw(2));
        assert_eq!(VarId::from_raw(3), VarId::from_raw(3));
        assert_ne!(ArrayId::from_raw(3), ArrayId::from_raw(4));
    }
}

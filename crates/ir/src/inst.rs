//! Instructions, operators, immediates, and the Raw-prototype latency model.
//!
//! Operator latencies follow Table 1 of the paper:
//!
//! | Int op | Cycles | Fp op  | Cycles |
//! |--------|--------|--------|--------|
//! | ADD    | 1      | ADDF   | 2      |
//! | SUB    | 1      | SUBF   | 2      |
//! | MUL    | 12     | MULF   | 4      |
//! | DIV    | 35     | DIVF   | 12     |
//!
//! Two documented extensions beyond Table 1 (see `DESIGN.md`): `SqrtF` (needed by
//! cholesky/tomcatv, priced like `DivF` at 12 cycles) and `AbsF` (sign-bit
//! manipulation, 1 cycle). Logic, shift, compare, move, and conversion ops are
//! single-cycle like `ADD`.

use crate::ids::{ArrayId, ValueId, VarId};
use std::fmt;

/// Source position an instruction was lowered from (1-based line and column).
///
/// `SourceSpan::NONE` (line 0) marks compiler-synthesized instructions with no
/// source counterpart. Spans ride along through every transformation — the
/// unroller, renaming, constant folding, CSE, decomposition — so the trace
/// layer can attribute machine cycles back to Mini-C lines. They are metadata
/// only: [`Inst`] equality ignores them (see `DESIGN.md` §10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct SourceSpan {
    /// 1-based source line, or 0 when synthesized.
    pub line: u32,
    /// 1-based source column, or 0 when synthesized.
    pub col: u32,
}

impl SourceSpan {
    /// The "no source position" span (line 0, col 0).
    pub const NONE: SourceSpan = SourceSpan { line: 0, col: 0 };

    /// Creates a span at a 1-based line and column.
    pub fn new(line: u32, col: u32) -> Self {
        SourceSpan { line, col }
    }

    /// True if this span points at real source text.
    pub fn is_some(self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            f.write_str("<none>")
        }
    }
}

/// The two value types of the Raw prototype.
///
/// The prototype has no double-precision floats; the paper converts all FP to
/// single precision (§6), and so do we.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Ty {
    /// 32-bit two's-complement integer.
    #[default]
    I32,
    /// 32-bit IEEE-754 single-precision float.
    F32,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I32 => write!(f, "i32"),
            Ty::F32 => write!(f, "f32"),
        }
    }
}

/// A compile-time immediate: one machine word, integer or float.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Imm {
    /// Integer immediate.
    I(i32),
    /// Single-precision float immediate.
    F(f32),
}

impl Imm {
    /// The type of this immediate.
    pub fn ty(self) -> Ty {
        match self {
            Imm::I(_) => Ty::I32,
            Imm::F(_) => Ty::F32,
        }
    }

    /// Raw 32-bit encoding (floats as IEEE-754 bits), as stored in tile memory.
    pub fn to_bits(self) -> u32 {
        match self {
            Imm::I(v) => v as u32,
            Imm::F(v) => v.to_bits(),
        }
    }

    /// Decodes a raw word under the given type.
    pub fn from_bits(bits: u32, ty: Ty) -> Self {
        match ty {
            Ty::I32 => Imm::I(bits as i32),
            Ty::F32 => Imm::F(f32::from_bits(bits)),
        }
    }

    /// Bit-exact equality (distinguishes NaN payloads, unlike `PartialEq` on `f32`).
    pub fn bits_eq(self, other: Imm) -> bool {
        self.ty() == other.ty() && self.to_bits() == other.to_bits()
    }
}

impl From<i32> for Imm {
    fn from(v: i32) -> Self {
        Imm::I(v)
    }
}

impl From<f32> for Imm {
    fn from(v: f32) -> Self {
        Imm::F(v)
    }
}

impl fmt::Display for Imm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Imm::I(v) => write!(f, "{v}"),
            Imm::F(v) => write!(f, "{v:?}f"),
        }
    }
}

/// Binary operators in three-operand form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    // Integer arithmetic (Table 1).
    /// Integer add, 1 cycle.
    Add,
    /// Integer subtract, 1 cycle.
    Sub,
    /// Integer multiply, 12 cycles.
    Mul,
    /// Integer divide, 35 cycles.
    Div,
    /// Integer remainder, 35 cycles (shares the divider).
    Rem,
    // Bitwise / shifts, 1 cycle.
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left logical (shift amount taken mod 32).
    Shl,
    /// Shift right arithmetic (shift amount taken mod 32).
    Shr,
    /// Shift right logical (shift amount taken mod 32).
    Shru,
    // Integer comparisons, 1 cycle, produce 0/1.
    /// Set if less-than (signed).
    Slt,
    /// Set if less-or-equal (signed).
    Sle,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
    // Floating point (Table 1).
    /// FP add, 2 cycles.
    AddF,
    /// FP subtract, 2 cycles.
    SubF,
    /// FP multiply, 4 cycles.
    MulF,
    /// FP divide, 12 cycles.
    DivF,
    // FP comparisons, 2 cycles (priced like AddF), produce integer 0/1.
    /// Set if FP less-than.
    FLt,
    /// Set if FP less-or-equal.
    FLe,
    /// Set if FP equal.
    FEq,
}

impl BinOp {
    /// Latency in cycles on the Raw prototype (Table 1 plus documented extensions).
    pub fn latency(self) -> u32 {
        use BinOp::*;
        match self {
            Add | Sub | And | Or | Xor | Shl | Shr | Shru | Slt | Sle | Seq | Sne => 1,
            Mul => 12,
            Div | Rem => 35,
            AddF | SubF | FLt | FLe | FEq => 2,
            MulF => 4,
            DivF => 12,
        }
    }

    /// Result type of the operator.
    pub fn result_ty(self) -> Ty {
        use BinOp::*;
        match self {
            AddF | SubF | MulF | DivF => Ty::F32,
            _ => Ty::I32,
        }
    }

    /// Operand type expected by the operator.
    pub fn operand_ty(self) -> Ty {
        use BinOp::*;
        match self {
            AddF | SubF | MulF | DivF | FLt | FLe | FEq => Ty::F32,
            _ => Ty::I32,
        }
    }

    /// Evaluates the operator on two immediates (reference semantics).
    ///
    /// Integer overflow wraps; integer division by zero yields 0 (the simulator
    /// does the same, so golden-model comparisons stay meaningful on degenerate
    /// inputs from property tests).
    pub fn eval(self, a: Imm, b: Imm) -> Imm {
        use BinOp::*;
        match self {
            Add => Imm::I(a.as_i32().wrapping_add(b.as_i32())),
            Sub => Imm::I(a.as_i32().wrapping_sub(b.as_i32())),
            Mul => Imm::I(a.as_i32().wrapping_mul(b.as_i32())),
            Div => {
                let (x, y) = (a.as_i32(), b.as_i32());
                Imm::I(if y == 0 { 0 } else { x.wrapping_div(y) })
            }
            Rem => {
                let (x, y) = (a.as_i32(), b.as_i32());
                Imm::I(if y == 0 { 0 } else { x.wrapping_rem(y) })
            }
            And => Imm::I(a.as_i32() & b.as_i32()),
            Or => Imm::I(a.as_i32() | b.as_i32()),
            Xor => Imm::I(a.as_i32() ^ b.as_i32()),
            Shl => Imm::I(a.as_i32().wrapping_shl(b.as_i32() as u32)),
            Shr => Imm::I(a.as_i32().wrapping_shr(b.as_i32() as u32)),
            Shru => Imm::I(((a.as_i32() as u32).wrapping_shr(b.as_i32() as u32)) as i32),
            Slt => Imm::I((a.as_i32() < b.as_i32()) as i32),
            Sle => Imm::I((a.as_i32() <= b.as_i32()) as i32),
            Seq => Imm::I((a.as_i32() == b.as_i32()) as i32),
            Sne => Imm::I((a.as_i32() != b.as_i32()) as i32),
            AddF => Imm::F(a.as_f32() + b.as_f32()),
            SubF => Imm::F(a.as_f32() - b.as_f32()),
            MulF => Imm::F(a.as_f32() * b.as_f32()),
            DivF => Imm::F(a.as_f32() / b.as_f32()),
            FLt => Imm::I((a.as_f32() < b.as_f32()) as i32),
            FLe => Imm::I((a.as_f32() <= b.as_f32()) as i32),
            FEq => Imm::I((a.as_f32() == b.as_f32()) as i32),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Shru => "shru",
            BinOp::Slt => "slt",
            BinOp::Sle => "sle",
            BinOp::Seq => "seq",
            BinOp::Sne => "sne",
            BinOp::AddF => "add.f",
            BinOp::SubF => "sub.f",
            BinOp::MulF => "mul.f",
            BinOp::DivF => "div.f",
            BinOp::FLt => "lt.f",
            BinOp::FLe => "le.f",
            BinOp::FEq => "eq.f",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negate, 1 cycle.
    Neg,
    /// Bitwise not, 1 cycle.
    Not,
    /// Copy (register move), 1 cycle. Polymorphic over the operand type.
    Mov,
    /// FP negate, 1 cycle (sign-bit flip).
    NegF,
    /// FP absolute value, 1 cycle (sign-bit clear). Documented extension.
    AbsF,
    /// FP square root, 12 cycles (priced like DivF). Documented extension.
    SqrtF,
    /// Convert integer to float, 2 cycles.
    CvtIF,
    /// Convert float to integer (truncate), 2 cycles.
    CvtFI,
}

impl UnOp {
    /// Latency in cycles on the Raw prototype.
    pub fn latency(self) -> u32 {
        use UnOp::*;
        match self {
            Neg | Not | Mov | NegF | AbsF => 1,
            CvtIF | CvtFI => 2,
            SqrtF => 12,
        }
    }

    /// Result type, given the operand type (only `Mov` is polymorphic).
    pub fn result_ty(self, operand: Ty) -> Ty {
        use UnOp::*;
        match self {
            Neg | Not | CvtFI => Ty::I32,
            NegF | AbsF | SqrtF | CvtIF => Ty::F32,
            Mov => operand,
        }
    }

    /// Operand type expected by the operator, or `None` if polymorphic (`Mov`).
    pub fn operand_ty(self) -> Option<Ty> {
        use UnOp::*;
        match self {
            Neg | Not | CvtIF => Some(Ty::I32),
            NegF | AbsF | SqrtF | CvtFI => Some(Ty::F32),
            Mov => None,
        }
    }

    /// Evaluates the operator (reference semantics).
    pub fn eval(self, a: Imm) -> Imm {
        use UnOp::*;
        match self {
            Neg => Imm::I(a.as_i32().wrapping_neg()),
            Not => Imm::I(!a.as_i32()),
            Mov => a,
            NegF => Imm::F(-a.as_f32()),
            AbsF => Imm::F(a.as_f32().abs()),
            SqrtF => Imm::F(a.as_f32().sqrt()),
            CvtIF => Imm::F(a.as_i32() as f32),
            CvtFI => {
                let v = a.as_f32();
                // Saturating truncation matching Rust's `as` cast.
                Imm::I(v as i32)
            }
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Mov => "mov",
            UnOp::NegF => "neg.f",
            UnOp::AbsF => "abs.f",
            UnOp::SqrtF => "sqrt.f",
            UnOp::CvtIF => "cvt.i.f",
            UnOp::CvtFI => "cvt.f.i",
        };
        f.write_str(s)
    }
}

impl Imm {
    fn as_i32(self) -> i32 {
        match self {
            Imm::I(v) => v,
            Imm::F(v) => v as i32,
        }
    }

    fn as_f32(self) -> f32 {
        match self {
            Imm::I(v) => v as f32,
            Imm::F(v) => v,
        }
    }
}

/// Where a memory reference's data lives, as known at compile time (paper §5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MemHome {
    /// The referenced element's home tile is a compile-time constant: the access
    /// can be pinned to that tile and serviced entirely over the static network.
    ///
    /// The payload is the element index *modulo the interleaving width* — i.e. the
    /// residue class that determines the home tile under element-wise low-order
    /// interleaving. The compiler converts it to a concrete tile given the machine
    /// size.
    Static(u32),
    /// The home tile is unknown at compile time: the access goes through the
    /// dynamic (wormhole-routed) network to a remote-memory handler.
    #[default]
    Dynamic,
}

/// The body of an instruction: operation plus source operands.
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    /// Materialize an immediate (assembles to `li`), 1 cycle.
    Const(Imm),
    /// Unary operation.
    Un(UnOp, ValueId),
    /// Binary operation.
    Bin(BinOp, ValueId, ValueId),
    /// Load one element of `array` at the (linearized) element index `index`.
    Load {
        /// Array being read.
        array: ArrayId,
        /// Value holding the linearized element index.
        index: ValueId,
        /// Static/dynamic classification of the element's home tile.
        home: MemHome,
    },
    /// Store `value` into `array` at element index `index`.
    Store {
        /// Array being written.
        array: ArrayId,
        /// Value holding the linearized element index.
        index: ValueId,
        /// Value being stored.
        value: ValueId,
        /// Static/dynamic classification of the element's home tile.
        home: MemHome,
    },
    /// Read the block-entry value of a persistent variable.
    ReadVar(VarId),
    /// Commit a new persistent value for a variable (visible to successor blocks).
    WriteVar(VarId, ValueId),
}

/// A three-operand instruction: optional destination value plus [`InstKind`].
///
/// All kinds except `Store` and `WriteVar` define a destination.
///
/// Equality compares `dst` and `kind` only; the provenance [`span`](Self::span)
/// is metadata and two instructions differing only in span are equal.
#[derive(Clone, Debug)]
pub struct Inst {
    /// Destination value, if the instruction produces one.
    pub dst: Option<ValueId>,
    /// Operation and sources.
    pub kind: InstKind,
    /// Source position this instruction was lowered from (provenance).
    pub span: SourceSpan,
}

impl PartialEq for Inst {
    fn eq(&self, other: &Self) -> bool {
        self.dst == other.dst && self.kind == other.kind
    }
}

impl Inst {
    /// Creates an instruction with no source span ([`SourceSpan::NONE`]).
    pub fn new(dst: Option<ValueId>, kind: InstKind) -> Self {
        Inst {
            dst,
            kind,
            span: SourceSpan::NONE,
        }
    }

    /// Estimated execution latency in cycles, used as the task-graph node cost
    /// (paper §3.3 "nodes are labeled with the estimated costs").
    ///
    /// `mem_latency` is the local cache-hit latency (2 cycles on the prototype).
    /// `ReadVar`/`WriteVar` are costed as a local memory access on the home tile.
    pub fn cost(&self, mem_latency: u32) -> u32 {
        match &self.kind {
            InstKind::Const(_) => 1,
            InstKind::Un(op, _) => op.latency(),
            InstKind::Bin(op, _, _) => op.latency(),
            InstKind::Load { .. } => mem_latency,
            InstKind::Store { .. } => 1,
            InstKind::ReadVar(_) => mem_latency,
            InstKind::WriteVar(_, _) => 1,
        }
    }

    /// Iterates over the source values the instruction uses.
    pub fn sources(&self) -> impl Iterator<Item = ValueId> + '_ {
        let (a, b) = match &self.kind {
            InstKind::Const(_) | InstKind::ReadVar(_) => (None, None),
            InstKind::Un(_, s) => (Some(*s), None),
            InstKind::Bin(_, l, r) => (Some(*l), Some(*r)),
            InstKind::Load { index, .. } => (Some(*index), None),
            InstKind::Store { index, value, .. } => (Some(*index), Some(*value)),
            InstKind::WriteVar(_, s) => (Some(*s), None),
        };
        a.into_iter().chain(b)
    }

    /// True if the instruction touches memory or a persistent variable (and thus
    /// may be pinned to a home tile by the partitioner).
    pub fn is_memory(&self) -> bool {
        matches!(
            self.kind,
            InstKind::Load { .. }
                | InstKind::Store { .. }
                | InstKind::ReadVar(_)
                | InstKind::WriteVar(_, _)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies() {
        // Table 1 of the paper, verbatim.
        assert_eq!(BinOp::Add.latency(), 1);
        assert_eq!(BinOp::Sub.latency(), 1);
        assert_eq!(BinOp::Mul.latency(), 12);
        assert_eq!(BinOp::Div.latency(), 35);
        assert_eq!(BinOp::AddF.latency(), 2);
        assert_eq!(BinOp::SubF.latency(), 2);
        assert_eq!(BinOp::MulF.latency(), 4);
        assert_eq!(BinOp::DivF.latency(), 12);
    }

    #[test]
    fn int_arithmetic_wraps() {
        assert_eq!(
            BinOp::Add.eval(Imm::I(i32::MAX), Imm::I(1)),
            Imm::I(i32::MIN)
        );
        assert_eq!(BinOp::Mul.eval(Imm::I(1 << 20), Imm::I(1 << 20)), Imm::I(0));
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(BinOp::Div.eval(Imm::I(5), Imm::I(0)), Imm::I(0));
        assert_eq!(BinOp::Rem.eval(Imm::I(5), Imm::I(0)), Imm::I(0));
    }

    #[test]
    fn comparisons_produce_zero_one() {
        assert_eq!(BinOp::Slt.eval(Imm::I(1), Imm::I(2)), Imm::I(1));
        assert_eq!(BinOp::Slt.eval(Imm::I(2), Imm::I(1)), Imm::I(0));
        assert_eq!(BinOp::FLe.eval(Imm::F(1.5), Imm::F(1.5)), Imm::I(1));
    }

    #[test]
    fn float_ops_match_ieee() {
        assert_eq!(BinOp::MulF.eval(Imm::F(1.5), Imm::F(2.0)), Imm::F(3.0));
        assert_eq!(UnOp::SqrtF.eval(Imm::F(9.0)), Imm::F(3.0));
        assert_eq!(UnOp::AbsF.eval(Imm::F(-2.5)), Imm::F(2.5));
        assert_eq!(UnOp::CvtIF.eval(Imm::I(7)), Imm::F(7.0));
        assert_eq!(UnOp::CvtFI.eval(Imm::F(7.9)), Imm::I(7));
    }

    #[test]
    fn imm_bits_round_trip() {
        for imm in [Imm::I(-3), Imm::F(1.25), Imm::F(f32::NAN)] {
            let back = Imm::from_bits(imm.to_bits(), imm.ty());
            assert!(imm.bits_eq(back));
        }
    }

    #[test]
    fn sources_enumerates_operands() {
        let i = Inst::new(
            Some(ValueId::from_raw(2)),
            InstKind::Bin(BinOp::Add, ValueId::from_raw(0), ValueId::from_raw(1)),
        );
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![ValueId::from_raw(0), ValueId::from_raw(1)]);
    }

    #[test]
    fn memory_classification() {
        let load = Inst::new(
            Some(ValueId::from_raw(0)),
            InstKind::Load {
                array: ArrayId::from_raw(0),
                index: ValueId::from_raw(1),
                home: MemHome::Dynamic,
            },
        );
        assert!(load.is_memory());
        let add = Inst::new(
            Some(ValueId::from_raw(0)),
            InstKind::Bin(BinOp::Add, ValueId::from_raw(1), ValueId::from_raw(2)),
        );
        assert!(!add.is_memory());
    }
}

//! Reference interpreter — the golden model.
//!
//! Executes a [`Program`] with sequential semantics. Compiled code simulated on
//! the Raw machine must produce bit-identical variable and array contents; the
//! integration and property tests compare against this interpreter.

use crate::ids::{ArrayId, BlockId, ValueId, VarId};
use crate::inst::{Imm, InstKind, Ty};
use crate::program::{Program, Terminator};
use std::error::Error;
use std::fmt;

/// Default cap on executed instructions (guards against runaway loops in tests).
pub const DEFAULT_STEP_LIMIT: u64 = 2_000_000_000;

/// Error produced by interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The instruction budget was exhausted before `halt`.
    StepLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// An array access was out of bounds.
    IndexOutOfBounds {
        /// The array accessed.
        array: ArrayId,
        /// The linearized index used.
        index: i32,
        /// The array length.
        len: u32,
        /// Block of the faulting access.
        block: BlockId,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimitExceeded { limit } => {
                write!(f, "interpreter exceeded step limit of {limit}")
            }
            InterpError::IndexOutOfBounds {
                array,
                index,
                len,
                block,
            } => write!(
                f,
                "index {index} out of bounds for {array} (len {len}) in {block}"
            ),
        }
    }
}

impl Error for InterpError {}

/// Final machine-visible state after a program ran to `halt`.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecResult {
    /// Final variable values, indexed by [`VarId`].
    pub vars: Vec<Imm>,
    /// Final array contents (raw bits), indexed by [`ArrayId`].
    pub arrays: Vec<Vec<u32>>,
    /// Array element types (for decoding), indexed by [`ArrayId`].
    pub array_tys: Vec<Ty>,
    /// Number of basic blocks executed.
    pub blocks_executed: u64,
    /// Number of instructions executed.
    pub insts_executed: u64,
}

impl ExecResult {
    /// Final value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var_value(&self, var: VarId) -> Imm {
        self.vars[var.index()]
    }

    /// Final contents of an array, decoded per its element type.
    ///
    /// # Panics
    ///
    /// Panics if `array` is out of range.
    pub fn array_values(&self, array: ArrayId) -> Vec<Imm> {
        let ty = self.array_tys[array.index()];
        self.arrays[array.index()]
            .iter()
            .map(|&bits| Imm::from_bits(bits, ty))
            .collect()
    }

    /// Bit-exact comparison of the externally visible state (vars + arrays).
    pub fn state_eq(&self, other: &ExecResult) -> bool {
        self.vars.len() == other.vars.len()
            && self
                .vars
                .iter()
                .zip(&other.vars)
                .all(|(a, b)| a.bits_eq(*b))
            && self.arrays == other.arrays
    }
}

/// Interpreter over a borrowed program.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    step_limit: u64,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter with the default step limit.
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Overrides the instruction budget.
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Runs the program to `halt`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] on out-of-bounds array access or if the step
    /// limit is exceeded.
    pub fn run(&self) -> Result<ExecResult, InterpError> {
        let p = self.program;
        let mut vars: Vec<Imm> = p.vars.iter().map(|v| v.init).collect();
        let mut arrays: Vec<Vec<u32>> = p
            .arrays
            .iter()
            .map(|a| (0..a.len()).map(|i| a.init_value(i).to_bits()).collect())
            .collect();
        // Value slots are program-global (single assignment), reused across block
        // executions; block-locality of uses makes that safe.
        let mut values: Vec<Imm> = vec![Imm::I(0); p.num_values()];

        let mut blocks_executed = 0u64;
        let mut insts_executed = 0u64;
        let mut current = p.entry;
        loop {
            blocks_executed += 1;
            let block = p.block(current);
            // Variable writes take effect at block end (paper model: persistent
            // value is updated at the home tile at the end of the basic block).
            let mut pending_writes: Vec<(VarId, Imm)> = Vec::new();
            for inst in &block.insts {
                insts_executed += 1;
                if insts_executed > self.step_limit {
                    return Err(InterpError::StepLimitExceeded {
                        limit: self.step_limit,
                    });
                }
                match &inst.kind {
                    InstKind::Const(imm) => set(&mut values, inst.dst, *imm),
                    InstKind::Un(op, s) => {
                        let v = op.eval(values[s.index()]);
                        set(&mut values, inst.dst, v);
                    }
                    InstKind::Bin(op, a, b) => {
                        let v = op.eval(values[a.index()], values[b.index()]);
                        set(&mut values, inst.dst, v);
                    }
                    InstKind::Load { array, index, .. } => {
                        let idx = as_index(values[index.index()]);
                        let decl = p.array(*array);
                        let storage = &arrays[array.index()];
                        let bits = *storage.get(idx.max(0) as usize).ok_or(
                            InterpError::IndexOutOfBounds {
                                array: *array,
                                index: idx,
                                len: decl.len(),
                                block: current,
                            },
                        )?;
                        if idx < 0 {
                            return Err(InterpError::IndexOutOfBounds {
                                array: *array,
                                index: idx,
                                len: decl.len(),
                                block: current,
                            });
                        }
                        set(&mut values, inst.dst, Imm::from_bits(bits, decl.ty));
                    }
                    InstKind::Store {
                        array,
                        index,
                        value,
                        ..
                    } => {
                        let idx = as_index(values[index.index()]);
                        let len = p.array(*array).len();
                        if idx < 0 || idx as u32 >= len {
                            return Err(InterpError::IndexOutOfBounds {
                                array: *array,
                                index: idx,
                                len,
                                block: current,
                            });
                        }
                        arrays[array.index()][idx as usize] = values[value.index()].to_bits();
                    }
                    InstKind::ReadVar(var) => {
                        set(&mut values, inst.dst, vars[var.index()]);
                    }
                    InstKind::WriteVar(var, value) => {
                        pending_writes.push((*var, values[value.index()]));
                    }
                }
            }
            for (var, v) in pending_writes {
                vars[var.index()] = v;
            }
            current = match block.term {
                Terminator::Jump(t) => t,
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    let c = match values[cond.index()] {
                        Imm::I(v) => v,
                        Imm::F(v) => (v != 0.0) as i32,
                    };
                    if c != 0 {
                        if_true
                    } else {
                        if_false
                    }
                }
                Terminator::Halt => {
                    return Ok(ExecResult {
                        vars,
                        arrays,
                        array_tys: p.arrays.iter().map(|a| a.ty).collect(),
                        blocks_executed,
                        insts_executed,
                    })
                }
            };
        }
    }
}

fn set(values: &mut [Imm], dst: Option<ValueId>, v: Imm) {
    if let Some(d) = dst {
        values[d.index()] = v;
    }
}

fn as_index(v: Imm) -> i32 {
    match v {
        Imm::I(i) => i,
        Imm::F(f) => f as i32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::MemHome;

    #[test]
    fn straight_line_arithmetic() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var_i32("x", 0);
        let three = b.const_i32(3);
        let four = b.const_i32(4);
        let s = b.add(three, four);
        let p2 = b.mul(s, s);
        b.write_var(x, p2);
        b.halt();
        let program = b.finish().unwrap();
        let r = Interpreter::new(&program).run().unwrap();
        assert_eq!(r.var_value(x), Imm::I(49));
    }

    #[test]
    fn loop_sums_array() {
        // sum = Σ a[i] for i in 0..8, with a[i] = i initialized host-side.
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", Ty::I32, &[8]);
        b.set_array_init(a, (0..8).map(Imm::I).collect());
        let i = b.var_i32("i", 0);
        let sum = b.var_i32("sum", 0);
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        b.jump(body);
        b.switch_to(body);
        let vi = b.read_var(i);
        let vs = b.read_var(sum);
        let elem = b.load(a, vi, MemHome::Dynamic);
        let ns = b.add(vs, elem);
        let one = b.const_i32(1);
        let ni = b.add(vi, one);
        b.write_var(sum, ns);
        b.write_var(i, ni);
        let eight = b.const_i32(8);
        let c = b.slt(ni, eight);
        b.branch(c, body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish().unwrap();
        let r = Interpreter::new(&program).run().unwrap();
        assert_eq!(r.var_value(sum), Imm::I(28));
        assert_eq!(r.blocks_executed, 1 + 8 + 1);
    }

    #[test]
    fn float_array_store() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", Ty::F32, &[4]);
        let idx = b.const_i32(2);
        let v = b.const_f32(2.5);
        let w = b.mul_f(v, v);
        b.store(a, idx, w, MemHome::Dynamic);
        b.halt();
        let program = b.finish().unwrap();
        let arr_id = program.array_by_name("a").unwrap();
        let r = Interpreter::new(&program).run().unwrap();
        assert_eq!(r.array_values(arr_id)[2], Imm::F(6.25));
        assert_eq!(r.array_values(arr_id)[0], Imm::F(0.0));
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", Ty::I32, &[2]);
        let idx = b.const_i32(5);
        let _ = b.load(a, idx, MemHome::Dynamic);
        b.halt();
        let program = b.finish().unwrap();
        assert!(matches!(
            Interpreter::new(&program).run(),
            Err(InterpError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut b = ProgramBuilder::new("t");
        let body = b.new_block("body");
        b.jump(body);
        b.switch_to(body);
        b.jump(body);
        // Body has no instructions; add one so steps accumulate.
        let program = {
            let mut b2 = ProgramBuilder::new("t");
            let body = b2.new_block("body");
            b2.jump(body);
            b2.switch_to(body);
            let _ = b2.const_i32(1);
            b2.jump(body);
            b2.finish().unwrap()
        };
        assert!(matches!(
            Interpreter::new(&program).step_limit(1000).run(),
            Err(InterpError::StepLimitExceeded { .. })
        ));
    }

    #[test]
    fn var_writes_commit_at_block_end() {
        // Within a block, ReadVar observes the entry value even after WriteVar.
        let mut b = ProgramBuilder::new("t");
        let x = b.var_i32("x", 10);
        let y = b.var_i32("y", 0);
        let v1 = b.read_var(x);
        let one = b.const_i32(1);
        let nx = b.add(v1, one);
        b.write_var(x, nx);
        let v2 = b.read_var(x); // still 10: entry value
        b.write_var(y, v2);
        b.halt();
        let program = b.finish().unwrap();
        let r = Interpreter::new(&program).run().unwrap();
        assert_eq!(r.var_value(x), Imm::I(11));
        assert_eq!(r.var_value(y), Imm::I(10));
    }
}

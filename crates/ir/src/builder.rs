//! Ergonomic construction of [`Program`]s.
//!
//! The builder mints fresh [`ValueId`]s for every emitted instruction, so
//! programs it produces are single-assignment by construction. [`finish`]
//! additionally runs the [`verify`] pass, so a successfully built
//! program satisfies every structural invariant the compiler relies on.
//!
//! [`finish`]: ProgramBuilder::finish

use crate::ids::{ArrayId, BlockId, ValueId, VarId};
use crate::inst::{BinOp, Imm, Inst, InstKind, MemHome, SourceSpan, Ty, UnOp};
use crate::program::{ArrayDecl, Block, Program, Terminator, VarDecl};
use crate::verify::{self, VerifyError};
use std::collections::HashMap;

/// Incremental builder for [`Program`]s.
///
/// See the crate-level docs for a complete example.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    vars: Vec<VarDecl>,
    arrays: Vec<ArrayDecl>,
    blocks: Vec<PendingBlock>,
    current: BlockId,
    value_types: Vec<Ty>,
    value_names: HashMap<ValueId, String>,
    span: SourceSpan,
}

#[derive(Debug)]
struct PendingBlock {
    name: String,
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

impl ProgramBuilder {
    /// Creates a builder with a single (entry) block selected for emission.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            vars: Vec::new(),
            arrays: Vec::new(),
            blocks: vec![PendingBlock {
                name: "entry".into(),
                insts: Vec::new(),
                term: None,
            }],
            current: BlockId::from_raw(0),
            value_types: Vec::new(),
            value_names: HashMap::new(),
            span: SourceSpan::NONE,
        }
    }

    /// Sets the source span stamped on subsequently emitted instructions.
    ///
    /// Frontends call this as they walk the AST; instructions emitted before
    /// the first call carry [`SourceSpan::NONE`].
    pub fn set_span(&mut self, span: SourceSpan) {
        self.span = span;
    }

    /// The span currently stamped on emitted instructions.
    pub fn current_span(&self) -> SourceSpan {
        self.span
    }

    /// The entry block id (always `bb0`).
    pub fn entry(&self) -> BlockId {
        BlockId::from_raw(0)
    }

    /// The block currently selected for emission.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Declares a persistent integer variable.
    pub fn var_i32(&mut self, name: impl Into<String>, init: i32) -> VarId {
        self.declare_var(name, Ty::I32, Imm::I(init))
    }

    /// Declares a persistent float variable.
    pub fn var_f32(&mut self, name: impl Into<String>, init: f32) -> VarId {
        self.declare_var(name, Ty::F32, Imm::F(init))
    }

    /// Declares a persistent variable with explicit type and initial value.
    pub fn declare_var(&mut self, name: impl Into<String>, ty: Ty, init: Imm) -> VarId {
        let id = VarId::from_raw(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.into(),
            ty,
            init,
        });
        id
    }

    /// Declares a zero-initialized array with the given shape (row-major).
    pub fn array(&mut self, name: impl Into<String>, ty: Ty, dims: &[u32]) -> ArrayId {
        let id = ArrayId::from_raw(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            name: name.into(),
            ty,
            dims: dims.to_vec(),
            init: Vec::new(),
        });
        id
    }

    /// Sets explicit initial contents for an array.
    ///
    /// # Panics
    ///
    /// Panics if `values` is longer than the array.
    pub fn set_array_init(&mut self, array: ArrayId, values: Vec<Imm>) {
        let decl = &mut self.arrays[array.index()];
        assert!(
            values.len() <= decl.len() as usize,
            "initializer longer than array {}",
            decl.name
        );
        decl.init = values;
    }

    /// Creates a new, empty block (does not switch to it).
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::from_raw(self.blocks.len() as u32);
        self.blocks.push(PendingBlock {
            name: name.into(),
            insts: Vec::new(),
            term: None,
        });
        id
    }

    /// Selects the block that subsequent emissions append to.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.blocks[block.index()].term.is_none(),
            "block {} already terminated",
            block
        );
        self.current = block;
    }

    fn fresh(&mut self, ty: Ty) -> ValueId {
        let id = ValueId::from_raw(self.value_types.len() as u32);
        self.value_types.push(ty);
        id
    }

    fn push(&mut self, mut inst: Inst) {
        inst.span = self.span;
        let cur = &mut self.blocks[self.current.index()];
        assert!(cur.term.is_none(), "emitting into terminated block");
        cur.insts.push(inst);
    }

    /// Records a debug name for a value (shows up in pretty-printed IR).
    pub fn name_value(&mut self, v: ValueId, name: impl Into<String>) {
        self.value_names.insert(v, name.into());
    }

    /// Emits `li` of an immediate.
    pub fn const_imm(&mut self, imm: Imm) -> ValueId {
        let dst = self.fresh(imm.ty());
        self.push(Inst::new(Some(dst), InstKind::Const(imm)));
        dst
    }

    /// Emits an integer constant.
    pub fn const_i32(&mut self, v: i32) -> ValueId {
        self.const_imm(Imm::I(v))
    }

    /// Emits a float constant.
    pub fn const_f32(&mut self, v: f32) -> ValueId {
        self.const_imm(Imm::F(v))
    }

    /// Emits a unary operation.
    pub fn un(&mut self, op: UnOp, src: ValueId) -> ValueId {
        let src_ty = self.value_types[src.index()];
        let dst = self.fresh(op.result_ty(src_ty));
        self.push(Inst::new(Some(dst), InstKind::Un(op, src)));
        dst
    }

    /// Emits a binary operation.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let dst = self.fresh(op.result_ty());
        self.push(Inst::new(Some(dst), InstKind::Bin(op, lhs, rhs)));
        dst
    }

    /// Emits an array load. `home` classifies the access per paper §5.1.
    pub fn load(&mut self, array: ArrayId, index: ValueId, home: MemHome) -> ValueId {
        let ty = self.arrays[array.index()].ty;
        let dst = self.fresh(ty);
        self.push(Inst::new(Some(dst), InstKind::Load { array, index, home }));
        dst
    }

    /// Emits an array store.
    pub fn store(&mut self, array: ArrayId, index: ValueId, value: ValueId, home: MemHome) {
        self.push(Inst::new(
            None,
            InstKind::Store {
                array,
                index,
                value,
                home,
            },
        ));
    }

    /// Emits a read of a persistent variable's block-entry value.
    pub fn read_var(&mut self, var: VarId) -> ValueId {
        let ty = self.vars[var.index()].ty;
        let dst = self.fresh(ty);
        self.push(Inst::new(Some(dst), InstKind::ReadVar(var)));
        dst
    }

    /// Emits a persistent write of `value` to `var`.
    pub fn write_var(&mut self, var: VarId, value: ValueId) {
        self.push(Inst::new(None, InstKind::WriteVar(var, value)));
    }

    fn terminate(&mut self, term: Terminator) {
        let cur = &mut self.blocks[self.current.index()];
        assert!(
            cur.term.is_none(),
            "block {} already terminated",
            self.current
        );
        cur.term = Some(term);
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: ValueId, if_true: BlockId, if_false: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            if_true,
            if_false,
        });
    }

    /// Terminates the current block with program halt.
    pub fn halt(&mut self) {
        self.terminate(Terminator::Halt);
    }

    /// Finishes and verifies the program.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] if any block is unterminated or the program
    /// violates a structural invariant (see [`verify`](crate::verify::verify)).
    pub fn finish(self) -> Result<Program, VerifyError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, pb) in self.blocks.into_iter().enumerate() {
            let term = pb.term.ok_or(VerifyError::UnterminatedBlock {
                block: BlockId::from_raw(i as u32),
            })?;
            blocks.push(Block {
                name: pb.name,
                insts: pb.insts,
                term,
            });
        }
        let program = Program {
            name: self.name,
            vars: self.vars,
            arrays: self.arrays,
            blocks,
            entry: BlockId::from_raw(0),
            value_types: self.value_types,
            value_names: self.value_names,
        };
        verify::verify(&program)?;
        Ok(program)
    }
}

// Arithmetic sugar: thin wrappers over `bin`/`un` for the common operators.
macro_rules! sugar_bin {
    ($($(#[$doc:meta])* $fn_name:ident => $op:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$doc])*
                pub fn $fn_name(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
                    self.bin(BinOp::$op, lhs, rhs)
                }
            )*
        }
    };
}

sugar_bin! {
    /// Emits an integer add.
    add => Add,
    /// Emits an integer subtract.
    sub => Sub,
    /// Emits an integer multiply.
    mul => Mul,
    /// Emits an integer divide.
    div => Div,
    /// Emits an FP add.
    add_f => AddF,
    /// Emits an FP subtract.
    sub_f => SubF,
    /// Emits an FP multiply.
    mul_f => MulF,
    /// Emits an FP divide.
    div_f => DivF,
    /// Emits a signed less-than compare.
    slt => Slt,
    /// Emits an equality compare.
    seq => Seq,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unterminated_block_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        let _ = b.const_i32(1);
        assert!(matches!(
            b.finish(),
            Err(VerifyError::UnterminatedBlock { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emitting_into_terminated_block_panics() {
        let mut b = ProgramBuilder::new("t");
        b.halt();
        b.const_i32(1);
    }

    #[test]
    fn multi_block_program_builds() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var_i32("x", 0);
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        let v = b.read_var(x);
        let ten = b.const_i32(10);
        let c = b.slt(v, ten);
        b.branch(c, body, exit);
        b.switch_to(body);
        let v2 = b.read_var(x);
        let one = b.const_i32(1);
        let s = b.add(v2, one);
        b.write_var(x, s);
        b.jump(exit);
        b.switch_to(exit);
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.blocks.len(), 3);
    }

    #[test]
    fn value_types_follow_operators() {
        let mut b = ProgramBuilder::new("t");
        let f = b.const_f32(1.0);
        let i = b.const_i32(1);
        let fi = b.un(UnOp::CvtIF, i);
        let s = b.add_f(f, fi);
        let c = b.bin(BinOp::FLt, s, f);
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.ty(s), Ty::F32);
        assert_eq!(p.ty(c), Ty::I32);
    }

    #[test]
    fn array_init_and_load_store() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", Ty::I32, &[4]);
        b.set_array_init(a, vec![Imm::I(5), Imm::I(6)]);
        let idx = b.const_i32(1);
        let v = b.load(a, idx, MemHome::Static(1));
        let idx2 = b.const_i32(2);
        b.store(a, idx2, v, MemHome::Dynamic);
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.array(a).init_value(1), Imm::I(6));
        assert_eq!(p.num_insts(), 4);
    }
}

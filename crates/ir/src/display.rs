//! Human-readable rendering of programs, blocks, and instructions.
//!
//! Instructions render in a Figure-6-like style, e.g. `y_1 = add a, b` or
//! `store A[v3] = v7`. Values render by debug name when one was recorded.

use crate::inst::{Inst, InstKind, MemHome};
use crate::program::{Program, Terminator};
use std::fmt;

impl Program {
    /// Renders one instruction using this program's value names.
    pub fn fmt_inst(&self, inst: &Inst) -> String {
        let v = |id| self.value_name(id);
        let body = match &inst.kind {
            InstKind::Const(imm) => format!("li {imm}"),
            InstKind::Un(op, s) => format!("{op} {}", v(*s)),
            InstKind::Bin(op, a, b) => format!("{op} {}, {}", v(*a), v(*b)),
            InstKind::Load { array, index, home } => format!(
                "load {}[{}]{}",
                self.array(*array).name,
                v(*index),
                fmt_home(*home)
            ),
            InstKind::Store {
                array,
                index,
                value,
                home,
            } => {
                return format!(
                    "store {}[{}]{} = {}",
                    self.array(*array).name,
                    v(*index),
                    fmt_home(*home),
                    v(*value)
                )
            }
            InstKind::ReadVar(var) => format!("read {}", self.var(*var).name),
            InstKind::WriteVar(var, s) => {
                return format!("write {} = {}", self.var(*var).name, v(*s))
            }
        };
        match inst.dst {
            Some(d) => format!("{} = {}", v(d), body),
            None => body,
        }
    }
}

fn fmt_home(home: MemHome) -> String {
    match home {
        MemHome::Static(r) => format!(" @{r}"),
        MemHome::Dynamic => " @dyn".to_string(),
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} {{", self.name)?;
        for var in &self.vars {
            writeln!(f, "  var {}: {} = {}", var.name, var.ty, var.init)?;
        }
        for arr in &self.arrays {
            let dims: Vec<String> = arr.dims.iter().map(|d| d.to_string()).collect();
            writeln!(f, "  array {}: {}[{}]", arr.name, arr.ty, dims.join("]["))?;
        }
        for (bid, block) in self.iter_blocks() {
            let marker = if bid == self.entry { " (entry)" } else { "" };
            writeln!(f, "  {bid} '{}'{}:", block.name, marker)?;
            for inst in &block.insts {
                writeln!(f, "    {}", self.fmt_inst(inst))?;
            }
            match &block.term {
                Terminator::Jump(t) => writeln!(f, "    jump {t}")?,
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => writeln!(
                    f,
                    "    branch {} ? {if_true} : {if_false}",
                    self.value_name(*cond)
                )?,
                Terminator::Halt => writeln!(f, "    halt")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::inst::MemHome;
    use crate::Ty;

    #[test]
    fn renders_named_values_and_all_inst_kinds() {
        let mut b = ProgramBuilder::new("demo");
        let x = b.var_i32("x", 1);
        let a = b.array("A", Ty::I32, &[8]);
        let vx = b.read_var(x);
        b.name_value(vx, "x_0");
        let s = b.add(vx, vx);
        b.name_value(s, "x_1");
        let elem = b.load(a, s, MemHome::Static(0));
        b.store(a, vx, elem, MemHome::Dynamic);
        b.write_var(x, s);
        b.halt();
        let p = b.finish().unwrap();
        let text = p.to_string();
        assert!(text.contains("x_1 = add x_0, x_0"), "got:\n{text}");
        assert!(text.contains("load A[x_1] @0"), "got:\n{text}");
        assert!(text.contains("store A[x_0] @dyn"), "got:\n{text}");
        assert!(text.contains("write x = x_1"), "got:\n{text}");
        assert!(text.contains("halt"), "got:\n{text}");
    }

    #[test]
    fn renders_branches() {
        let mut b = ProgramBuilder::new("demo");
        let t = b.new_block("t");
        let c = b.const_i32(1);
        b.branch(c, t, t);
        b.switch_to(t);
        b.halt();
        let p = b.finish().unwrap();
        assert!(p.to_string().contains("branch v0 ? bb1 : bb1"));
    }
}

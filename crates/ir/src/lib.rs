//! Three-operand intermediate representation for the RAWCC reproduction.
//!
//! This crate provides the program representation consumed by the space-time
//! scheduling compiler in the `rawcc` crate (the reproduction of the ASPLOS 1998
//! paper *Space-Time Scheduling of Instruction-Level Parallelism on a Raw Machine*).
//! The representation mirrors the form RAWCC operated on after its *initial code
//! transformation* phase (paper §3.3):
//!
//! * Every instruction is in **three-operand form** ([`Inst`]): one destination
//!   value and at most two source values.
//! * Within a basic block, values are **single assignment**: each [`ValueId`] is
//!   defined exactly once and every use is dominated by its definition inside the
//!   same block. This removes anti- and output-dependences, exposing the
//!   parallelism the orchestrater distributes over tiles.
//! * All **cross-block communication is through named program variables**
//!   ([`VarId`]): a block reads the entry value of a variable with
//!   [`InstKind::ReadVar`] and commits a new persistent value with
//!   [`InstKind::WriteVar`]. This matches the paper's access model in which every
//!   variable has a *home tile* and basic-block *stitch code* moves values between
//!   home tiles and use sites.
//! * Array accesses ([`InstKind::Load`]/[`InstKind::Store`]) carry a [`MemHome`]
//!   annotation telling the compiler whether the referenced element's home tile is
//!   a compile-time constant (serviceable over the *static* network) or must go
//!   over the *dynamic* network (paper §5.1).
//!
//! The crate also contains:
//!
//! * a [`builder::ProgramBuilder`] for constructing programs by hand,
//! * a [`verify`] pass enforcing the structural invariants above,
//! * a reference [`interp`] interpreter used as the golden model when checking
//!   that compiled, simulated programs compute the right answer, and
//! * the [`affine`] module implementing the paper's §5.3 repetition-distance and
//!   unroll-factor analysis for staticizing affine array accesses.
//!
//! # Example
//!
//! Build and run the program from Figure 6 of the paper
//! (`y = a + b; z = a * a; x = y * a * 5; y = y * b * 6`):
//!
//! ```
//! use raw_ir::builder::ProgramBuilder;
//! use raw_ir::{interp::Interpreter, Imm};
//!
//! let mut b = ProgramBuilder::new("figure6");
//! let a = b.var_i32("a", 3);
//! let bb = b.var_i32("b", 4);
//! let x = b.var_i32("x", 0);
//! let y = b.var_i32("y", 0);
//! let z = b.var_i32("z", 0);
//!
//! let va = b.read_var(a);
//! let vb = b.read_var(bb);
//! let y1 = b.add(va, vb);
//! let z1 = b.mul(va, va);
//! let t1 = b.mul(y1, va);
//! let five = b.const_i32(5);
//! let x1 = b.mul(t1, five);
//! let t2 = b.mul(y1, vb);
//! let six = b.const_i32(6);
//! let y2 = b.mul(t2, six);
//! b.write_var(z, z1);
//! b.write_var(x, x1);
//! b.write_var(y, y2);
//! b.halt();
//!
//! let program = b.finish().expect("valid program");
//! let result = Interpreter::new(&program).run().expect("runs to completion");
//! assert_eq!(result.var_value(x), Imm::I(105)); // (3+4)*3*5
//! assert_eq!(result.var_value(y), Imm::I(168)); // (3+4)*4*6
//! assert_eq!(result.var_value(z), Imm::I(9));
//! ```

pub mod affine;
pub mod builder;
pub mod display;
pub mod ids;
pub mod inst;
pub mod interp;
pub mod opt;
pub mod program;
pub mod verify;

pub use ids::{ArrayId, BlockId, ValueId, VarId};
pub use inst::{BinOp, Imm, Inst, InstKind, MemHome, SourceSpan, Ty, UnOp};
pub use program::{ArrayDecl, Block, Program, Terminator, VarDecl};

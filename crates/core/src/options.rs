//! Compiler options, including the ablation switches benchmarked in
//! `EXPERIMENTS.md`.

/// Priority scheme used by the event scheduler (paper §4.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PriorityScheme {
    /// Weighted sum of *level* (longest distance to an exit node) and
    /// *fertility* (number of descendant tasks) — the paper's scheme.
    #[default]
    LevelFertility,
    /// Level only (ablation).
    LevelOnly,
    /// Source order: among ready tasks, the earliest program-order instruction
    /// issues first. Overlaps latencies while keeping live ranges close to the
    /// source program's — the behaviour of a conventional sequential compiler,
    /// used by the baseline.
    SourceOrder,
}

/// How the placement phase maps partitions onto physical tiles (paper §4.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlacementAlgorithm {
    /// Greedy improving swaps (the paper's implemented algorithm).
    #[default]
    GreedySwap,
    /// Simulated annealing over swaps (the paper's suggested replacement:
    /// "this greedy algorithm can be replaced by one with simulated annealing
    /// for better performance").
    Annealing {
        /// Deterministic seed for the annealing schedule.
        seed: u64,
    },
    /// Identity placement (ablation: no optimization at all).
    None,
}

/// Knobs controlling the orchestrater. Defaults match the paper's compiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompilerOptions {
    /// Run Dominant-Sequence-style clustering before merging (paper §4.1).
    /// When off, every instruction starts in its own cluster (ablation).
    pub clustering: bool,
    /// Placement algorithm (paper §4.1 "placement").
    pub placement: PlacementAlgorithm,
    /// Improve placement with greedy swaps minimising communication hops.
    /// Deprecated alias retained for ablation scripts: when `false`, overrides
    /// `placement` to [`PlacementAlgorithm::None`].
    pub placement_swap: bool,
    /// Event-scheduler priority scheme.
    pub priority: PriorityScheme,
    /// Assumed latency of one cross-tile word transfer during clustering
    /// (the idealized uniform-latency switch of paper §4.1).
    pub cluster_comm_cost: u32,
    /// Fold sends/receives into computation instructions where the tile's
    /// port-event order allows (paper Figure 4: "the effective overhead of the
    /// communication can be as low as two cycles").
    pub fold_communication: bool,
    /// Worker threads for per-block compilation: `0` (the default) resolves to
    /// the `RAWCC_THREADS` environment variable, then to
    /// [`std::thread::available_parallelism`]. Thread count never changes the
    /// compiled output — only wall-clock time (see `crate::blockcache`).
    pub threads: usize,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            clustering: true,
            placement: PlacementAlgorithm::default(),
            placement_swap: true,
            priority: PriorityScheme::LevelFertility,
            cluster_comm_cost: 4,
            fold_communication: true,
            threads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = CompilerOptions::default();
        assert!(o.clustering);
        assert!(o.placement_swap);
        assert_eq!(o.priority, PriorityScheme::LevelFertility);
        assert_eq!(o.cluster_comm_cost, 4);
        assert!(o.fold_communication);
        assert_eq!(o.threads, 0, "0 = auto-detect worker count");
    }
}

//! Instruction selection: scheduled block ops → tile processor instructions
//! over *virtual* registers (physical registers are assigned afterwards by
//! [`regalloc`](crate::regalloc)).
//!
//! Address arithmetic for interleaved arrays follows paper Figure 7. For a
//! static reference with residue `r` (so the index `i` satisfies
//! `i ≡ r (mod N)`), the element's local word address on its home tile is
//! `base + i / N = base + (i >> log2 N)` — one shift. For a dynamic reference
//! the interleaved global address is `base · N + i` — one add against a
//! compile-time constant, then a dynamic-network access.

use crate::layout::{ArrayClass, DataLayout};
use crate::schedule::{BlockSchedule, TileOp};
use crate::taskgraph::TaskGraph;
use raw_ir::{Imm, InstKind, UnOp, ValueId};
use raw_machine::isa::{AluOp, Dst, PInst, Src};
use raw_machine::TileId;
use std::collections::HashMap;

/// One tile's code for one block, over virtual registers.
#[derive(Clone, Debug, Default)]
pub struct TileBlockCode {
    /// Straight-line instructions (register numbers are virtual).
    pub insts: Vec<PInst>,
    /// Provenance parallel to `insts`: the task-graph node each instruction
    /// implements ([`crate::provenance::NO_PROV`] when none). Address-arithmetic
    /// temporaries inherit the node of the memory access that needed them;
    /// sends/receives resolve to the producing node of the moved value.
    pub prov: Vec<u32>,
    /// Virtual register holding the branch condition, when this tile is the
    /// condition producer (kept live through the terminator).
    pub cond_vreg: Option<u16>,
    /// Number of virtual registers used.
    pub n_vregs: u16,
}

/// One processor op after send/receive folding.
#[derive(Clone, Debug)]
enum GenOp {
    /// Execute a block instruction; `from_port` names a source value consumed
    /// directly from the input port; `to_port` sends the result directly.
    Comp {
        node: usize,
        from_port: Option<ValueId>,
        to_port: bool,
    },
    Send(ValueId),
    Recv(ValueId),
}

/// Send/receive folding (paper §3.1 footnote / Figure 4: communication can be
/// expressed "by using existing computation instructions with the appropriate
/// communication registers", making the effective overhead two cycles).
///
/// A `Send(v)` folds into `v`'s producing computation when the value has no
/// other use on the tile; a `Recv(v)` folds into `v`'s unique consumer. Both
/// folds move a port access within the instruction stream, so each is kept
/// only if the tile's overall port-write (resp. port-read) order — which must
/// match the switch's scheduled route order — is preserved.
fn fold_ops(
    graph: &TaskGraph,
    ops: &[(u64, TileOp)],
    cond: Option<ValueId>,
    enabled: bool,
) -> Vec<GenOp> {
    let mut gen: Vec<Option<GenOp>> = ops
        .iter()
        .map(|(_, op)| {
            Some(match op {
                TileOp::Comp(n) => GenOp::Comp {
                    node: *n,
                    from_port: None,
                    to_port: false,
                },
                TileOp::Send(v) => GenOp::Send(*v),
                TileOp::Recv(v) => GenOp::Recv(*v),
            })
        })
        .collect();

    // Original port-event ranks (reads and writes share one sequence: the
    // processor and its switch block on both port directions, so preserving
    // only per-direction order can still create a buffer-capacity deadlock —
    // e.g. a write hoisted across enough reads fills the output FIFO while the
    // switch waits to deliver the unread words).
    let mut event_rank: HashMap<usize, usize> = HashMap::new();
    for (i, op) in gen.iter().enumerate() {
        if matches!(op, Some(GenOp::Send(_)) | Some(GenOp::Recv(_))) {
            let r = event_rank.len();
            event_rank.insert(i, r);
        }
    }

    // Count uses of a value on this tile (+1 if it is the branch condition).
    let uses_of = |gen: &[Option<GenOp>], v: ValueId| -> usize {
        let mut count = if cond == Some(v) { 1 } else { 0 };
        for op in gen.iter().flatten() {
            match op {
                GenOp::Comp { node, .. } => {
                    count += graph.insts[*node].sources().filter(|&s| s == v).count();
                }
                GenOp::Send(s) if *s == v => count += 1,
                _ => {}
            }
        }
        count
    };

    // Validation: all port events (reads and writes jointly), ordered by
    // stream position, must keep their original ranks increasing.
    let order_ok = |gen: &[Option<GenOp>],
                    ranks: &HashMap<usize, usize>,
                    moved: &HashMap<usize, usize>|
     -> bool {
        let mut last = None;
        for (i, op) in gen.iter().enumerate() {
            let rank = match op {
                Some(GenOp::Send(_)) | Some(GenOp::Recv(_)) => ranks.get(&i).copied(),
                Some(GenOp::Comp {
                    to_port, from_port, ..
                }) if *to_port || from_port.is_some() => moved.get(&i).copied(),
                _ => None,
            };
            if let Some(r) = rank {
                if last.is_some_and(|l| r < l) {
                    return false;
                }
                last = Some(r);
            }
        }
        true
    };

    // Port events moved into computation ops: op index → original rank.
    let mut moved: HashMap<usize, usize> = HashMap::new();

    // ---- Send folding.
    for j in 0..gen.len() {
        if !enabled {
            break;
        }
        let Some(GenOp::Send(v)) = gen[j].clone() else {
            continue;
        };
        // Producer must be a computation on this tile with v as destination.
        let Some(i) = gen.iter().position(
            |op| matches!(op, Some(GenOp::Comp { node, .. }) if graph.insts[*node].dst == Some(v)),
        ) else {
            continue;
        };
        if i >= j || uses_of(&gen, v) != 1 || moved.contains_key(&i) {
            continue;
        }
        // Tentative fold.
        let rank = event_rank[&j];
        let saved = gen[j].take();
        if let Some(GenOp::Comp { to_port, .. }) = gen[i].as_mut() {
            *to_port = true;
        }
        moved.insert(i, rank);
        if !order_ok(&gen, &event_rank, &moved) {
            // Revert.
            gen[j] = saved;
            if let Some(GenOp::Comp { to_port, .. }) = gen[i].as_mut() {
                *to_port = false;
            }
            moved.remove(&i);
        }
    }

    // ---- Receive folding.
    for i in 0..gen.len() {
        if !enabled {
            break;
        }
        let Some(GenOp::Recv(v)) = gen[i].clone() else {
            continue;
        };
        if cond == Some(v) {
            continue; // the branch reads the condition from a register
        }
        // All consumers of v on this tile. The fold needs exactly ONE consumer
        // overall — and that consumer must itself be eligible (uses v once and
        // carries no other port event). Counting only eligible consumers would
        // silently orphan an ineligible second consumer.
        let consumers: Vec<(usize, bool)> = gen
            .iter()
            .enumerate()
            .filter_map(|(k, op)| match op {
                Some(GenOp::Comp {
                    node,
                    from_port,
                    to_port,
                }) if graph.insts[*node].sources().any(|s| s == v) => {
                    let occurrences = graph.insts[*node].sources().filter(|&s| s == v).count();
                    let eligible = occurrences == 1 && from_port.is_none() && !*to_port;
                    Some((k, eligible))
                }
                _ => None,
            })
            .collect();
        let sends_v = gen
            .iter()
            .flatten()
            .any(|op| matches!(op, GenOp::Send(s) if *s == v));
        if consumers.len() != 1 || !consumers[0].1 || sends_v {
            continue;
        }
        let j = consumers[0].0;
        if j <= i || moved.contains_key(&j) {
            continue;
        }
        let rank = event_rank[&i];
        let saved = gen[i].take();
        if let Some(GenOp::Comp { from_port, .. }) = gen[j].as_mut() {
            *from_port = Some(v);
        }
        moved.insert(j, rank);
        if !order_ok(&gen, &event_rank, &moved) {
            gen[i] = saved;
            if let Some(GenOp::Comp { from_port, .. }) = gen[j].as_mut() {
                *from_port = None;
            }
            moved.remove(&j);
        }
    }

    gen.into_iter().flatten().collect()
}

/// Generates per-tile virtual-register code for one scheduled block.
///
/// `branch_cond` is the terminator's condition value, if the block ends in a
/// branch; the producing tile appends a send of the condition for the global
/// branch broadcast (unless the machine has a single tile), and records
/// [`TileBlockCode::cond_vreg`].
pub fn generate(
    graph: &TaskGraph,
    schedule: &BlockSchedule,
    layout: &DataLayout,
    branch_cond: Option<(ValueId, TileId)>,
    fold: bool,
) -> Vec<TileBlockCode> {
    // Physical tile count: under a faulty mask, `layout.n_tiles` is the
    // (smaller) live-slot count, but code streams exist per physical tile.
    let n_tiles = schedule.proc_ops.len();
    let mut out = Vec::with_capacity(n_tiles);
    for tile in 0..n_tiles {
        let cond_here =
            branch_cond.and_then(|(c, producer)| (producer.index() == tile).then_some(c));
        let ops = fold_ops(graph, &schedule.proc_ops[tile], cond_here, fold);
        let mut gen = TileGen {
            layout,
            vregs: HashMap::new(),
            next_vreg: 0,
            insts: Vec::new(),
            shifted: HashMap::new(),
            globals: HashMap::new(),
        };
        let mut prov: Vec<u32> = Vec::new();
        let node_of = |v: &ValueId| -> u32 {
            graph
                .def_of
                .get(v)
                .map(|&n| n as u32)
                .unwrap_or(crate::provenance::NO_PROV)
        };
        for op in &ops {
            gen.emit(graph, op);
            let node = match op {
                GenOp::Comp { node, .. } => *node as u32,
                GenOp::Send(v) | GenOp::Recv(v) => node_of(v),
            };
            prov.resize(gen.insts.len(), node);
        }
        let mut cond_vreg = None;
        if let Some(cond) = cond_here {
            let v = gen.vreg(cond);
            if n_tiles > 1 {
                // Feed the branch broadcast.
                gen.insts.push(PInst::Alu {
                    op: AluOp::Un(UnOp::Mov),
                    dst: Dst::PortOut,
                    a: Src::Reg(v),
                    b: Src::Imm(Imm::I(0)),
                });
                prov.resize(gen.insts.len(), node_of(&cond));
            }
            cond_vreg = Some(v);
        }
        out.push(TileBlockCode {
            insts: gen.insts,
            prov,
            cond_vreg,
            n_vregs: gen.next_vreg,
        });
    }
    out
}

struct TileGen<'a> {
    layout: &'a DataLayout,
    vregs: HashMap<ValueId, u16>,
    next_vreg: u16,
    insts: Vec<PInst>,
    /// Memoized `idx >> log2 N` results, keyed by the index vreg.
    shifted: HashMap<u16, u16>,
    /// Memoized interleaved global addresses, keyed by `(idx vreg, base)`.
    globals: HashMap<(u16, u32), u16>,
}

impl TileGen<'_> {
    fn vreg(&mut self, v: ValueId) -> u16 {
        if let Some(&r) = self.vregs.get(&v) {
            return r;
        }
        let r = self.next_vreg;
        self.next_vreg += 1;
        self.vregs.insert(v, r);
        r
    }

    fn fresh(&mut self) -> u16 {
        let r = self.next_vreg;
        self.next_vreg += 1;
        r
    }

    fn emit(&mut self, graph: &TaskGraph, op: &GenOp) {
        match op {
            GenOp::Send(v) => {
                let r = self.vreg(*v);
                self.insts.push(PInst::Alu {
                    op: AluOp::Un(UnOp::Mov),
                    dst: Dst::PortOut,
                    a: Src::Reg(r),
                    b: Src::Imm(Imm::I(0)),
                });
            }
            GenOp::Recv(v) => {
                let r = self.vreg(*v);
                self.insts.push(PInst::Alu {
                    op: AluOp::Un(UnOp::Mov),
                    dst: Dst::Reg(r),
                    a: Src::PortIn,
                    b: Src::Imm(Imm::I(0)),
                });
            }
            GenOp::Comp {
                node,
                from_port,
                to_port,
            } => self.emit_comp(graph, *node, *from_port, *to_port),
        }
    }

    fn emit_comp(
        &mut self,
        graph: &TaskGraph,
        n: usize,
        mut from_port: Option<ValueId>,
        to_port: bool,
    ) {
        let inst = graph.insts[n].clone();
        // Source resolution: a folded receive supplies one operand directly
        // from the input port (consumed exactly once).
        let mut src = |gen: &mut Self, v: ValueId| -> Src {
            if from_port == Some(v) {
                from_port = None;
                Src::PortIn
            } else {
                Src::Reg(gen.vreg(v))
            }
        };
        // Destination resolution: a folded send writes the output port.
        let dst = |gen: &mut Self, v: ValueId| -> Dst {
            if to_port {
                Dst::PortOut
            } else {
                Dst::Reg(gen.vreg(v))
            }
        };
        match &inst.kind {
            InstKind::Const(imm) => {
                let d = dst(self, inst.dst.unwrap());
                self.insts.push(PInst::Alu {
                    op: AluOp::Un(UnOp::Mov),
                    dst: d,
                    a: Src::Imm(*imm),
                    b: Src::Imm(Imm::I(0)),
                });
            }
            InstKind::Un(op, s) => {
                let a = src(self, *s);
                let d = dst(self, inst.dst.unwrap());
                self.insts.push(PInst::Alu {
                    op: AluOp::Un(*op),
                    dst: d,
                    a,
                    b: Src::Imm(Imm::I(0)),
                });
            }
            InstKind::Bin(op, l, r) => {
                let a = src(self, *l);
                let b = src(self, *r);
                let d = dst(self, inst.dst.unwrap());
                self.insts.push(PInst::Alu {
                    op: AluOp::Bin(*op),
                    dst: d,
                    a,
                    b,
                });
            }
            InstKind::Load { array, index, .. } => {
                let idx = src(self, *index);
                let base = self.layout.array_base(*array);
                match self.layout.class(*array) {
                    ArrayClass::Static => {
                        let addr = self.local_addr(idx);
                        let d = dst(self, inst.dst.unwrap());
                        self.insts.push(PInst::Load {
                            dst: d,
                            addr,
                            offset: base as i32,
                        });
                    }
                    ArrayClass::Dynamic { .. } => {
                        let g = self.global_addr(idx, base);
                        let d = dst(self, inst.dst.unwrap());
                        self.insts.push(PInst::DLoad {
                            dst: d,
                            gaddr: Src::Reg(g),
                        });
                    }
                }
            }
            InstKind::Store {
                array,
                index,
                value,
                ..
            } => {
                let idx = src(self, *index);
                let val = src(self, *value);
                let base = self.layout.array_base(*array);
                match self.layout.class(*array) {
                    ArrayClass::Static => {
                        let addr = self.local_addr(idx);
                        self.insts.push(PInst::Store {
                            value: val,
                            addr,
                            offset: base as i32,
                        });
                    }
                    ArrayClass::Dynamic { .. } => {
                        let g = self.global_addr(idx, base);
                        self.insts.push(PInst::DStore {
                            gaddr: Src::Reg(g),
                            value: val,
                        });
                    }
                }
            }
            InstKind::ReadVar(v) => {
                let d = dst(self, inst.dst.unwrap());
                self.insts.push(PInst::Load {
                    dst: d,
                    addr: Src::Imm(Imm::I(self.layout.var_addr(*v) as i32)),
                    offset: 0,
                });
            }
            InstKind::WriteVar(v, s) => {
                let val = src(self, *s);
                self.insts.push(PInst::Store {
                    value: val,
                    addr: Src::Imm(Imm::I(self.layout.var_addr(*v) as i32)),
                    offset: 0,
                });
            }
        }
    }

    /// `idx >> log2 N` (no-op shift elided on a 1-tile machine; memoized when
    /// the index comes from a register).
    fn local_addr(&mut self, idx: Src) -> Src {
        let shift = self.layout.tile_shift();
        if shift == 0 {
            return idx;
        }
        if let Src::Reg(r) = idx {
            if let Some(&t) = self.shifted.get(&r) {
                return Src::Reg(t);
            }
        }
        let t = self.fresh();
        self.insts.push(PInst::Alu {
            op: AluOp::Bin(raw_ir::BinOp::Shru),
            dst: Dst::Reg(t),
            a: idx,
            b: Src::Imm(Imm::I(shift as i32)),
        });
        if let Src::Reg(r) = idx {
            self.shifted.insert(r, t);
        }
        Src::Reg(t)
    }

    /// `idx + base · N` — the interleaved global address (memoized when the
    /// index comes from a register).
    fn global_addr(&mut self, idx: Src, base: u32) -> u16 {
        if let Src::Reg(r) = idx {
            if let Some(&t) = self.globals.get(&(r, base)) {
                return t;
            }
        }
        let t = self.fresh();
        let base_global = (base << self.layout.tile_shift()) as i32;
        self.insts.push(PInst::Alu {
            op: AluOp::Bin(raw_ir::BinOp::Add),
            dst: Dst::Reg(t),
            a: idx,
            b: Src::Imm(Imm::I(base_global)),
        });
        if let Src::Reg(r) = idx {
            self.globals.insert((r, base), t);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CompilerOptions;
    use raw_ir::builder::ProgramBuilder;
    use raw_ir::{MemHome, Ty};
    use raw_machine::MachineConfig;

    fn codegen_for(
        n_tiles: u32,
        build: impl FnOnce(&mut ProgramBuilder),
    ) -> (Vec<TileBlockCode>, DataLayout) {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        b.halt();
        let p = b.finish().unwrap();
        let config = MachineConfig::square(n_tiles);
        let layout = DataLayout::build(&p, &config);
        let g = TaskGraph::build(p.block(p.entry), &layout, &config);
        let options = CompilerOptions::default();
        let part = crate::partition::partition(&g, &config, &options);
        let sched = crate::schedule::schedule(&g, &part, &config, &options);
        (generate(&g, &sched, &layout, None, true), layout)
    }

    #[test]
    fn static_load_uses_shift_and_base_offset() {
        let (code, layout) = codegen_for(4, |b| {
            let a = b.array("A", Ty::I32, &[8]);
            let i = b.const_i32(6);
            let v = b.load(a, i, MemHome::Static(2));
            let _ = b.add(v, v);
        });
        // The load is pinned to tile 2.
        let tile2 = &code[2].insts;
        assert!(
            tile2.iter().any(|i| matches!(
                i,
                PInst::Load { offset, .. } if *offset == layout.array_base.first().copied().unwrap() as i32
            )),
            "tile 2 code: {tile2:?}"
        );
        assert!(tile2.iter().any(|i| matches!(
            i,
            PInst::Alu {
                op: AluOp::Bin(raw_ir::BinOp::Shru),
                ..
            }
        )));
    }

    #[test]
    fn dynamic_access_emits_dload() {
        let (code, _) = codegen_for(2, |b| {
            let a = b.array("A", Ty::I32, &[8]);
            let i = b.const_i32(3);
            let v = b.load(a, i, MemHome::Dynamic);
            b.store(a, i, v, MemHome::Dynamic);
        });
        let all: Vec<&PInst> = code.iter().flat_map(|c| c.insts.iter()).collect();
        assert!(all.iter().any(|i| matches!(i, PInst::DLoad { .. })));
        assert!(all.iter().any(|i| matches!(i, PInst::DStore { .. })));
    }

    #[test]
    fn single_tile_load_has_no_shift() {
        let (code, _) = codegen_for(1, |b| {
            let a = b.array("A", Ty::I32, &[8]);
            let i = b.const_i32(3);
            let _ = b.load(a, i, MemHome::Static(0));
        });
        assert!(!code[0].insts.iter().any(|i| matches!(
            i,
            PInst::Alu {
                op: AluOp::Bin(raw_ir::BinOp::Shru),
                ..
            }
        )));
    }

    #[test]
    fn var_access_is_absolute_slot() {
        let (code, layout) = codegen_for(2, |b| {
            let v = b.var_i32("x", 1);
            let r = b.read_var(v);
            b.write_var(v, r);
        });
        let home = layout.var_home[0].index();
        let insts = &code[home].insts;
        assert!(insts.iter().any(|i| matches!(
            i,
            PInst::Load {
                addr: Src::Imm(Imm::I(0)),
                ..
            }
        )));
        assert!(insts.iter().any(|i| matches!(
            i,
            PInst::Store {
                addr: Src::Imm(Imm::I(0)),
                ..
            }
        )));
    }

    #[test]
    fn folding_reduces_port_move_instructions() {
        // Cross-tile dataflow via pinned variables gives sends and receives;
        // folding must strictly reduce the instruction count while both
        // versions carry the same number of port events.
        let mut b = raw_ir::builder::ProgramBuilder::new("t");
        let v0 = b.var_f32("a0", 1.0); // home tile 0
        let v1 = b.var_f32("a1", 2.0); // home tile 1
        let r0 = b.read_var(v0);
        let r1 = b.read_var(v1);
        let m = b.mul_f(r0, r1);
        b.write_var(v0, m);
        b.halt();
        let p = b.finish().unwrap();
        let config = raw_machine::MachineConfig::square(2);
        let layout = DataLayout::build(&p, &config);
        let g = TaskGraph::build(p.block(p.entry), &layout, &config);
        let options = crate::options::CompilerOptions::default();
        let part = crate::partition::partition(&g, &config, &options);
        let sched = crate::schedule::schedule(&g, &part, &config, &options);

        let count = |code: &[TileBlockCode]| -> usize { code.iter().map(|c| c.insts.len()).sum() };
        let port_events = |code: &[TileBlockCode]| -> usize {
            code.iter()
                .flat_map(|c| c.insts.iter())
                .map(|i| {
                    let reads = i
                        .sources()
                        .iter()
                        .filter(|s| matches!(s, Src::PortIn))
                        .count();
                    let writes = usize::from(matches!(i.dst(), Some(Dst::PortOut)));
                    reads + writes
                })
                .sum()
        };
        let folded = generate(&g, &sched, &layout, None, true);
        let unfolded = generate(&g, &sched, &layout, None, false);
        assert!(
            count(&folded) < count(&unfolded),
            "folding must shrink code"
        );
        assert_eq!(
            port_events(&folded),
            port_events(&unfolded),
            "folding must preserve the number of port events"
        );
    }

    #[test]
    fn vreg_count_tracks_values_and_temps() {
        let (code, _) = codegen_for(1, |b| {
            let x = b.const_i32(1);
            let y = b.add(x, x);
            let _ = b.mul(y, y);
        });
        assert_eq!(code[0].n_vregs, 3);
    }
}

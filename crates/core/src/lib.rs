//! **RAWCC** — the space-time scheduling compiler of *Space-Time Scheduling of
//! Instruction-Level Parallelism on a Raw Machine* (ASPLOS 1998), reproduced.
//!
//! The compiler takes a sequential [`raw_ir::Program`] and a
//! [`raw_machine::MachineConfig`] and produces per-tile instruction streams for
//! both the processors and the programmable static switches. Its heart is the
//! **basic block orchestrater** (paper §3.3), a pipeline of:
//!
//! 1. **task graph builder** ([`taskgraph`]) — instructions become cost-labelled
//!    DAG nodes;
//! 2. **instruction partitioner** ([`partition`]) — DSC-style clustering,
//!    load-balance merging, and greedy-swap placement (paper §4.1);
//! 3. **data partitioner** ([`layout`]) — round-robin variable homes and
//!    low-order interleaved arrays (paper §5.2);
//! 4. **event scheduler** ([`schedule`]) — greedy list scheduling of
//!    computation *and* communication, with communication paths reserved
//!    atomically end-to-end so schedules are deadlock-free (paper §4.2);
//! 5. **communication code generation** — dimension-ordered multicast routes
//!    materialized as switch `ROUTE` instructions;
//! 6. **register allocation** ([`regalloc`]) — linear scan with spilling,
//!    deliberately run *after* scheduling, as in the paper;
//! 7. **linking** ([`driver`]) — per-tile streams with orchestrated global
//!    control flow (branch-condition broadcast).
//!
//! A [`compile_baseline`] entry point provides the sequential single-tile
//! compiler used as the speedup baseline in the paper's Table 3.
//!
//! # Example
//!
//! Compile a tiny program for a 4-tile Raw machine, simulate it, and check it
//! against the reference interpreter:
//!
//! ```
//! use raw_ir::builder::ProgramBuilder;
//! use raw_ir::interp::Interpreter;
//! use raw_machine::MachineConfig;
//! use rawcc::{compile, CompilerOptions};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let out = b.var_i32("out", 0);
//! let x = b.const_i32(6);
//! let y = b.const_i32(7);
//! let p = b.mul(x, y);
//! b.write_var(out, p);
//! b.halt();
//! let program = b.finish()?;
//!
//! let config = MachineConfig::square(4);
//! let compiled = compile(&program, &config, &CompilerOptions::default())?;
//! let (result, report) = compiled.run(&program)?;
//!
//! let golden = Interpreter::new(&program).run()?;
//! assert!(result.state_eq(&golden));
//! assert!(report.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod blockcache;
pub mod codegen;
pub mod driver;
pub mod layout;
pub mod options;
pub mod partition;
pub mod provenance;
pub mod regalloc;
pub mod schedule;
pub mod taskgraph;

pub use blockcache::{BlockBundle, BlockCache, CacheKey, CacheStats, Evicted, KeyContext};
pub use driver::{
    compile, compile_baseline, compile_block, compile_with_cache, link_coresident, BlockReport,
    CoResident, CompileError, CompileReport, CompiledProgram, PhaseTimings,
};
pub use layout::{ArrayClass, DataLayout};
pub use options::{CompilerOptions, PlacementAlgorithm, PriorityScheme};
pub use partition::{PlacementLog, PlacementStep};
pub use provenance::{ProvRecord, ProvenanceMap, NO_PROV};
pub use schedule::{PredOpKind, PredictedBlock};

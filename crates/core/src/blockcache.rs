//! Content-addressed block cache for the parallel compile pipeline.
//!
//! [`compile_block`](crate::driver::compile_block) is a pure function of
//! *(block IR, data layout, machine config, compiler options)*, so its result —
//! a [`BlockBundle`] — can be cached under a key derived from exactly those
//! inputs and replayed for any identical block: unroll clones inside one
//! program, repeated compiles in a bench loop, or (with the on-disk layer)
//! compiles in a later process.
//!
//! # Key construction
//!
//! The key hashes the **canonical** encoding of the block: `ValueId`s are
//! renumbered by first appearance, so two blocks that are identical up to the
//! program-global value numbering (e.g. unroll clones) share a key. Jump
//! *targets* are excluded — they only affect the link phase, which reads the
//! program directly — but the *presence* of a branch and its (canonical)
//! condition value are included because they change codegen. Source spans are
//! included because they flow into [`ProvRecord`](crate::provenance::ProvRecord)s.
//! The data-layout, machine-config, and compiler-option fingerprints are
//! appended; [`CompilerOptions::threads`](crate::options::CompilerOptions) is
//! deliberately left out of the fingerprint because thread count cannot change
//! any artifact (enforced by `tests/parallel_determinism.rs`).
//!
//! Keys are 128 bits (two independent FNV-1a passes) and the on-disk format
//! additionally stores the full key, so a colliding or mis-filed entry is
//! rejected rather than served.
//!
//! # Disk layer
//!
//! With `RAWCC_CACHE_DIR` set (or [`BlockCache::with_disk`]), bundles are also
//! persisted as one file per key with a versioned header and a payload
//! checksum. Entries are **never trusted blindly**: a truncated, bit-flipped,
//! wrong-version, or wrong-key file fails validation, is ignored, and is
//! overwritten by the fresh compile. `RAWCC_CACHE_VERIFY=1` additionally
//! recompiles every hit and asserts the cached bundle is equal.

use crate::driver::BlockReport;
use crate::layout::{ArrayClass, DataLayout};
use crate::options::{CompilerOptions, PlacementAlgorithm, PriorityScheme};
use crate::partition::{PlacementLog, PlacementStep};
use crate::provenance::NO_PROV;
use crate::regalloc::AllocResult;
use crate::schedule::{PredOpKind, PredictedBlock};
use raw_ir::{BinOp, Block, Imm, Inst, InstKind, MemHome, SourceSpan, Terminator, UnOp, ValueId};
use raw_machine::isa::{AluOp, Dir, Dst, PInst, SDst, SSrc, Src};
use raw_machine::{LatencyModel, MachineConfig, TileId};
use raw_testkit::{hash64, hash64_with};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once};

/// Magic prefix of on-disk cache entries.
const MAGIC: [u8; 8] = *b"RAWCCBC\n";
/// Bump whenever the bundle encoding or key derivation changes.
const FORMAT_VERSION: u32 = 2;
/// Basis of the second (independent) FNV pass forming the key's high half.
const HI_BASIS: u64 = 0x8422_2325_cbf2_9ce4;
/// Default in-memory capacity (bundles), evicted FIFO beyond this.
const DEFAULT_CAPACITY: usize = 4096;
/// Default in-memory byte budget (sum of encoded bundle sizes), evicted FIFO
/// beyond this.
const DEFAULT_BYTE_BUDGET: usize = 64 << 20;

/// 128-bit content-address of one block compilation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a over the canonical input bytes.
    pub lo: u64,
    /// Second FNV-1a pass with an independent basis.
    pub hi: u64,
}

impl CacheKey {
    /// Stable file name of this key's on-disk entry.
    fn file_name(&self) -> String {
        format!("{:016x}{:016x}.rbc", self.lo, self.hi)
    }
}

/// One tile's switch ops for a block, in schedule order: `(route pairs,
/// producing node id)` per op ([`NO_PROV`] when the moved value has no
/// defining node).
pub type TileSwitchOps = Vec<(Vec<(SSrc, SDst)>, u32)>;

/// Everything [`compile_block`](crate::driver::compile_block) produces for one
/// block, in block-relative form (node ids instead of absolute provenance
/// record ids), so the bundle is independent of the block's position in the
/// program and can be cached content-addressed.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockBundle {
    /// Per-block compile metrics (spills, makespan, placement audit, …).
    pub report: BlockReport,
    /// Register-allocated instruction stream per tile.
    pub phys: Vec<AllocResult>,
    /// Per-tile switch ops (see [`TileSwitchOps`]).
    pub switch: Vec<TileSwitchOps>,
    /// Tile that computes the branch condition, when the block branches.
    pub cond_producer: Option<TileId>,
    /// Node id of the branch-condition producer ([`NO_PROV`] when the block
    /// does not branch).
    pub cond_node: u32,
    /// Executing tile per task-graph node.
    pub node_tile: Vec<u32>,
    /// Placement bin per task-graph node (`u32::MAX` when unplaced).
    pub node_bin: Vec<u32>,
}

// ---------------------------------------------------------------------------
// Canonical input encoding (cache key).
// ---------------------------------------------------------------------------

/// Canonical byte encoding of one block's compile-relevant IR.
///
/// `ValueId`s are renumbered by first appearance (block-local values are
/// monotone in definition order, so this is a bijection that preserves every
/// ordering the compiler observes). The block name and terminator targets are
/// excluded; spans are included (they are provenance output).
pub fn canonical_block_bytes(block: &Block) -> Vec<u8> {
    let mut out = Vec::with_capacity(block.insts.len() * 16 + 16);
    let mut rank: HashMap<ValueId, u32> = HashMap::new();
    let mut canon = |v: ValueId, out: &mut Vec<u8>| {
        let next = rank.len() as u32;
        let r = *rank.entry(v).or_insert(next);
        put_u32(out, r);
    };
    put_u64(&mut out, block.insts.len() as u64);
    for inst in &block.insts {
        encode_ir_inst(inst, &mut canon, &mut out);
    }
    match &block.term {
        Terminator::Jump(_) => out.push(0),
        Terminator::Halt => out.push(1),
        Terminator::Branch { cond, .. } => {
            out.push(2);
            canon(*cond, &mut out);
        }
    }
    out
}

fn encode_ir_inst(inst: &Inst, canon: &mut impl FnMut(ValueId, &mut Vec<u8>), out: &mut Vec<u8>) {
    let SourceSpan { line, col } = inst.span;
    put_u32(out, line);
    put_u32(out, col);
    match inst.dst {
        Some(v) => {
            out.push(1);
            canon(v, out);
        }
        None => out.push(0),
    }
    match &inst.kind {
        InstKind::Const(imm) => {
            out.push(0);
            encode_imm(*imm, out);
        }
        InstKind::Un(op, a) => {
            out.push(1);
            out.push(unop_code(*op));
            canon(*a, out);
        }
        InstKind::Bin(op, a, b) => {
            out.push(2);
            out.push(binop_code(*op));
            canon(*a, out);
            canon(*b, out);
        }
        InstKind::Load { array, index, home } => {
            out.push(3);
            put_u32(out, array.index() as u32);
            canon(*index, out);
            encode_home(*home, out);
        }
        InstKind::Store {
            array,
            index,
            value,
            home,
        } => {
            out.push(4);
            put_u32(out, array.index() as u32);
            canon(*index, out);
            canon(*value, out);
            encode_home(*home, out);
        }
        InstKind::ReadVar(v) => {
            out.push(5);
            put_u32(out, v.index() as u32);
        }
        InstKind::WriteVar(v, x) => {
            out.push(6);
            put_u32(out, v.index() as u32);
            canon(*x, out);
        }
    }
}

fn encode_imm(imm: Imm, out: &mut Vec<u8>) {
    match imm {
        Imm::I(v) => {
            out.push(0);
            put_u32(out, v as u32);
        }
        Imm::F(v) => {
            out.push(1);
            put_u32(out, v.to_bits());
        }
    }
}

fn encode_home(home: MemHome, out: &mut Vec<u8>) {
    match home {
        MemHome::Static(r) => {
            out.push(0);
            put_u32(out, r);
        }
        MemHome::Dynamic => out.push(1),
    }
}

/// Pre-encoded fingerprint of the per-compile environment (data layout,
/// machine config, compiler options) appended to every block's canonical bytes
/// to form its cache key.
pub struct KeyContext {
    env: Vec<u8>,
}

impl KeyContext {
    /// Encodes the environment once per compile.
    pub fn new(layout: &DataLayout, config: &MachineConfig, options: &CompilerOptions) -> Self {
        let mut env = Vec::with_capacity(256);
        put_u32(&mut env, FORMAT_VERSION);
        // Data layout: every field, in declaration order.
        put_u32(&mut env, layout.n_tiles);
        put_u64(&mut env, layout.live.len() as u64);
        for t in &layout.live {
            put_u32(&mut env, t.index() as u32);
        }
        put_u64(&mut env, layout.var_home.len() as u64);
        for t in &layout.var_home {
            put_u32(&mut env, t.index() as u32);
        }
        put_u64(&mut env, layout.var_addr.len() as u64);
        for a in &layout.var_addr {
            put_u32(&mut env, *a);
        }
        put_u64(&mut env, layout.array_base.len() as u64);
        for a in &layout.array_base {
            put_u32(&mut env, *a);
        }
        put_u64(&mut env, layout.array_class.len() as u64);
        for c in &layout.array_class {
            match c {
                ArrayClass::Static => env.push(0),
                ArrayClass::Dynamic { issue_tile } => {
                    env.push(1);
                    put_u32(&mut env, issue_tile.index() as u32);
                }
            }
        }
        put_u32(&mut env, layout.spill_base);
        // Machine config: every field.
        put_u32(&mut env, config.rows);
        put_u32(&mut env, config.cols);
        put_u32(&mut env, config.gprs);
        put_u32(&mut env, config.switch_regs);
        put_u32(&mut env, config.mem_latency);
        put_u32(&mut env, config.mem_words);
        env.push(match config.latency {
            LatencyModel::Table1 => 0,
            LatencyModel::Unit => 1,
        });
        put_u64(&mut env, config.port_capacity as u64);
        put_u64(&mut env, config.dyn_fifo as u64);
        put_u64(&mut env, config.step_limit);
        // Two masks with the same live count produce different placements, so
        // the mask bits themselves are part of the key.
        put_u64(&mut env, config.faulty.bits());
        // Compiler options: every semantic field. `threads` is excluded on
        // purpose: worker count cannot change artifacts.
        env.push(options.clustering as u8);
        match options.placement {
            PlacementAlgorithm::GreedySwap => env.push(0),
            PlacementAlgorithm::Annealing { seed } => {
                env.push(1);
                put_u64(&mut env, seed);
            }
            PlacementAlgorithm::None => env.push(2),
        }
        env.push(options.placement_swap as u8);
        env.push(match options.priority {
            PriorityScheme::LevelFertility => 0,
            PriorityScheme::LevelOnly => 1,
            PriorityScheme::SourceOrder => 2,
        });
        put_u32(&mut env, options.cluster_comm_cost);
        env.push(options.fold_communication as u8);
        KeyContext { env }
    }

    /// Cache key of a block given its [`canonical_block_bytes`].
    pub fn key(&self, block_bytes: &[u8]) -> CacheKey {
        let lo = hash64_with(hash64(block_bytes), &self.env);
        let hi = hash64_with(hash64_with(HI_BASIS, block_bytes), &self.env);
        CacheKey { lo, hi }
    }
}

// ---------------------------------------------------------------------------
// The cache.
// ---------------------------------------------------------------------------

/// Block-cache effectiveness counters, surfaced per compile in
/// [`CompileReport`](crate::driver::CompileReport).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Blocks served from the cache (memory or disk).
    pub hits: u64,
    /// Blocks compiled fresh.
    pub misses: u64,
    /// In-memory bundles evicted (FIFO) while this compile ran.
    pub evictions: u64,
    /// Encoded bytes of the evicted bundles.
    pub evicted_bytes: u64,
}

/// Eviction tally of one cache mutation: how many bundles left the in-memory
/// layer and how many encoded bytes they held.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Evicted {
    /// Bundles evicted.
    pub entries: u64,
    /// Encoded payload bytes of those bundles.
    pub bytes: u64,
}

struct MemCache {
    /// Bundle plus its encoded payload size (the unit of the byte budget).
    map: HashMap<CacheKey, (std::sync::Arc<BlockBundle>, usize)>,
    order: VecDeque<CacheKey>,
    /// Sum of encoded sizes of every resident bundle.
    total_bytes: usize,
}

/// Thread-safe content-addressed store of [`BlockBundle`]s: a bounded
/// in-memory layer (bundle count *and* byte budget, both FIFO) plus an
/// optional on-disk layer. See the module docs for the key and durability
/// contract.
pub struct BlockCache {
    mem: Mutex<MemCache>,
    capacity: usize,
    byte_budget: usize,
    disk: Option<PathBuf>,
    verify: bool,
    disk_rejects: AtomicU64,
}

impl Default for BlockCache {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl BlockCache {
    /// A purely in-memory cache with the default capacity.
    pub fn in_memory() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A purely in-memory cache holding at most `capacity` bundles under the
    /// default byte budget.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_budget(capacity, DEFAULT_BYTE_BUDGET)
    }

    /// A purely in-memory cache holding at most `capacity` bundles and at most
    /// `byte_budget` encoded payload bytes (whichever bound bites first
    /// triggers FIFO eviction).
    pub fn with_budget(capacity: usize, byte_budget: usize) -> Self {
        BlockCache {
            mem: Mutex::new(MemCache {
                map: HashMap::new(),
                order: VecDeque::new(),
                total_bytes: 0,
            }),
            capacity: capacity.max(1),
            byte_budget: byte_budget.max(1),
            disk: None,
            verify: false,
            disk_rejects: AtomicU64::new(0),
        }
    }

    /// A cache backed by `dir` on disk (created if missing).
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or is not writable; callers
    /// normally fall back to [`in_memory`](Self::in_memory) (see
    /// [`from_env`](Self::from_env)).
    pub fn with_disk(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // Probe writability now so a read-only dir degrades at construction,
        // not with a silent per-entry failure at every write.
        let probe = dir.join(format!(".probe-{}", std::process::id()));
        std::fs::write(&probe, b"rawcc")?;
        let _ = std::fs::remove_file(&probe);
        let mut cache = Self::in_memory();
        cache.disk = Some(dir);
        Ok(cache)
    }

    /// Builds the cache the public [`compile`](crate::compile) entry uses:
    /// disk layer from `RAWCC_CACHE_DIR` (falling back to in-memory with a
    /// one-time warning when unusable), verify mode from `RAWCC_CACHE_VERIFY=1`.
    pub fn from_env() -> Self {
        let mut cache = match std::env::var_os("RAWCC_CACHE_DIR") {
            Some(dir) if !dir.is_empty() => match Self::with_disk(PathBuf::from(&dir)) {
                Ok(c) => c,
                Err(e) => {
                    static WARN: Once = Once::new();
                    WARN.call_once(|| {
                        eprintln!(
                            "rawcc: RAWCC_CACHE_DIR={} unusable ({e}); \
                             falling back to in-memory block cache",
                            PathBuf::from(&dir).display()
                        );
                    });
                    Self::in_memory()
                }
            },
            _ => Self::in_memory(),
        };
        cache.verify = std::env::var_os("RAWCC_CACHE_VERIFY").is_some_and(|v| v == *"1");
        cache
    }

    /// Enables or disables hit verification (recompile every hit and assert
    /// the cached bundle equals the fresh one).
    pub fn set_verify(&mut self, verify: bool) {
        self.verify = verify;
    }

    /// Whether hits are recompiled and checked.
    pub fn verify(&self) -> bool {
        self.verify
    }

    /// The on-disk directory, when the disk layer is active.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Number of bundles currently held in memory.
    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().map.len()
    }

    /// Encoded payload bytes currently held in memory.
    pub fn resident_bytes(&self) -> usize {
        self.mem.lock().unwrap().total_bytes
    }

    /// The in-memory byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Whether the in-memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-disk entries rejected as corrupt/stale/mis-keyed since construction.
    pub fn disk_rejects(&self) -> u64 {
        self.disk_rejects.load(Ordering::Relaxed)
    }

    /// Looks up `key`, consulting memory then disk (a disk hit is promoted
    /// into memory). Returns the bundle and the evictions the promotion
    /// caused.
    pub fn get(&self, key: &CacheKey) -> (Option<std::sync::Arc<BlockBundle>>, Evicted) {
        if let Some((b, _)) = self.mem.lock().unwrap().map.get(key) {
            return (Some(b.clone()), Evicted::default());
        }
        let Some(dir) = &self.disk else {
            return (None, Evicted::default());
        };
        match self.load_disk(&dir.join(key.file_name()), key) {
            Some(bundle) => {
                let bundle = std::sync::Arc::new(bundle);
                let evicted = self.put_mem(*key, bundle.clone());
                (Some(bundle), evicted)
            }
            None => (None, Evicted::default()),
        }
    }

    /// Inserts a freshly compiled bundle under `key` (memory and, when
    /// enabled, disk). Returns the in-memory evictions.
    pub fn put(&self, key: CacheKey, bundle: std::sync::Arc<BlockBundle>) -> Evicted {
        if let Some(dir) = &self.disk {
            // Best-effort: a full disk or lost race never fails the compile.
            let _ = self.store_disk(dir, &key, &bundle);
        }
        self.put_mem(key, bundle)
    }

    fn put_mem(&self, key: CacheKey, bundle: std::sync::Arc<BlockBundle>) -> Evicted {
        let size = encode_bundle(&bundle).len();
        let mut mem = self.mem.lock().unwrap();
        match mem.map.insert(key, (bundle, size)) {
            None => {
                mem.order.push_back(key);
                mem.total_bytes += size;
            }
            Some((_, old_size)) => {
                // Same key re-inserted (racing workers): replace in place.
                mem.total_bytes = mem.total_bytes - old_size + size;
            }
        }
        let mut evicted = Evicted::default();
        while mem.map.len() > self.capacity || mem.total_bytes > self.byte_budget {
            let Some(old) = mem.order.pop_front() else {
                break;
            };
            if let Some((_, old_size)) = mem.map.remove(&old) {
                mem.total_bytes -= old_size;
                evicted.entries += 1;
                evicted.bytes += old_size as u64;
            }
        }
        evicted
    }

    fn store_disk(&self, dir: &Path, key: &CacheKey, bundle: &BlockBundle) -> std::io::Result<()> {
        let payload = encode_bundle(bundle);
        let mut entry = Vec::with_capacity(payload.len() + 44);
        entry.extend_from_slice(&MAGIC);
        put_u32(&mut entry, FORMAT_VERSION);
        put_u64(&mut entry, key.lo);
        put_u64(&mut entry, key.hi);
        put_u64(&mut entry, payload.len() as u64);
        put_u64(&mut entry, hash64(&payload));
        entry.extend_from_slice(&payload);
        // Write-then-rename so readers never observe a half-written entry.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
            key.file_name()
        ));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&entry)?;
        drop(f);
        let dst = dir.join(key.file_name());
        std::fs::rename(&tmp, &dst).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    fn load_disk(&self, path: &Path, expect: &CacheKey) -> Option<BlockBundle> {
        let bytes = std::fs::read(path).ok()?;
        let decoded = decode_entry(&bytes, expect);
        if decoded.is_none() && path.exists() {
            self.disk_rejects.fetch_add(1, Ordering::Relaxed);
        }
        decoded
    }
}

/// Parses and validates a full on-disk entry; any mismatch (magic, version,
/// key, length, checksum, payload shape) yields `None`.
fn decode_entry(bytes: &[u8], expect: &CacheKey) -> Option<BlockBundle> {
    let mut d = Dec::new(bytes);
    if d.take(8)? != MAGIC {
        return None;
    }
    if d.u32()? != FORMAT_VERSION {
        return None;
    }
    let key = CacheKey {
        lo: d.u64()?,
        hi: d.u64()?,
    };
    if key != *expect {
        return None;
    }
    let len = d.u64()? as usize;
    let sum = d.u64()?;
    let payload = d.rest();
    if payload.len() != len || hash64(payload) != sum {
        return None;
    }
    decode_bundle(payload)
}

// ---------------------------------------------------------------------------
// Bundle (de)serialization. Little-endian, length-prefixed, no external deps.
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Defensive little-endian reader: every accessor returns `None` past the end.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn i32(&mut self) -> Option<i32> {
        self.u32().map(|v| v as i32)
    }
    fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }
    /// Length prefix for a sequence whose elements occupy ≥ `min_elem` bytes:
    /// rejects lengths that could not possibly fit in the remaining buffer, so
    /// a corrupt length cannot cause a huge allocation.
    fn len(&mut self, min_elem: usize) -> Option<usize> {
        let n = self.u64()? as usize;
        if n.checked_mul(min_elem.max(1))? > self.buf.len() - self.pos {
            return None;
        }
        Some(n)
    }
    fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn binop_code(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Add => 0,
        Sub => 1,
        Mul => 2,
        Div => 3,
        Rem => 4,
        And => 5,
        Or => 6,
        Xor => 7,
        Shl => 8,
        Shr => 9,
        Shru => 10,
        Slt => 11,
        Sle => 12,
        Seq => 13,
        Sne => 14,
        AddF => 15,
        SubF => 16,
        MulF => 17,
        DivF => 18,
        FLt => 19,
        FLe => 20,
        FEq => 21,
    }
}

fn binop_from(code: u8) -> Option<BinOp> {
    use BinOp::*;
    Some(match code {
        0 => Add,
        1 => Sub,
        2 => Mul,
        3 => Div,
        4 => Rem,
        5 => And,
        6 => Or,
        7 => Xor,
        8 => Shl,
        9 => Shr,
        10 => Shru,
        11 => Slt,
        12 => Sle,
        13 => Seq,
        14 => Sne,
        15 => AddF,
        16 => SubF,
        17 => MulF,
        18 => DivF,
        19 => FLt,
        20 => FLe,
        21 => FEq,
        _ => return None,
    })
}

fn unop_code(op: UnOp) -> u8 {
    use UnOp::*;
    match op {
        Neg => 0,
        Not => 1,
        Mov => 2,
        NegF => 3,
        AbsF => 4,
        SqrtF => 5,
        CvtIF => 6,
        CvtFI => 7,
    }
}

fn unop_from(code: u8) -> Option<UnOp> {
    use UnOp::*;
    Some(match code {
        0 => Neg,
        1 => Not,
        2 => Mov,
        3 => NegF,
        4 => AbsF,
        5 => SqrtF,
        6 => CvtIF,
        7 => CvtFI,
        _ => return None,
    })
}

fn put_src(out: &mut Vec<u8>, s: Src) {
    match s {
        Src::Reg(r) => {
            out.push(0);
            put_u16(out, r);
        }
        Src::Imm(imm) => {
            out.push(1);
            encode_imm(imm, out);
        }
        Src::PortIn => out.push(2),
    }
}

fn get_src(d: &mut Dec<'_>) -> Option<Src> {
    Some(match d.u8()? {
        0 => Src::Reg(d.u16()?),
        1 => Src::Imm(get_imm(d)?),
        2 => Src::PortIn,
        _ => return None,
    })
}

fn get_imm(d: &mut Dec<'_>) -> Option<Imm> {
    Some(match d.u8()? {
        0 => Imm::I(d.i32()?),
        1 => Imm::F(f32::from_bits(d.u32()?)),
        _ => return None,
    })
}

fn put_dst(out: &mut Vec<u8>, dst: Dst) {
    match dst {
        Dst::Reg(r) => {
            out.push(0);
            put_u16(out, r);
        }
        Dst::PortOut => out.push(1),
    }
}

fn get_dst(d: &mut Dec<'_>) -> Option<Dst> {
    Some(match d.u8()? {
        0 => Dst::Reg(d.u16()?),
        1 => Dst::PortOut,
        _ => return None,
    })
}

fn put_pinst(out: &mut Vec<u8>, inst: &PInst) {
    match inst {
        PInst::Alu { op, dst, a, b } => {
            out.push(0);
            match op {
                AluOp::Bin(o) => {
                    out.push(0);
                    out.push(binop_code(*o));
                }
                AluOp::Un(o) => {
                    out.push(1);
                    out.push(unop_code(*o));
                }
            }
            put_dst(out, *dst);
            put_src(out, *a);
            put_src(out, *b);
        }
        PInst::Load { dst, addr, offset } => {
            out.push(1);
            put_dst(out, *dst);
            put_src(out, *addr);
            put_u32(out, *offset as u32);
        }
        PInst::Store {
            value,
            addr,
            offset,
        } => {
            out.push(2);
            put_src(out, *value);
            put_src(out, *addr);
            put_u32(out, *offset as u32);
        }
        PInst::DLoad { dst, gaddr } => {
            out.push(3);
            put_dst(out, *dst);
            put_src(out, *gaddr);
        }
        PInst::DStore { gaddr, value } => {
            out.push(4);
            put_src(out, *gaddr);
            put_src(out, *value);
        }
        PInst::Jump(t) => {
            out.push(5);
            put_u64(out, *t as u64);
        }
        PInst::Bnez { cond, target } => {
            out.push(6);
            put_src(out, *cond);
            put_u64(out, *target as u64);
        }
        PInst::Beqz { cond, target } => {
            out.push(7);
            put_src(out, *cond);
            put_u64(out, *target as u64);
        }
        PInst::Halt => out.push(8),
        PInst::Nop => out.push(9),
    }
}

fn get_pinst(d: &mut Dec<'_>) -> Option<PInst> {
    Some(match d.u8()? {
        0 => {
            let op = match d.u8()? {
                0 => AluOp::Bin(binop_from(d.u8()?)?),
                1 => AluOp::Un(unop_from(d.u8()?)?),
                _ => return None,
            };
            PInst::Alu {
                op,
                dst: get_dst(d)?,
                a: get_src(d)?,
                b: get_src(d)?,
            }
        }
        1 => PInst::Load {
            dst: get_dst(d)?,
            addr: get_src(d)?,
            offset: d.i32()?,
        },
        2 => PInst::Store {
            value: get_src(d)?,
            addr: get_src(d)?,
            offset: d.i32()?,
        },
        3 => PInst::DLoad {
            dst: get_dst(d)?,
            gaddr: get_src(d)?,
        },
        4 => PInst::DStore {
            gaddr: get_src(d)?,
            value: get_src(d)?,
        },
        5 => PInst::Jump(d.u64()? as usize),
        6 => PInst::Bnez {
            cond: get_src(d)?,
            target: d.u64()? as usize,
        },
        7 => PInst::Beqz {
            cond: get_src(d)?,
            target: d.u64()? as usize,
        },
        8 => PInst::Halt,
        9 => PInst::Nop,
        _ => return None,
    })
}

fn dir_code(dir: Dir) -> u8 {
    dir.index() as u8
}

fn dir_from(code: u8) -> Option<Dir> {
    Dir::ALL.get(code as usize).copied()
}

fn put_ssrc(out: &mut Vec<u8>, s: SSrc) {
    match s {
        SSrc::Dir(dir) => {
            out.push(0);
            out.push(dir_code(dir));
        }
        SSrc::Proc => out.push(1),
        SSrc::Reg(r) => {
            out.push(2);
            out.push(r);
        }
    }
}

fn get_ssrc(d: &mut Dec<'_>) -> Option<SSrc> {
    Some(match d.u8()? {
        0 => SSrc::Dir(dir_from(d.u8()?)?),
        1 => SSrc::Proc,
        2 => SSrc::Reg(d.u8()?),
        _ => return None,
    })
}

fn put_sdst(out: &mut Vec<u8>, s: SDst) {
    match s {
        SDst::Dir(dir) => {
            out.push(0);
            out.push(dir_code(dir));
        }
        SDst::Proc => out.push(1),
        SDst::Reg(r) => {
            out.push(2);
            out.push(r);
        }
    }
}

fn get_sdst(d: &mut Dec<'_>) -> Option<SDst> {
    Some(match d.u8()? {
        0 => SDst::Dir(dir_from(d.u8()?)?),
        1 => SDst::Proc,
        2 => SDst::Reg(d.u8()?),
        _ => return None,
    })
}

fn put_alloc(out: &mut Vec<u8>, a: &AllocResult) {
    put_u64(out, a.insts.len() as u64);
    for i in &a.insts {
        put_pinst(out, i);
    }
    put_u64(out, a.prov.len() as u64);
    for p in &a.prov {
        put_u32(out, *p);
    }
    match a.cond_reg {
        Some(r) => {
            out.push(1);
            put_u16(out, r);
        }
        None => out.push(0),
    }
    put_u64(out, a.n_spilled as u64);
    put_u32(out, a.spill_slots);
}

fn get_alloc(d: &mut Dec<'_>) -> Option<AllocResult> {
    let n = d.len(1)?;
    let insts = (0..n).map(|_| get_pinst(d)).collect::<Option<Vec<_>>>()?;
    let n = d.len(4)?;
    let prov = (0..n).map(|_| d.u32()).collect::<Option<Vec<_>>>()?;
    let cond_reg = match d.u8()? {
        0 => None,
        1 => Some(d.u16()?),
        _ => return None,
    };
    Some(AllocResult {
        insts,
        prov,
        cond_reg,
        n_spilled: d.u64()? as usize,
        spill_slots: d.u32()?,
    })
}

fn put_predicted(out: &mut Vec<u8>, p: &PredictedBlock) {
    put_u64(out, p.makespan);
    put_u64(out, p.proc_ops.len() as u64);
    for ops in &p.proc_ops {
        put_u64(out, ops.len() as u64);
        for (cycle, kind) in ops {
            put_u64(out, *cycle);
            out.push(match kind {
                PredOpKind::Comp => 0,
                PredOpKind::Send => 1,
                PredOpKind::Recv => 2,
            });
        }
    }
    put_u64(out, p.route_cycles.len() as u64);
    for cycles in &p.route_cycles {
        put_u64(out, cycles.len() as u64);
        for c in cycles {
            put_u64(out, *c);
        }
    }
}

fn get_predicted(d: &mut Dec<'_>) -> Option<PredictedBlock> {
    let makespan = d.u64()?;
    let nt = d.len(8)?;
    let proc_ops = (0..nt)
        .map(|_| {
            let n = d.len(9)?;
            (0..n)
                .map(|_| {
                    let cycle = d.u64()?;
                    let kind = match d.u8()? {
                        0 => PredOpKind::Comp,
                        1 => PredOpKind::Send,
                        2 => PredOpKind::Recv,
                        _ => return None,
                    };
                    Some((cycle, kind))
                })
                .collect::<Option<Vec<_>>>()
        })
        .collect::<Option<Vec<_>>>()?;
    let nt = d.len(8)?;
    let route_cycles = (0..nt)
        .map(|_| {
            let n = d.len(8)?;
            (0..n).map(|_| d.u64()).collect::<Option<Vec<_>>>()
        })
        .collect::<Option<Vec<_>>>()?;
    Some(PredictedBlock {
        makespan,
        proc_ops,
        route_cycles,
    })
}

fn put_placement(out: &mut Vec<u8>, log: &PlacementLog) {
    out.push(match log.algorithm {
        "greedy-swap" => 1,
        "annealing" => 2,
        _ => 0,
    });
    put_u64(out, log.initial_cost as u64);
    put_u64(out, log.final_cost as u64);
    put_u64(out, log.steps.len() as u64);
    for s in &log.steps {
        put_u64(out, s.step as u64);
        put_u64(out, s.bins.0 as u64);
        put_u64(out, s.bins.1 as u64);
        put_u64(out, s.delta as u64);
    }
}

fn get_placement(d: &mut Dec<'_>) -> Option<PlacementLog> {
    let algorithm = match d.u8()? {
        0 => "identity",
        1 => "greedy-swap",
        2 => "annealing",
        _ => return None,
    };
    let initial_cost = d.i64()?;
    let final_cost = d.i64()?;
    let n = d.len(32)?;
    let steps = (0..n)
        .map(|_| {
            Some(PlacementStep {
                step: d.u64()? as usize,
                bins: (d.u64()? as usize, d.u64()? as usize),
                delta: d.i64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(PlacementLog {
        algorithm,
        initial_cost,
        final_cost,
        steps,
    })
}

fn put_report(out: &mut Vec<u8>, r: &BlockReport) {
    put_u64(out, r.n_nodes as u64);
    put_u64(out, r.n_clusters as u64);
    put_u64(out, r.n_comm_paths as u64);
    put_u64(out, r.makespan);
    put_u64(out, r.spills as u64);
    put_predicted(out, &r.predicted);
    put_placement(out, &r.placement);
}

fn get_report(d: &mut Dec<'_>) -> Option<BlockReport> {
    Some(BlockReport {
        n_nodes: d.u64()? as usize,
        n_clusters: d.u64()? as usize,
        n_comm_paths: d.u64()? as usize,
        makespan: d.u64()?,
        spills: d.u64()? as usize,
        predicted: get_predicted(d)?,
        placement: get_placement(d)?,
    })
}

/// Serializes a bundle to the versioned on-disk payload format.
pub fn encode_bundle(b: &BlockBundle) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    put_report(&mut out, &b.report);
    put_u64(&mut out, b.phys.len() as u64);
    for a in &b.phys {
        put_alloc(&mut out, a);
    }
    put_u64(&mut out, b.switch.len() as u64);
    for tile_ops in &b.switch {
        put_u64(&mut out, tile_ops.len() as u64);
        for (pairs, rec) in tile_ops {
            put_u64(&mut out, pairs.len() as u64);
            for (s, t) in pairs {
                put_ssrc(&mut out, *s);
                put_sdst(&mut out, *t);
            }
            put_u32(&mut out, *rec);
        }
    }
    match b.cond_producer {
        Some(t) => {
            out.push(1);
            put_u32(&mut out, t.index() as u32);
        }
        None => out.push(0),
    }
    put_u32(&mut out, b.cond_node);
    put_u64(&mut out, b.node_tile.len() as u64);
    for t in &b.node_tile {
        put_u32(&mut out, *t);
    }
    put_u64(&mut out, b.node_bin.len() as u64);
    for t in &b.node_bin {
        put_u32(&mut out, *t);
    }
    out
}

/// Inverse of [`encode_bundle`]; `None` on any malformed or trailing input.
pub fn decode_bundle(bytes: &[u8]) -> Option<BlockBundle> {
    let mut d = Dec::new(bytes);
    let bundle = decode_bundle_inner(&mut d)?;
    if !d.at_end() {
        return None;
    }
    Some(bundle)
}

fn decode_bundle_inner(d: &mut Dec<'_>) -> Option<BlockBundle> {
    let report = get_report(d)?;
    let n = d.len(8)?;
    let phys = (0..n).map(|_| get_alloc(d)).collect::<Option<Vec<_>>>()?;
    let n = d.len(8)?;
    let switch = (0..n)
        .map(|_| {
            let n_ops = d.len(12)?;
            (0..n_ops)
                .map(|_| {
                    let n_pairs = d.len(2)?;
                    let pairs = (0..n_pairs)
                        .map(|_| Some((get_ssrc(d)?, get_sdst(d)?)))
                        .collect::<Option<Vec<_>>>()?;
                    Some((pairs, d.u32()?))
                })
                .collect::<Option<Vec<_>>>()
        })
        .collect::<Option<Vec<_>>>()?;
    let cond_producer = match d.u8()? {
        0 => None,
        1 => Some(TileId::from_raw(d.u32()?)),
        _ => return None,
    };
    let cond_node = d.u32()?;
    let n = d.len(4)?;
    let node_tile = (0..n).map(|_| d.u32()).collect::<Option<Vec<_>>>()?;
    let n = d.len(4)?;
    let node_bin = (0..n).map(|_| d.u32()).collect::<Option<Vec<_>>>()?;
    Some(BlockBundle {
        report,
        phys,
        switch,
        cond_producer,
        cond_node,
        node_tile,
        node_bin,
    })
}

/// Round-trips a bundle through the payload codec (exposed for tests).
pub fn roundtrip_bundle(b: &BlockBundle) -> Option<BlockBundle> {
    decode_bundle(&encode_bundle(b))
}

// `cond_node` uses the same sentinel as provenance.
const _: () = assert!(NO_PROV == u32::MAX);

#[cfg(test)]
mod tests {
    use super::*;
    use raw_ir::builder::ProgramBuilder;

    fn sample_bundle() -> BlockBundle {
        BlockBundle {
            report: BlockReport {
                n_nodes: 3,
                n_clusters: 2,
                n_comm_paths: 1,
                makespan: 17,
                spills: 1,
                predicted: PredictedBlock {
                    makespan: 17,
                    proc_ops: vec![vec![(0, PredOpKind::Comp), (3, PredOpKind::Send)], vec![]],
                    route_cycles: vec![vec![4], vec![]],
                },
                placement: PlacementLog {
                    algorithm: "annealing",
                    initial_cost: 9,
                    final_cost: -3,
                    steps: vec![PlacementStep {
                        step: 5,
                        bins: (0, 1),
                        delta: -12,
                    }],
                },
            },
            phys: vec![AllocResult {
                insts: vec![
                    PInst::Alu {
                        op: AluOp::Bin(BinOp::MulF),
                        dst: Dst::Reg(3),
                        a: Src::Reg(1),
                        b: Src::Imm(Imm::F(1.5)),
                    },
                    PInst::Load {
                        dst: Dst::PortOut,
                        addr: Src::Reg(0),
                        offset: -4,
                    },
                    PInst::Halt,
                ],
                prov: vec![0, 1, NO_PROV],
                cond_reg: Some(7),
                n_spilled: 1,
                spill_slots: 2,
            }],
            switch: vec![vec![(
                vec![
                    (SSrc::Proc, SDst::Dir(Dir::West)),
                    (SSrc::Dir(Dir::North), SDst::Proc),
                ],
                2,
            )]],
            cond_producer: Some(TileId::from_raw(1)),
            cond_node: 2,
            node_tile: vec![0, 1, 0],
            node_bin: vec![0, 1, u32::MAX],
        }
    }

    #[test]
    fn bundle_roundtrips() {
        let b = sample_bundle();
        assert_eq!(roundtrip_bundle(&b).expect("roundtrip"), b);
    }

    #[test]
    fn canonical_bytes_ignore_global_value_numbering() {
        // The same computation built twice, the second time after burning a few
        // ValueIds in another block, must hash identically.
        let build = |pad: usize| {
            let mut b = ProgramBuilder::new("canon");
            let out = b.var_i32("out", 0);
            let next = b.new_block("body");
            for i in 0..pad {
                let pad_var = b.var_i32(format!("pad{i}"), 0);
                let v = b.const_i32(1);
                b.write_var(pad_var, v);
            }
            b.jump(next);
            b.switch_to(next);
            let x = b.const_i32(6);
            let y = b.const_i32(7);
            let p = b.mul(x, y);
            b.write_var(out, p);
            b.halt();
            b.finish().unwrap()
        };
        let a = build(0);
        let b = build(3);
        let block_a = a.block(raw_ir::BlockId::from_raw(1));
        let block_b = b.block(raw_ir::BlockId::from_raw(1));
        assert_eq!(
            canonical_block_bytes(block_a),
            canonical_block_bytes(block_b)
        );
    }

    #[test]
    fn key_separates_options_and_config() {
        let mut b = ProgramBuilder::new("key");
        let out = b.var_i32("out", 0);
        let x = b.const_i32(2);
        b.write_var(out, x);
        b.halt();
        let p = b.finish().unwrap();
        let block = p.block(p.entry);
        let bytes = canonical_block_bytes(block);

        let config = MachineConfig::square(4);
        let layout = DataLayout::build(&p, &config);
        let base = CompilerOptions::default();
        let k1 = KeyContext::new(&layout, &config, &base).key(&bytes);
        // Thread count must NOT affect the key.
        let threaded = CompilerOptions { threads: 8, ..base };
        assert_eq!(k1, KeyContext::new(&layout, &config, &threaded).key(&bytes));
        // Any semantic knob must.
        let folded = CompilerOptions {
            fold_communication: false,
            ..base
        };
        assert_ne!(k1, KeyContext::new(&layout, &config, &folded).key(&bytes));
        let mut small = config.clone();
        small.gprs = 8;
        let layout2 = DataLayout::build(&p, &small);
        assert_ne!(k1, KeyContext::new(&layout2, &small, &base).key(&bytes));
    }

    #[test]
    fn memory_cache_evicts_fifo() {
        let cache = BlockCache::with_capacity(2);
        let bundle = std::sync::Arc::new(sample_bundle());
        let key = |i: u64| CacheKey { lo: i, hi: i };
        assert_eq!(cache.put(key(1), bundle.clone()).entries, 0);
        assert_eq!(cache.put(key(2), bundle.clone()).entries, 0);
        assert_eq!(cache.put(key(3), bundle.clone()).entries, 1); // evicts key 1
        assert!(cache.get(&key(1)).0.is_none());
        assert!(cache.get(&key(2)).0.is_some());
        assert!(cache.get(&key(3)).0.is_some());
    }

    #[test]
    fn memory_cache_enforces_byte_budget() {
        let bundle = std::sync::Arc::new(sample_bundle());
        let size = encode_bundle(&bundle).len();
        // Budget fits exactly two encoded bundles; capacity is not the limiter.
        let cache = BlockCache::with_budget(16, 2 * size);
        let key = |i: u64| CacheKey { lo: i, hi: i };
        assert_eq!(cache.put(key(1), bundle.clone()), Evicted::default());
        assert_eq!(cache.put(key(2), bundle.clone()), Evicted::default());
        assert_eq!(cache.resident_bytes(), 2 * size);
        let ev = cache.put(key(3), bundle.clone()); // evicts key 1 by bytes
        assert_eq!(
            ev,
            Evicted {
                entries: 1,
                bytes: size as u64
            }
        );
        assert!(cache.get(&key(1)).0.is_none());
        assert!(cache.get(&key(2)).0.is_some());
        assert!(cache.get(&key(3)).0.is_some());
        assert_eq!(cache.resident_bytes(), 2 * size);
    }
}

//! Register allocation with spilling.
//!
//! Values are block-local, so allocation runs per (tile, block) over
//! straight-line code: a classic linear scan. When the allocator runs out of
//! physical registers it spills the live range with the furthest end to a
//! per-tile spill area in local memory ("spill everywhere": spilled values are
//! stored at their definition and reloaded at each use through two reserved
//! temporary registers).
//!
//! As in the paper (§4.2), the event scheduler runs *before* allocation and is
//! oblivious to register pressure; exposing maximal parallelism lengthens live
//! ranges and can force spills — visible in the fpppp-kernel experiment
//! (Figure 8), where the `inf-reg` machine configuration out-performs the
//! 32-register baseline precisely because this allocator no longer spills.

use raw_ir::Imm;
use raw_machine::isa::{Dst, PInst, Src};
use std::collections::HashMap;

/// Reserved temporaries for spill reloads (physical registers 0 and 1).
const TMP0: u16 = 0;
const TMP1: u16 = 1;
const RESERVED: u16 = 2;

/// Result of allocating one tile-block.
#[derive(Clone, Debug, PartialEq)]
pub struct AllocResult {
    /// Rewritten instructions over physical registers.
    pub insts: Vec<PInst>,
    /// Provenance parallel to `insts`: the task-graph node each instruction
    /// serves. Spill stores and reloads inherit the node of the instruction
    /// they were inserted for.
    pub prov: Vec<u32>,
    /// Physical register holding the branch condition (if requested live-out).
    pub cond_reg: Option<u16>,
    /// Number of distinct virtual registers spilled.
    pub n_spilled: usize,
    /// Spill slots consumed (words, from the spill base).
    pub spill_slots: u32,
}

/// Allocates `n_vregs` virtual registers in `insts` to `gprs` physical
/// registers, spilling to local memory starting at `spill_base`.
///
/// `prov` is the per-instruction provenance (task-graph node ids) parallel to
/// `insts`; the result carries a vector parallel to the rewritten stream, with
/// inserted spill traffic attributed to the instruction that caused it.
///
/// `cond_vreg`, when present, is kept live through the end of the block (it
/// feeds the terminator's branch).
///
/// # Panics
///
/// Panics if `gprs` leaves no allocatable registers (needs at least 3), or if
/// `prov` is not parallel to `insts`.
pub fn allocate(
    insts: Vec<PInst>,
    prov: Vec<u32>,
    n_vregs: u16,
    cond_vreg: Option<u16>,
    gprs: u32,
    spill_base: u32,
) -> AllocResult {
    assert!(
        gprs > RESERVED as u32,
        "need at least {} registers",
        RESERVED + 1
    );
    assert_eq!(prov.len(), insts.len(), "provenance must parallel the code");
    let avail = (gprs - RESERVED as u32).min(u16::MAX as u32) as u16;

    // Fast path: everything fits (also the `inf-reg` configuration). The
    // rewrite is 1:1, so provenance passes through untouched.
    if n_vregs <= avail {
        let mapped = rewrite(insts, &|v| Loc::Phys(v + RESERVED));
        return AllocResult {
            cond_reg: cond_vreg.map(|v| v + RESERVED),
            insts: mapped,
            prov,
            n_spilled: 0,
            spill_slots: 0,
        };
    }

    // Live intervals over instruction positions.
    let n = n_vregs as usize;
    let mut start = vec![usize::MAX; n];
    let mut end = vec![0usize; n];
    for (pos, inst) in insts.iter().enumerate() {
        for s in inst.sources() {
            if let Src::Reg(v) = s {
                let v = v as usize;
                start[v] = start[v].min(pos);
                end[v] = end[v].max(pos);
            }
        }
        if let Some(Dst::Reg(v)) = inst.dst() {
            let v = v as usize;
            start[v] = start[v].min(pos);
            end[v] = end[v].max(pos);
        }
    }
    if let Some(c) = cond_vreg {
        end[c as usize] = insts.len();
        if start[c as usize] == usize::MAX {
            start[c as usize] = 0;
        }
    }

    // Linear scan.
    let mut order: Vec<usize> = (0..n).filter(|&v| start[v] != usize::MAX).collect();
    order.sort_by_key(|&v| (start[v], v));
    let mut free: Vec<u16> = (RESERVED..RESERVED + avail).rev().collect();
    let mut active: Vec<usize> = Vec::new(); // vregs, kept sorted by end
    let mut loc: HashMap<u16, Loc> = HashMap::new();

    for v in order {
        // Expire.
        active.retain(|&a| {
            if end[a] < start[v] {
                if let Some(Loc::Phys(p)) = loc.get(&(a as u16)) {
                    free.push(*p);
                }
                false
            } else {
                true
            }
        });
        if let Some(p) = free.pop() {
            loc.insert(v as u16, Loc::Phys(p));
            active.push(v);
        } else {
            // Spill the live range with the furthest end (it or v).
            let &victim = active
                .iter()
                .max_by_key(|&&a| end[a])
                .expect("no registers and nothing active");
            if end[victim] > end[v] {
                let p = match loc[&(victim as u16)] {
                    Loc::Phys(p) => p,
                    Loc::Spill(_) => unreachable!("active ranges hold registers"),
                };
                loc.insert(victim as u16, Loc::Spill(0)); // slot assigned below
                active.retain(|&a| a != victim);
                loc.insert(v as u16, Loc::Phys(p));
                active.push(v);
            } else {
                loc.insert(v as u16, Loc::Spill(0));
            }
        }
    }

    // Assign spill slots densely.
    let mut slots = 0u32;
    let mut spilled: Vec<u16> = loc
        .iter()
        .filter(|(_, l)| matches!(l, Loc::Spill(_)))
        .map(|(&v, _)| v)
        .collect();
    spilled.sort_unstable();
    for &v in &spilled {
        loc.insert(v, Loc::Spill(spill_base + slots));
        slots += 1;
    }
    let n_spilled = spilled.len();

    // Rewrite with reloads and spill stores.
    let lookup = |v: u16| -> Loc { *loc.get(&v).unwrap_or(&Loc::Phys(RESERVED)) };
    let mut out = Vec::with_capacity(insts.len());
    let mut out_prov: Vec<u32> = Vec::with_capacity(prov.len());
    for (pos, inst) in insts.into_iter().enumerate() {
        let mut tmp_next = TMP0;
        let mut map_src = |s: Src, out: &mut Vec<PInst>| -> Src {
            match s {
                Src::Reg(v) => match lookup(v) {
                    Loc::Phys(p) => Src::Reg(p),
                    Loc::Spill(addr) => {
                        let t = tmp_next;
                        tmp_next += 1;
                        debug_assert!(t <= TMP1);
                        out.push(PInst::Load {
                            dst: Dst::Reg(t),
                            addr: Src::Imm(Imm::I(addr as i32)),
                            offset: 0,
                        });
                        Src::Reg(t)
                    }
                },
                other => other,
            }
        };
        let rewritten = match inst {
            PInst::Alu { op, dst, a, b } => {
                let a = map_src(a, &mut out);
                let b = map_src(b, &mut out);
                let (dst, post) = map_dst(dst, &lookup);
                out.push(PInst::Alu { op, dst, a, b });
                post
            }
            PInst::Load { dst, addr, offset } => {
                let addr = map_src(addr, &mut out);
                let (dst, post) = map_dst(dst, &lookup);
                out.push(PInst::Load { dst, addr, offset });
                post
            }
            PInst::Store {
                value,
                addr,
                offset,
            } => {
                let value = map_src(value, &mut out);
                let addr = map_src(addr, &mut out);
                out.push(PInst::Store {
                    value,
                    addr,
                    offset,
                });
                None
            }
            PInst::DLoad { dst, gaddr } => {
                let gaddr = map_src(gaddr, &mut out);
                let (dst, post) = map_dst(dst, &lookup);
                out.push(PInst::DLoad { dst, gaddr });
                post
            }
            PInst::DStore { gaddr, value } => {
                let gaddr = map_src(gaddr, &mut out);
                let value = map_src(value, &mut out);
                out.push(PInst::DStore { gaddr, value });
                None
            }
            other => {
                out.push(other);
                None
            }
        };
        if let Some(store) = rewritten {
            out.push(store);
        }
        // Reloads before and the spill store after all serve this instruction.
        out_prov.resize(out.len(), prov[pos]);
    }

    // Branch condition: reload if it was spilled.
    let cond_reg = cond_vreg.map(|c| match lookup(c) {
        Loc::Phys(p) => p,
        Loc::Spill(addr) => {
            out.push(PInst::Load {
                dst: Dst::Reg(TMP0),
                addr: Src::Imm(Imm::I(addr as i32)),
                offset: 0,
            });
            TMP0
        }
    });
    out_prov.resize(out.len(), crate::provenance::NO_PROV);

    AllocResult {
        insts: out,
        prov: out_prov,
        cond_reg,
        n_spilled,
        spill_slots: slots,
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    Phys(u16),
    Spill(u32),
}

/// Maps a destination; spilled destinations write TMP0 and store afterwards.
fn map_dst(dst: Dst, lookup: &dyn Fn(u16) -> Loc) -> (Dst, Option<PInst>) {
    match dst {
        Dst::Reg(v) => match lookup(v) {
            Loc::Phys(p) => (Dst::Reg(p), None),
            Loc::Spill(addr) => (
                Dst::Reg(TMP0),
                Some(PInst::Store {
                    value: Src::Reg(TMP0),
                    addr: Src::Imm(Imm::I(addr as i32)),
                    offset: 0,
                }),
            ),
        },
        Dst::PortOut => (Dst::PortOut, None),
    }
}

fn rewrite(insts: Vec<PInst>, map: &dyn Fn(u16) -> Loc) -> Vec<PInst> {
    let phys = |v: u16| match map(v) {
        Loc::Phys(p) => p,
        Loc::Spill(_) => unreachable!("fast path never spills"),
    };
    let map_src = |s: Src| match s {
        Src::Reg(v) => Src::Reg(phys(v)),
        other => other,
    };
    let map_dst = |d: Dst| match d {
        Dst::Reg(v) => Dst::Reg(phys(v)),
        other => other,
    };
    insts
        .into_iter()
        .map(|inst| match inst {
            PInst::Alu { op, dst, a, b } => PInst::Alu {
                op,
                dst: map_dst(dst),
                a: map_src(a),
                b: map_src(b),
            },
            PInst::Load { dst, addr, offset } => PInst::Load {
                dst: map_dst(dst),
                addr: map_src(addr),
                offset,
            },
            PInst::Store {
                value,
                addr,
                offset,
            } => PInst::Store {
                value: map_src(value),
                addr: map_src(addr),
                offset,
            },
            PInst::DLoad { dst, gaddr } => PInst::DLoad {
                dst: map_dst(dst),
                gaddr: map_src(gaddr),
            },
            PInst::DStore { gaddr, value } => PInst::DStore {
                gaddr: map_src(gaddr),
                value: map_src(value),
            },
            other => other,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_ir::{BinOp, UnOp};
    use raw_machine::isa::AluOp;

    fn li(dst: u16, v: i32) -> PInst {
        PInst::Alu {
            op: AluOp::Un(UnOp::Mov),
            dst: Dst::Reg(dst),
            a: Src::Imm(Imm::I(v)),
            b: Src::Imm(Imm::I(0)),
        }
    }

    fn add(dst: u16, a: u16, b: u16) -> PInst {
        PInst::Alu {
            op: AluOp::Bin(BinOp::Add),
            dst: Dst::Reg(dst),
            a: Src::Reg(a),
            b: Src::Reg(b),
        }
    }

    /// Identity provenance for `n` instructions (tests only care about shape).
    fn provs(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn fast_path_shifts_by_reserved() {
        let r = allocate(vec![li(0, 5), add(1, 0, 0)], provs(2), 2, Some(1), 32, 100);
        assert_eq!(r.prov, vec![0, 1], "fast path passes provenance through");
        assert_eq!(r.n_spilled, 0);
        assert_eq!(r.cond_reg, Some(3));
        assert!(matches!(
            r.insts[1],
            PInst::Alu {
                dst: Dst::Reg(3),
                a: Src::Reg(2),
                ..
            }
        ));
    }

    #[test]
    fn spill_and_reload_round_trip() {
        // 6 simultaneously live values with only 3 + 2 reserved registers.
        let mut insts = Vec::new();
        for v in 0..6u16 {
            insts.push(li(v, v as i32 * 10));
        }
        // Sum them all pairwise so every value is used at the end.
        insts.push(add(6, 0, 1));
        insts.push(add(7, 2, 3));
        insts.push(add(8, 4, 5));
        insts.push(add(9, 6, 7));
        insts.push(add(10, 8, 9));
        let n = insts.len();
        let r = allocate(insts, provs(n), 11, None, 5, 200);
        assert!(r.n_spilled > 0, "must spill with 3 allocatable registers");
        assert_eq!(
            r.prov.len(),
            r.insts.len(),
            "provenance must stay parallel under spilling"
        );
        assert!(r.spill_slots as usize >= r.n_spilled.min(1));
        // All register numbers in the output are physical (< 5).
        for inst in &r.insts {
            for s in inst.sources() {
                if let Src::Reg(p) = s {
                    assert!(p < 5, "virtual register leaked: {inst:?}");
                }
            }
            if let Some(Dst::Reg(p)) = inst.dst() {
                assert!(p < 5, "virtual register leaked: {inst:?}");
            }
        }
        // Spill traffic exists.
        assert!(r
            .insts
            .iter()
            .any(|i| matches!(i, PInst::Store { addr: Src::Imm(Imm::I(a)), .. } if *a >= 200)));
        assert!(r
            .insts
            .iter()
            .any(|i| matches!(i, PInst::Load { addr: Src::Imm(Imm::I(a)), .. } if *a >= 200)));
    }

    #[test]
    fn spilled_condition_is_reloaded_at_end() {
        // Force the condition value to spill by giving it the longest range.
        let mut insts = vec![li(0, 1)];
        for v in 1..8u16 {
            insts.push(li(v, v as i32));
        }
        for v in 1..8u16 {
            insts.push(add(v + 7, v, v));
        }
        let n = insts.len();
        let r = allocate(insts, provs(n), 15, Some(0), 4, 300);
        let cond = r.cond_reg.unwrap();
        assert!(cond < 4);
        // If spilled, the last instruction is a reload into TMP0.
        if r.n_spilled > 0 && cond == TMP0 {
            assert!(matches!(r.insts.last(), Some(PInst::Load { .. })));
        }
    }

    #[test]
    fn semantics_preserved_under_spilling() {
        // Execute both versions on a bare processor and compare the final
        // store: ((1+2) + (3+4)) + 5·6 = 40.
        use raw_machine::asm::ProcAsm;
        use raw_machine::channel::Channel;
        use raw_machine::dynnet::DynEndpoint;
        use raw_machine::processor::Processor;
        use raw_machine::MachineConfig;

        let virt = vec![
            li(0, 1),
            li(1, 2),
            li(2, 3),
            li(3, 4),
            li(4, 5),
            li(5, 6),
            add(6, 0, 1),
            add(7, 2, 3),
            PInst::Alu {
                op: AluOp::Bin(BinOp::Mul),
                dst: Dst::Reg(8),
                a: Src::Reg(4),
                b: Src::Reg(5),
            },
            add(9, 6, 7),
            add(10, 9, 8),
            PInst::Store {
                value: Src::Reg(10),
                addr: Src::Imm(Imm::I(0)),
                offset: 0,
            },
        ];

        let run = |code: Vec<PInst>| -> u32 {
            let mut asm = ProcAsm::new();
            for i in code {
                asm.push(i);
            }
            asm.halt();
            let code = asm.finish();
            let config = MachineConfig::grid(1, 1);
            let mut proc = Processor::new(0, 32);
            let mut mem = vec![0u32; 512];
            let mut pin = Channel::new(4);
            let mut pout = Channel::new(4);
            let mut ep = DynEndpoint::new(16);
            let mut cycle = 0;
            while !proc.halted() && cycle < 10_000 {
                proc.step(
                    &code, cycle, &config, &mut mem, &mut pin, &mut pout, &mut ep,
                );
                cycle += 1;
            }
            mem[0]
        };

        let n = virt.len();
        let expected = run(allocate(virt.clone(), provs(n), 11, None, 32, 256).insts);
        let spilled = allocate(virt, provs(n), 11, None, 4, 256);
        assert!(spilled.n_spilled > 0);
        assert_eq!(run(spilled.insts), expected);
        assert_eq!(expected, 40);
    }
}

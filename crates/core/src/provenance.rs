//! End-to-end provenance: joining machine-level events back to source lines.
//!
//! Every task-graph node keeps the [`SourceSpan`] its IR instruction was
//! lowered from (stamped by the front end, preserved by unrolling, renaming,
//! and optimization). Code generation and register allocation carry a node id
//! alongside every emitted machine instruction, and the linker converts those
//! ids into per-tile **pc → provenance record** tables for both the processor
//! and the switch instruction streams. A trace consumer can then attribute any
//! runtime event — issue, stall, route — to the source line that caused it.
//!
//! Records are identified by a dense `u32` index into [`ProvenanceMap::records`];
//! [`NO_PROV`] marks machine instructions with no source counterpart (jumps,
//! halts, the spilled-condition reload).

use raw_ir::{InstKind, SourceSpan, ValueId};

/// Sentinel provenance id: "no source-level origin".
pub const NO_PROV: u32 = u32::MAX;

/// Provenance of one task-graph node: where it came from and where the
/// compiler put it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvRecord {
    /// Source position the IR instruction was lowered from (`SourceSpan::NONE`
    /// for compiler-synthesized instructions).
    pub span: SourceSpan,
    /// The value the node defines, if any.
    pub value: Option<ValueId>,
    /// Basic-block index (program order).
    pub block: u32,
    /// Task-graph node id within the block.
    pub node: u32,
    /// Tile the partitioner assigned the node to.
    pub tile: u32,
    /// Placement bin the node's cluster was merged into (`u32::MAX` when the
    /// block was empty). Joins against the block's
    /// [`PlacementLog`](crate::partition::PlacementLog) to recover the anneal
    /// step that put the node on its tile.
    pub bin: u32,
    /// Short operation mnemonic for display.
    pub kind: &'static str,
}

/// Whole-program provenance tables produced by [`compile`](crate::compile).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProvenanceMap {
    /// One record per (block, task-graph node), blocks in program order and
    /// nodes in graph order within each block.
    pub records: Vec<ProvRecord>,
    /// Base record index of each block: block `b`'s node `n` is record
    /// `block_base[b] + n`.
    pub block_base: Vec<u32>,
    /// Per tile: processor pc → record index (or [`NO_PROV`]), parallel to the
    /// linked processor instruction stream.
    pub proc_pc: Vec<Vec<u32>>,
    /// Per tile: switch pc → record index (or [`NO_PROV`]), parallel to the
    /// linked switch instruction stream.
    pub switch_pc: Vec<Vec<u32>>,
}

impl ProvenanceMap {
    /// Record behind processor instruction `pc` on `tile`, if any.
    pub fn proc_record(&self, tile: usize, pc: usize) -> Option<&ProvRecord> {
        let id = *self.proc_pc.get(tile)?.get(pc)?;
        self.records.get(id as usize)
    }

    /// Record behind switch instruction `pc` on `tile`, if any.
    pub fn switch_record(&self, tile: usize, pc: usize) -> Option<&ProvRecord> {
        let id = *self.switch_pc.get(tile)?.get(pc)?;
        self.records.get(id as usize)
    }

    /// Record id behind processor instruction `pc` on `tile` ([`NO_PROV`] when
    /// out of range or unattributed).
    pub fn proc_id(&self, tile: usize, pc: usize) -> u32 {
        self.proc_pc
            .get(tile)
            .and_then(|v| v.get(pc))
            .copied()
            .unwrap_or(NO_PROV)
    }

    /// Record id behind switch instruction `pc` on `tile` ([`NO_PROV`] when
    /// out of range or unattributed).
    pub fn switch_id(&self, tile: usize, pc: usize) -> u32 {
        self.switch_pc
            .get(tile)
            .and_then(|v| v.get(pc))
            .copied()
            .unwrap_or(NO_PROV)
    }
}

/// Display mnemonic for an IR operation.
pub fn mnemonic(kind: &InstKind) -> &'static str {
    use raw_ir::{BinOp, UnOp};
    match kind {
        InstKind::Const(_) => "const",
        InstKind::Un(UnOp::Mov, _) => "mov",
        InstKind::Un(UnOp::Neg, _) => "neg",
        InstKind::Un(UnOp::Not, _) => "not",
        InstKind::Un(UnOp::NegF, _) => "negf",
        InstKind::Un(UnOp::AbsF, _) => "absf",
        InstKind::Un(UnOp::SqrtF, _) => "sqrtf",
        InstKind::Un(UnOp::CvtIF, _) => "cvtif",
        InstKind::Un(UnOp::CvtFI, _) => "cvtfi",
        InstKind::Bin(BinOp::Add, ..) => "add",
        InstKind::Bin(BinOp::Sub, ..) => "sub",
        InstKind::Bin(BinOp::Mul, ..) => "mul",
        InstKind::Bin(BinOp::Div, ..) => "div",
        InstKind::Bin(BinOp::Rem, ..) => "rem",
        InstKind::Bin(BinOp::And, ..) => "and",
        InstKind::Bin(BinOp::Or, ..) => "or",
        InstKind::Bin(BinOp::Xor, ..) => "xor",
        InstKind::Bin(BinOp::Shl, ..) => "shl",
        InstKind::Bin(BinOp::Shr, ..) => "shr",
        InstKind::Bin(BinOp::Shru, ..) => "shru",
        InstKind::Bin(BinOp::Slt, ..) => "slt",
        InstKind::Bin(BinOp::Sle, ..) => "sle",
        InstKind::Bin(BinOp::Seq, ..) => "seq",
        InstKind::Bin(BinOp::Sne, ..) => "sne",
        InstKind::Bin(BinOp::FLt, ..) => "flt",
        InstKind::Bin(BinOp::FLe, ..) => "fle",
        InstKind::Bin(BinOp::FEq, ..) => "feq",
        InstKind::Bin(BinOp::AddF, ..) => "addf",
        InstKind::Bin(BinOp::SubF, ..) => "subf",
        InstKind::Bin(BinOp::MulF, ..) => "mulf",
        InstKind::Bin(BinOp::DivF, ..) => "divf",
        InstKind::Load { .. } => "load",
        InstKind::Store { .. } => "store",
        InstKind::ReadVar(_) => "rdvar",
        InstKind::WriteVar(..) => "wrvar",
    }
}

//! Data partitioning and memory layout (paper §3.3 "data partitioner" and §5).
//!
//! Every persistent scalar variable is assigned a **home tile** (round-robin,
//! as in the paper's current data partitioner). Arrays are **low-order
//! interleaved element-wise**: element `k` of an array lives on tile
//! `k mod N` at local word `base + k / N`. All tiles use the same local base
//! address for a given array, which makes the interleaved global address of
//! element `k` simply `base · N + k` (paper Figure 7).
//!
//! Arrays are classified **statically accessed** or **dynamically accessed**
//! at whole-program granularity: if any reference to an array anywhere in the
//! program is not statically analyzable, *all* references to it are compiled
//! as dynamic-network accesses and pinned to a single issuing tile. This is
//! the conservative choice the paper describes in §5.1: it keeps every pair of
//! potentially aliasing references totally ordered (by the issuing tile's
//! instruction stream) without cross-tile synchronization.

use raw_ir::{ArrayId, InstKind, MemHome, Program, VarId};
use raw_machine::{MachineConfig, TileId};

/// How all references to an array are compiled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayClass {
    /// Every reference has a compile-time home tile; accesses ride the static
    /// network by pinning each access to its element's home tile.
    Static,
    /// At least one reference is unanalyzable; every reference goes over the
    /// dynamic network, issued from the given tile.
    Dynamic {
        /// The tile from which all dynamic accesses to this array issue.
        issue_tile: TileId,
    },
}

/// The complete data layout for one (program, machine) pair.
///
/// Layout operates in **slot space**: `n_tiles` is the number of *live* tiles
/// (a power of two), and every `k % n_tiles` / `k >> tile_shift` computation
/// is over slots. `live` maps each slot to the physical tile that hosts it;
/// with no faulty mask it is the identity and slot == physical tile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataLayout {
    /// Number of *live* tiles — the size of slot space.
    pub n_tiles: u32,
    /// Physical tile hosting each slot, ascending; `live.len() == n_tiles`.
    pub live: Vec<TileId>,
    /// Home tile per variable.
    pub var_home: Vec<TileId>,
    /// Local word address of each variable's slot (on its home tile).
    pub var_addr: Vec<u32>,
    /// Local base word address of each array (identical on every tile).
    pub array_base: Vec<u32>,
    /// Per-array access classification.
    pub array_class: Vec<ArrayClass>,
    /// First local word address available for spill slots.
    pub spill_base: u32,
}

impl DataLayout {
    /// Computes the layout: round-robin variable homes, sequential array
    /// bases, and the global static/dynamic array classification.
    pub fn build(program: &Program, config: &MachineConfig) -> Self {
        let live = config.live_tiles();
        let n = live.len() as u32;
        assert!(
            n.is_power_of_two(),
            "low-order interleaving needs 2^k live tiles"
        );

        let var_home = (0..program.vars.len())
            .map(|i| live[i % n as usize])
            .collect();
        let var_addr = (0..program.vars.len()).map(|i| i as u32).collect();

        let mut next = program.vars.len() as u32;
        let mut array_base = Vec::with_capacity(program.arrays.len());
        for a in &program.arrays {
            array_base.push(next);
            // Per-tile segment: enough words for the elements this tile owns.
            next += a.len().div_ceil(n).max(1);
        }

        // Classification: an array is dynamic if any reference to it anywhere
        // is marked MemHome::Dynamic.
        let mut dynamic = vec![false; program.arrays.len()];
        for (_, block) in program.iter_blocks() {
            for inst in &block.insts {
                match inst.kind {
                    InstKind::Load { array, home, .. } | InstKind::Store { array, home, .. }
                        if home == MemHome::Dynamic =>
                    {
                        dynamic[array.index()] = true;
                    }
                    _ => {}
                }
            }
        }
        let mut dyn_count = 0u32;
        let array_class = dynamic
            .iter()
            .map(|&d| {
                if d {
                    let tile = live[(dyn_count % n) as usize];
                    dyn_count += 1;
                    ArrayClass::Dynamic { issue_tile: tile }
                } else {
                    ArrayClass::Static
                }
            })
            .collect();

        DataLayout {
            n_tiles: n,
            live,
            var_home,
            var_addr,
            array_base,
            array_class,
            spill_base: next,
        }
    }

    /// Home tile of a variable.
    pub fn var_home(&self, v: VarId) -> TileId {
        self.var_home[v.index()]
    }

    /// Local slot address of a variable (valid on its home tile).
    pub fn var_addr(&self, v: VarId) -> u32 {
        self.var_addr[v.index()]
    }

    /// Local base address of an array (same on every tile).
    pub fn array_base(&self, a: ArrayId) -> u32 {
        self.array_base[a.index()]
    }

    /// Home tile of array element `k` under low-order interleaving over the
    /// live tiles.
    pub fn element_home(&self, k: u32) -> TileId {
        self.live[(k % self.n_tiles) as usize]
    }

    /// True when slot space is the identity map onto physical tiles (no
    /// faulty mask in effect).
    pub fn identity_homes(&self) -> bool {
        self.live.iter().enumerate().all(|(i, t)| t.index() == i)
    }

    /// Local word address of array element `k` on its home tile.
    pub fn element_local(&self, a: ArrayId, k: u32) -> u32 {
        self.array_base(a) + k / self.n_tiles
    }

    /// log2(number of tiles): the shift used in address arithmetic.
    pub fn tile_shift(&self) -> u32 {
        self.n_tiles.trailing_zeros()
    }

    /// The effective [`ArrayClass`] of an array.
    pub fn class(&self, a: ArrayId) -> ArrayClass {
        self.array_class[a.index()]
    }
}

/// Builds the per-tile initial memory images (variable initials on home tiles,
/// interleaved array initials) for loading into a [`raw_machine::Machine`].
pub fn initial_memory_images(program: &Program, layout: &DataLayout) -> Vec<Vec<(u32, u32)>> {
    // Indexed by *physical* tile: under a faulty mask, live tiles can have
    // indices well past the slot count.
    let n = layout.live.iter().map(|t| t.index() + 1).max().unwrap_or(1);
    let mut images: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for (i, var) in program.vars.iter().enumerate() {
        let v = VarId::from_raw(i as u32);
        images[layout.var_home(v).index()].push((layout.var_addr(v), var.init.to_bits()));
    }
    for (i, arr) in program.arrays.iter().enumerate() {
        let a = ArrayId::from_raw(i as u32);
        for k in 0..arr.len() {
            let home = layout.element_home(k);
            let addr = layout.element_local(a, k);
            images[home.index()].push((addr, arr.init_value(k).to_bits()));
        }
    }
    images
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_ir::builder::ProgramBuilder;
    use raw_ir::{Imm, Ty};

    fn program_with(home_a: MemHome, home_b: MemHome) -> Program {
        let mut b = ProgramBuilder::new("t");
        let _x = b.var_i32("x", 7);
        let _y = b.var_f32("y", 1.5);
        let arr = b.array("A", Ty::I32, &[10]);
        b.set_array_init(arr, (0..10).map(Imm::I).collect());
        let brr = b.array("B", Ty::I32, &[4]);
        let i0 = b.const_i32(0);
        let v = b.load(arr, i0, home_a);
        b.store(brr, i0, v, home_b);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn round_robin_homes_and_slots() {
        let p = program_with(MemHome::Static(0), MemHome::Static(0));
        let layout = DataLayout::build(&p, &MachineConfig::square(4));
        assert_eq!(layout.var_home[0], TileId::from_raw(0));
        assert_eq!(layout.var_home[1], TileId::from_raw(1));
        assert_eq!(layout.var_addr, vec![0, 1]);
        // Arrays packed after the two var slots: A needs ceil(10/4)=3 words.
        assert_eq!(layout.array_base, vec![2, 5]);
        assert_eq!(layout.spill_base, 6);
    }

    #[test]
    fn interleaving_math() {
        let p = program_with(MemHome::Static(0), MemHome::Static(0));
        let layout = DataLayout::build(&p, &MachineConfig::square(4));
        let a = p.array_by_name("A").unwrap();
        assert_eq!(layout.element_home(6), TileId::from_raw(2));
        assert_eq!(layout.element_local(a, 6), 2 + 1);
        assert_eq!(layout.tile_shift(), 2);
    }

    #[test]
    fn dynamic_reference_poisons_whole_array() {
        let p = program_with(MemHome::Dynamic, MemHome::Static(0));
        let layout = DataLayout::build(&p, &MachineConfig::square(2));
        assert!(matches!(
            layout.class(p.array_by_name("A").unwrap()),
            ArrayClass::Dynamic { .. }
        ));
        assert_eq!(
            layout.class(p.array_by_name("B").unwrap()),
            ArrayClass::Static
        );
    }

    #[test]
    fn memory_images_interleave_initials() {
        let p = program_with(MemHome::Static(0), MemHome::Static(0));
        let layout = DataLayout::build(&p, &MachineConfig::square(2));
        let images = initial_memory_images(&p, &layout);
        // x=7 on tile 0 at slot 0; y=1.5 on tile 1 at slot 1.
        assert!(images[0].contains(&(0, 7)));
        assert!(images[1].contains(&(1, 1.5f32.to_bits())));
        // A[3] = 3 lives on tile 1 (3 mod 2) at base 2 + 3/2 = 3.
        assert!(images[1].contains(&(3, 3)));
        // A[4] = 4 lives on tile 0 at base 2 + 2 = 4.
        assert!(images[0].contains(&(4, 4)));
    }

    #[test]
    fn faulty_mask_interleaves_over_live_tiles_only() {
        let p = program_with(MemHome::Static(0), MemHome::Static(0));
        let base = MachineConfig::grid(2, 4);
        let mask = base.mask_to_pow2(&[TileId::from_raw(2)]);
        let config = base.with_faulty(mask);
        let layout = DataLayout::build(&p, &config);
        assert_eq!(layout.n_tiles, 4);
        assert_eq!(
            layout.live,
            vec![
                TileId::from_raw(0),
                TileId::from_raw(1),
                TileId::from_raw(3),
                TileId::from_raw(4)
            ]
        );
        assert!(!layout.identity_homes());
        // Slot 2 lives on physical tile 3.
        assert_eq!(layout.element_home(2), TileId::from_raw(3));
        assert_eq!(layout.element_home(6), TileId::from_raw(3));
        // No home lands on a masked tile.
        for k in 0..16 {
            assert!(!config.is_faulty(layout.element_home(k)));
        }
        // Memory images are sized by physical tile index, and masked tiles
        // receive no initial data.
        let images = initial_memory_images(&p, &layout);
        assert_eq!(images.len(), 5);
        assert!(images[2].is_empty());
    }

    #[test]
    fn single_tile_layout_degenerates_cleanly() {
        let p = program_with(MemHome::Static(0), MemHome::Static(0));
        let layout = DataLayout::build(&p, &MachineConfig::square(1));
        assert_eq!(layout.tile_shift(), 0);
        assert_eq!(layout.element_home(9), TileId::from_raw(0));
        let a = p.array_by_name("A").unwrap();
        assert_eq!(layout.element_local(a, 9), layout.array_base(a) + 9);
    }
}

//! The event scheduler (paper §4.2).
//!
//! Events are computation instructions and **communication paths**. A path is
//! a single-source, possibly multi-destination (multicast) transfer scheduled
//! atomically: the send slot on the producer's processor, one route slot per
//! switch along the dimension-ordered multicast tree at consecutive cycles,
//! and a receive slot on each consumer's processor at the exact arrival cycle.
//! Reserving contiguous slots end-to-end means the path incurs no delay in the
//! static schedule, and — together with the static ordering property — that
//! the emitted instruction order is deadlock-free at runtime.
//!
//! Tasks are picked greedily from a ready list ordered by a priority that is a
//! weighted sum of **level** (longest distance to an exit task) and
//! **fertility** (number of descendant tasks), exactly the scheme of §4.2.

use crate::options::{CompilerOptions, PriorityScheme};
use crate::partition::Partition;
use crate::taskgraph::{EdgeKind, NodeId, TaskGraph};
use raw_machine::isa::{Dir, SDst, SSrc};
use raw_machine::{MachineConfig, TileId};
use std::collections::{BinaryHeap, HashMap, HashSet};

/// One slot in a tile processor's schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TileOp {
    /// Execute the block instruction with this task-graph node id.
    Comp(NodeId),
    /// Send a value (register → output port).
    Send(raw_ir::ValueId),
    /// Receive a value (input port → register).
    Recv(raw_ir::ValueId),
}

/// One tile's switch schedule: `(cycle, routed value, route pairs)` in
/// increasing cycle order. The value identifies which communication path the
/// route belongs to (provenance: it resolves to the producing node's source
/// span).
pub type TileSwitchOps = Vec<(u64, raw_ir::ValueId, Vec<(SSrc, SDst)>)>;

/// Kind of a predicted processor slot (condensed from [`TileOp`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredOpKind {
    /// A computation instruction issues.
    Comp,
    /// A value is injected into the static network.
    Send,
    /// A value is consumed from the static network.
    Recv,
}

impl PredOpKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PredOpKind::Comp => "comp",
            PredOpKind::Send => "send",
            PredOpKind::Recv => "recv",
        }
    }
}

/// The scheduler's *predicted* space-time map of one block: which tile is
/// predicted to do what at which block-relative cycle. Captured into the
/// compile report so the `raw-trace` crate can diff it against the simulator's
/// *observed* trace (the cost-model divergence the paper's §4.2 cost model
/// glosses over: operand arrival jitter, port back-pressure, branch overhead).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PredictedBlock {
    /// Predicted completion time of the block (block-relative cycles).
    pub makespan: u64,
    /// Per tile: `(cycle, kind)` in increasing cycle order.
    pub proc_ops: Vec<Vec<(u64, PredOpKind)>>,
    /// Per tile: predicted route-firing cycles in increasing order.
    pub route_cycles: Vec<Vec<u64>>,
}

impl PredictedBlock {
    /// Predicted busy slots (issues) on one tile's processor.
    pub fn proc_issues(&self, tile: usize) -> usize {
        self.proc_ops[tile].len()
    }

    /// The highest predicted processor occupancy across tiles, as a fraction
    /// of the makespan (0.0 for an empty block).
    pub fn peak_occupancy(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let max = self.proc_ops.iter().map(Vec::len).max().unwrap_or(0);
        max as f64 / self.makespan as f64
    }
}

/// The space-time schedule of one basic block.
#[derive(Clone, Debug, Default)]
pub struct BlockSchedule {
    /// Per tile: `(cycle, op)` in increasing cycle order.
    pub proc_ops: Vec<Vec<(u64, TileOp)>>,
    /// Per tile: `(cycle, route pairs)` in increasing cycle order.
    pub switch_ops: Vec<TileSwitchOps>,
    /// Estimated completion time of the block.
    pub makespan: u64,
    /// Number of communication paths scheduled (reporting).
    pub n_comm_paths: usize,
}

impl BlockSchedule {
    /// Condenses this schedule into the predicted space-time map recorded in
    /// the compile report.
    pub fn predicted(&self) -> PredictedBlock {
        PredictedBlock {
            makespan: self.makespan,
            proc_ops: self
                .proc_ops
                .iter()
                .map(|ops| {
                    ops.iter()
                        .map(|(t, op)| {
                            let kind = match op {
                                TileOp::Comp(_) => PredOpKind::Comp,
                                TileOp::Send(_) => PredOpKind::Send,
                                TileOp::Recv(_) => PredOpKind::Recv,
                            };
                            (*t, kind)
                        })
                        .collect()
                })
                .collect(),
            route_cycles: self
                .switch_ops
                .iter()
                .map(|ops| ops.iter().map(|(t, ..)| *t).collect())
                .collect(),
        }
    }
}

#[derive(Clone, Debug)]
enum Task {
    Comp(NodeId),
    Comm {
        value: raw_ir::ValueId,
        src: TileId,
        dsts: Vec<TileId>,
    },
}

/// Bound on how far the scheduler searches for a feasible path start time.
const SEARCH_LIMIT: u64 = 1 << 20;

/// Schedules one partitioned block.
pub fn schedule(
    graph: &TaskGraph,
    partition: &Partition,
    config: &MachineConfig,
    options: &CompilerOptions,
) -> BlockSchedule {
    let n_tiles = config.n_tiles() as usize;
    let mut out = BlockSchedule {
        proc_ops: vec![Vec::new(); n_tiles],
        switch_ops: vec![Vec::new(); n_tiles],
        makespan: 0,
        n_comm_paths: 0,
    };
    if graph.is_empty() {
        return out;
    }

    // ---- Build the task list: one Comp per node, one Comm per value with
    // remote consumers.
    let mut tasks: Vec<Task> = (0..graph.len()).map(Task::Comp).collect();
    // comm_of[node] = task id of the node's outgoing comm path (dense vector,
    // `usize::MAX` = none — node ids index it directly on the hot path).
    const NO_COMM: usize = usize::MAX;
    let mut comm_of: Vec<usize> = vec![NO_COMM; graph.len()];
    for (n, slot) in comm_of.iter_mut().enumerate() {
        let Some(v) = graph.insts[n].dst else {
            continue;
        };
        let src = partition.assignment[n];
        let mut dsts: Vec<TileId> = graph.succs[n]
            .iter()
            .filter(|&&(_, k)| k == EdgeKind::Data)
            .map(|&(s, _)| partition.assignment[s])
            .filter(|&t| t != src)
            .collect();
        dsts.sort();
        dsts.dedup();
        if !dsts.is_empty() {
            tasks.push(Task::Comm {
                value: v,
                src,
                dsts,
            });
            *slot = tasks.len() - 1;
        }
    }
    out.n_comm_paths = tasks.len() - graph.len();

    // ---- Task dependency edges.
    let n_tasks = tasks.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n_tasks];
    let mut n_preds: Vec<usize> = vec![0; n_tasks];
    let add_dep =
        |from: usize, to: usize, succs: &mut Vec<Vec<usize>>, n_preds: &mut Vec<usize>| {
            if !succs[from].contains(&to) {
                succs[from].push(to);
                n_preds[to] += 1;
            }
        };
    for n in 0..graph.len() {
        if comm_of[n] != NO_COMM {
            add_dep(n, comm_of[n], &mut succs, &mut n_preds);
        }
        for &(p, kind) in &graph.preds[n] {
            match kind {
                EdgeKind::Order => add_dep(p, n, &mut succs, &mut n_preds),
                EdgeKind::Data => {
                    if partition.assignment[p] == partition.assignment[n] {
                        add_dep(p, n, &mut succs, &mut n_preds);
                    } else {
                        let c = comm_of[p];
                        debug_assert_ne!(c, NO_COMM, "remote data edge must have a comm path");
                        add_dep(c, n, &mut succs, &mut n_preds);
                    }
                }
            }
        }
    }

    // ---- Priorities: level + fertility over the task DAG.
    let weight = |t: &Task| -> u64 {
        match t {
            Task::Comp(n) => graph.costs[*n] as u64,
            Task::Comm { src, dsts, .. } => {
                let max_hops = dsts
                    .iter()
                    .map(|&d| config.hops(*src, d))
                    .max()
                    .unwrap_or(0);
                2 + max_hops as u64
            }
        }
    };
    let topo = topo_order(&succs, &n_preds);
    let mut level = vec![0u64; n_tasks];
    for &t in topo.iter().rev() {
        let down = succs[t].iter().map(|&s| level[s]).max().unwrap_or(0);
        level[t] = weight(&tasks[t]) + down;
    }
    let fertility = match options.priority {
        PriorityScheme::LevelFertility => descendants(&succs, &topo),
        PriorityScheme::LevelOnly | PriorityScheme::SourceOrder => vec![0u64; n_tasks],
    };
    let priority = move |t: usize| match options.priority {
        // Source order: constant priority; the deterministic tie-break on the
        // smallest task id makes the ready list issue in program order.
        PriorityScheme::SourceOrder => 0,
        _ => level[t] * 8 + fertility[t],
    };

    // ---- Greedy list scheduling.
    let mut proc_busy: Vec<HashSet<u64>> = vec![HashSet::new(); n_tiles];
    let mut switch_busy: Vec<HashSet<u64>> = vec![HashSet::new(); n_tiles];
    // value_ready[tile * n_values + value] = first cycle a consumer on `tile`
    // may issue (dense matrix, `u64::MAX` = not produced there). The event
    // loop reads this once per data predecessor, so it must be an index, not
    // a hash lookup.
    const NOT_READY: u64 = u64::MAX;
    let n_values = graph
        .insts
        .iter()
        .filter_map(|i| i.dst)
        .map(|v| v.index() + 1)
        .max()
        .unwrap_or(0);
    let mut value_ready: Vec<u64> = vec![NOT_READY; n_tiles * n_values];
    let ready_idx = |tile: TileId, v: raw_ir::ValueId| tile.index() * n_values + v.index();
    let mut issue: Vec<u64> = vec![0; n_tasks];
    let mut remaining = n_preds.clone();
    let mut heap: BinaryHeap<(u64, std::cmp::Reverse<usize>)> = (0..n_tasks)
        .filter(|&t| remaining[t] == 0)
        .map(|t| (priority(t), std::cmp::Reverse(t)))
        .collect();
    let mut scheduled = 0usize;

    let free_slot = |busy: &HashSet<u64>, from: u64| -> u64 {
        let mut t = from;
        while busy.contains(&t) {
            t += 1;
        }
        t
    };

    while let Some((_, std::cmp::Reverse(tid))) = heap.pop() {
        scheduled += 1;
        match &tasks[tid] {
            &Task::Comp(n) => {
                let tile = partition.assignment[n];
                let mut t0 = 0u64;
                for &(p, kind) in &graph.preds[n] {
                    match kind {
                        EdgeKind::Order => t0 = t0.max(issue[p] + 1),
                        EdgeKind::Data => {
                            let v = graph.insts[p].dst.expect("data edge has a value");
                            let ready = value_ready[ready_idx(tile, v)];
                            debug_assert_ne!(ready, NOT_READY, "consumer before producer");
                            t0 = t0.max(ready);
                        }
                    }
                }
                // Instruction selection may prepend address arithmetic: find a
                // run of `1 + extra` consecutive free slots, with the memory
                // operation itself in the last one.
                let extra = graph.extra_slots[n] as u64;
                let busy = &mut proc_busy[tile.index()];
                let mut t = t0;
                loop {
                    t = free_slot(busy, t);
                    if (1..=extra).all(|k| !busy.contains(&(t + k))) {
                        break;
                    }
                    t += 1;
                }
                for k in 0..=extra {
                    busy.insert(t + k);
                }
                let op_slot = t + extra;
                out.proc_ops[tile.index()].push((t, TileOp::Comp(n)));
                issue[tid] = op_slot;
                if let Some(v) = graph.insts[n].dst {
                    value_ready[ready_idx(tile, v)] = op_slot + graph.costs[n] as u64;
                }
                out.makespan = out.makespan.max(op_slot + graph.costs[n] as u64);
            }
            Task::Comm { value, src, dsts } => {
                let (value, src) = (*value, *src);
                let tree = MulticastTree::build(config, src, dsts);
                let t0 = value_ready[ready_idx(src, value)];
                debug_assert_ne!(t0, NOT_READY, "comm path before producer");
                let mut t = t0;
                'search: loop {
                    assert!(
                        t - t0 < SEARCH_LIMIT,
                        "no feasible slot for comm path of {value}"
                    );
                    // Send slot.
                    if proc_busy[src.index()].contains(&t) {
                        t += 1;
                        continue;
                    }
                    // Switch slots along the tree.
                    for node in &tree.nodes {
                        if switch_busy[node.tile.index()].contains(&(t + 1 + node.depth)) {
                            t += 1;
                            continue 'search;
                        }
                    }
                    // Receive slots at exact arrival cycles.
                    for node in &tree.nodes {
                        if node.deliver
                            && proc_busy[node.tile.index()].contains(&(t + node.depth + 2))
                        {
                            t += 1;
                            continue 'search;
                        }
                    }
                    break;
                }
                // Reserve everything.
                proc_busy[src.index()].insert(t);
                out.proc_ops[src.index()].push((t, TileOp::Send(value)));
                for node in &tree.nodes {
                    let cycle = t + 1 + node.depth;
                    switch_busy[node.tile.index()].insert(cycle);
                    out.switch_ops[node.tile.index()].push((cycle, value, node.pairs()));
                    if node.deliver {
                        let arr = t + node.depth + 2;
                        proc_busy[node.tile.index()].insert(arr);
                        out.proc_ops[node.tile.index()].push((arr, TileOp::Recv(value)));
                        value_ready[ready_idx(node.tile, value)] = arr + 1;
                        out.makespan = out.makespan.max(arr + 1);
                    }
                }
                issue[tid] = t;
            }
        }
        for &s in &succs[tid] {
            remaining[s] -= 1;
            if remaining[s] == 0 {
                heap.push((priority(s), std::cmp::Reverse(s)));
            }
        }
    }
    assert_eq!(
        scheduled, n_tasks,
        "task DAG must be acyclic and connected to roots"
    );

    for ops in &mut out.proc_ops {
        ops.sort_by_key(|(t, _)| *t);
    }
    for ops in &mut out.switch_ops {
        ops.sort_by_key(|(t, ..)| *t);
    }
    out
}

fn topo_order(succs: &[Vec<usize>], n_preds: &[usize]) -> Vec<usize> {
    let mut remaining = n_preds.to_vec();
    let mut stack: Vec<usize> = (0..succs.len()).filter(|&t| remaining[t] == 0).collect();
    let mut order = Vec::with_capacity(succs.len());
    while let Some(t) = stack.pop() {
        order.push(t);
        for &s in &succs[t] {
            remaining[s] -= 1;
            if remaining[s] == 0 {
                stack.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), succs.len());
    order
}

/// Exact descendant counts via bitsets over the task DAG.
fn descendants(succs: &[Vec<usize>], topo: &[usize]) -> Vec<u64> {
    let n = succs.len();
    let words = n.div_ceil(64);
    let mut reach: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    let mut counts = vec![0u64; n];
    for &t in topo.iter().rev() {
        // Union of successors' reach sets plus the successors themselves.
        let mut acc = vec![0u64; words];
        for &s in &succs[t] {
            acc[s / 64] |= 1 << (s % 64);
            for (a, b) in acc.iter_mut().zip(&reach[s]) {
                *a |= *b;
            }
        }
        counts[t] = acc.iter().map(|w| w.count_ones() as u64).sum();
        reach[t] = acc;
    }
    counts
}

/// Builds the per-tile switch route pairs of the **branch broadcast**: the
/// condition word travels from the producer tile along a dimension-ordered
/// multicast tree; at every switch it is latched into switch register 0 (for
/// the switch's own branch) and delivered to the processor on every tile other
/// than the producer (whose processor already holds the condition).
///
/// Returns one pair list per tile; the producer's list sources from
/// [`SSrc::Proc`]. On a one-tile machine this is never needed.
pub fn broadcast_routes(config: &MachineConfig, producer: TileId) -> Vec<Vec<(SSrc, SDst)>> {
    let n = config.n_tiles() as usize;
    let dsts: Vec<TileId> = config
        .live_tiles()
        .into_iter()
        .filter(|&t| t != producer)
        .collect();
    let tree = MulticastTree::build(config, producer, &dsts);
    let mut routes = vec![Vec::new(); n];
    for node in &tree.nodes {
        let mut pairs: Vec<(SSrc, SDst)> = vec![(node.src, SDst::Reg(0))];
        if node.deliver {
            pairs.push((node.src, SDst::Proc));
        }
        for &d in &node.children {
            pairs.push((node.src, SDst::Dir(d)));
        }
        routes[node.tile.index()] = pairs;
    }
    routes
}

/// A dimension-ordered multicast tree rooted at the producer tile.
#[derive(Debug)]
struct MulticastTree {
    nodes: Vec<TreeNode>,
}

#[derive(Debug)]
struct TreeNode {
    tile: TileId,
    /// Hops from the root (root switch has depth 0).
    depth: u64,
    /// Where this switch takes the word from.
    src: SSrc,
    /// Directions to forward to.
    children: Vec<Dir>,
    /// Whether this tile's processor consumes the word.
    deliver: bool,
}

impl TreeNode {
    fn pairs(&self) -> Vec<(SSrc, SDst)> {
        let mut pairs: Vec<(SSrc, SDst)> = self
            .children
            .iter()
            .map(|&d| (self.src, SDst::Dir(d)))
            .collect();
        if self.deliver {
            pairs.push((self.src, SDst::Proc));
        }
        pairs
    }
}

/// Deterministic BFS spanning tree over the *live* tiles, rooted at `src`:
/// `parents[t] = (parent, dir from parent to t)`. Paths extracted from one
/// shared tree are prefix-consistent, which the multicast-tree merge relies
/// on. Only used when the machine has faulty tiles — the fault-free case
/// keeps the exact legacy dimension-ordered routes.
fn live_bfs_parents(config: &MachineConfig, src: TileId) -> Vec<Option<(TileId, Dir)>> {
    let n = config.n_tiles() as usize;
    let mut parents: Vec<Option<(TileId, Dir)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[src.index()] = true;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(t) = queue.pop_front() {
        for dir in Dir::ALL {
            let Some(nb) = config.neighbor(t, dir) else {
                continue;
            };
            if seen[nb.index()] || config.is_faulty(nb) {
                continue;
            }
            seen[nb.index()] = true;
            parents[nb.index()] = Some((t, dir));
            queue.push_back(nb);
        }
    }
    parents
}

impl MulticastTree {
    fn build(config: &MachineConfig, src: TileId, dsts: &[TileId]) -> MulticastTree {
        // With faulty tiles, dimension-ordered routes may cross a dead
        // switch; route along a shared BFS tree of the live mesh instead.
        let bfs = if config.faulty.is_empty() {
            None
        } else {
            Some(live_bfs_parents(config, src))
        };
        let route_to = |dst: TileId| -> Vec<Dir> {
            match &bfs {
                None => config.xy_route(src, dst),
                Some(parents) => {
                    let mut path = Vec::new();
                    let mut cur = dst;
                    while cur != src {
                        let (p, d) = parents[cur.index()]
                            .expect("faulty mask must leave the live mesh connected");
                        path.push(d);
                        cur = p;
                    }
                    path.reverse();
                    path
                }
            }
        };
        let mut index: HashMap<u32, usize> = HashMap::new();
        let mut nodes: Vec<TreeNode> = vec![TreeNode {
            tile: src,
            depth: 0,
            src: SSrc::Proc,
            children: Vec::new(),
            deliver: false,
        }];
        index.insert(src.index() as u32, 0);
        for &dst in dsts {
            debug_assert_ne!(dst, src, "local consumers need no communication");
            debug_assert!(!config.is_faulty(dst), "comm path to faulty tile");
            let route = route_to(dst);
            let mut cur = src;
            let mut cur_idx = 0usize;
            for (k, &dir) in route.iter().enumerate() {
                let next = config.neighbor(cur, dir).expect("route stays on mesh");
                if !nodes[cur_idx].children.contains(&dir) {
                    nodes[cur_idx].children.push(dir);
                }
                let next_idx = *index.entry(next.index() as u32).or_insert_with(|| {
                    nodes.push(TreeNode {
                        tile: next,
                        depth: (k + 1) as u64,
                        src: SSrc::Dir(dir.opposite()),
                        children: Vec::new(),
                        deliver: false,
                    });
                    nodes.len() - 1
                });
                cur = next;
                cur_idx = next_idx;
            }
            nodes[cur_idx].deliver = true;
        }
        MulticastTree { nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataLayout;
    use raw_ir::builder::ProgramBuilder;

    fn schedule_for(
        n_tiles: u32,
        build: impl FnOnce(&mut ProgramBuilder),
    ) -> (TaskGraph, Partition, BlockSchedule) {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        b.halt();
        let p = b.finish().unwrap();
        let config = MachineConfig::square(n_tiles);
        let layout = DataLayout::build(&p, &config);
        let g = TaskGraph::build(p.block(p.entry), &layout, &config);
        let options = CompilerOptions::default();
        let part = crate::partition::partition(&g, &config, &options);
        let sched = schedule(&g, &part, &config, &options);
        (g, part, sched)
    }

    #[test]
    fn single_tile_schedule_is_sequential() {
        let (g, _, s) = schedule_for(1, |b| {
            let x = b.const_i32(1);
            let y = b.add(x, x);
            let _ = b.mul(y, y);
        });
        assert_eq!(s.proc_ops[0].len(), g.len());
        assert_eq!(s.n_comm_paths, 0);
        // Times strictly increase and respect latencies: add (issue≥1 after
        // const ready at 1), mul after add result.
        let times: Vec<u64> = s.proc_ops[0].iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn remote_consumer_gets_send_route_recv() {
        // Pin a var to tile 1; compute on tile 0 feeds the WriteVar on tile 1.
        let (g, part, s) = schedule_for(2, |b| {
            let v0 = b.var_i32("a", 0); // home tile 0
            let v1 = b.var_i32("bvar", 0); // home tile 1
            let r = b.read_var(v0);
            let sum = b.add(r, r);
            b.write_var(v1, sum);
        });
        let _ = g;
        // There must be at least one comm path (tile0 → tile1).
        assert!(s.n_comm_paths >= 1, "partition: {:?}", part.assignment);
        let sends = s.proc_ops[0]
            .iter()
            .filter(|(_, op)| matches!(op, TileOp::Send(_)))
            .count();
        let recvs = s.proc_ops[1]
            .iter()
            .filter(|(_, op)| matches!(op, TileOp::Recv(_)))
            .count();
        assert!(sends >= 1);
        assert!(recvs >= 1);
        // Both switches carry a route.
        assert!(!s.switch_ops[0].is_empty());
        assert!(!s.switch_ops[1].is_empty());
    }

    #[test]
    fn comm_path_timing_is_contiguous() {
        let (_, _, s) = schedule_for(2, |b| {
            let v0 = b.var_i32("a", 1);
            let v1 = b.var_i32("bvar", 0);
            let r = b.read_var(v0);
            b.write_var(v1, r);
        });
        // Find the send time on tile 0 and recv time on tile 1.
        let t_send = s.proc_ops[0]
            .iter()
            .find(|(_, op)| matches!(op, TileOp::Send(_)))
            .unwrap()
            .0;
        let t_recv = s.proc_ops[1]
            .iter()
            .find(|(_, op)| matches!(op, TileOp::Recv(_)))
            .unwrap()
            .0;
        // Figure 4: neighbour message, recv exactly 3 cycles after send.
        assert_eq!(t_recv, t_send + 3);
        let t_route0 = s.switch_ops[0][0].0;
        let t_route1 = s.switch_ops[1][0].0;
        assert_eq!(t_route0, t_send + 1);
        assert_eq!(t_route1, t_send + 2);
    }

    #[test]
    fn multicast_tree_merges_prefixes() {
        let config = MachineConfig::grid(1, 4);
        let tree = MulticastTree::build(
            &config,
            TileId::from_raw(0),
            &[TileId::from_raw(2), TileId::from_raw(3)],
        );
        // Tiles 0,1,2,3 each appear once; tile 1 forwards only; 2 delivers and
        // forwards; 3 delivers.
        assert_eq!(tree.nodes.len(), 4);
        let node2 = tree.nodes.iter().find(|n| n.tile.index() == 2).unwrap();
        assert!(node2.deliver);
        assert_eq!(node2.children, vec![Dir::East]);
        let node3 = tree.nodes.iter().find(|n| n.tile.index() == 3).unwrap();
        assert!(node3.deliver);
        assert!(node3.children.is_empty());
        assert_eq!(node3.depth, 3);
    }

    #[test]
    fn masked_multicast_tree_avoids_faulty_switches() {
        use raw_machine::TileMask;
        // 1x4 row with tile 1 dead: the route 0→2 must leave the mesh... it
        // cannot on a 1-D row, so use a 2x4 grid where BFS can detour.
        let base = MachineConfig::grid(2, 4);
        let config = base.with_faulty(TileMask::of(&[TileId::from_raw(1)]));
        assert!(config.live_connected());
        let tree = MulticastTree::build(
            &config,
            TileId::from_raw(0),
            &[TileId::from_raw(2), TileId::from_raw(3)],
        );
        for node in &tree.nodes {
            assert!(
                !config.is_faulty(node.tile),
                "tree visits faulty tile {:?}",
                node.tile
            );
        }
        for want in [2u32, 3] {
            let node = tree
                .nodes
                .iter()
                .find(|n| n.tile.index() == want as usize)
                .unwrap();
            assert!(node.deliver);
        }
        // Broadcast skips faulty tiles entirely: no route pairs on tile 1.
        let routes = broadcast_routes(&config, TileId::from_raw(0));
        assert!(routes[1].is_empty());
        assert!(routes.iter().enumerate().all(|(t, pairs)| {
            config.is_faulty(TileId::from_raw(t as u32)) == pairs.is_empty()
        }));
    }

    #[test]
    fn no_double_booked_slots() {
        let (_, _, s) = schedule_for(4, |b| {
            // Lots of values crossing tiles via pinned variables.
            let vars: Vec<_> = (0..8).map(|i| b.var_i32(format!("v{i}"), i)).collect();
            let reads: Vec<_> = vars.iter().map(|&v| b.read_var(v)).collect();
            let mut acc = reads[0];
            for &r in &reads[1..] {
                acc = b.add(acc, r);
            }
            for &v in &vars {
                b.write_var(v, acc);
            }
        });
        for tile_ops in &s.proc_ops {
            let mut seen = HashSet::new();
            for (t, _) in tile_ops {
                assert!(seen.insert(*t), "processor slot {t} double-booked");
            }
        }
        for tile_ops in &s.switch_ops {
            let mut seen = HashSet::new();
            for (t, ..) in tile_ops {
                assert!(seen.insert(*t), "switch slot {t} double-booked");
            }
        }
    }

    #[test]
    fn descendant_counts_are_exact() {
        // 0 → 1 → 2, 0 → 2.
        let succs = vec![vec![1, 2], vec![2], vec![]];
        let n_preds = vec![0, 1, 2];
        let topo = topo_order(&succs, &n_preds);
        let d = descendants(&succs, &topo);
        assert_eq!(d, vec![2, 1, 0]);
    }
}
